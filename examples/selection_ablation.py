#!/usr/bin/env python
"""Ablate the RL-based client selection strategy (Figure 5).

Runs AdaptiveFL under the five dispatch/selection variants of the paper's
ablation — Greedy, Random, RL-C (curiosity only), RL-S (resource only) and
RL-CS (the full method) — on one shared
:class:`~repro.api.session.ExperimentSession` (the experiment is prepared
once, so the ablation is paired) and prints their communication-waste rate
and final accuracy.

Run:
    python examples/selection_ablation.py --scale ci --rounds 10
"""

from __future__ import annotations

import argparse

from repro import ExperimentSession, ExperimentSetting
from repro.experiments import format_table

STRATEGIES = ("greedy", "random", "rl-c", "rl-s", "rl-cs")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=["ci", "small", "paper"])
    parser.add_argument("--dataset", default="cifar100", choices=["cifar10", "cifar100", "femnist"])
    parser.add_argument("--model", default="simple_cnn")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    setting = ExperimentSetting(dataset=args.dataset, model=args.model, distribution="iid", scale=args.scale, seed=args.seed)
    session = ExperimentSession(setting)

    rows = []
    for strategy in STRATEGIES:
        print(f"running AdaptiveFL+{strategy} ...")
        result = session.run("adaptivefl", selection_strategy=strategy, num_rounds=args.rounds)
        rows.append([strategy, f"{result.communication_waste * 100:.2f}", f"{result.full_accuracy * 100:.2f}"])

    print("\n=== RL client-selection ablation (Figure 5 style) ===")
    print(format_table(["strategy", "communication waste (%)", "full accuracy (%)"], rows))


if __name__ == "__main__":
    main()
