#!/usr/bin/env python
"""Quickstart: train AdaptiveFL on a synthetic CIFAR-10-like federation.

Uses the ``repro.api`` experiment-session layer: build an
:class:`~repro.api.session.ExperimentSession`, attach a progress callback
and run the registered ``"adaptivefl"`` algorithm.  The same experiment is
one shell command away::

    python -m repro run --algorithm adaptivefl --dataset cifar10 --scale ci

Run:
    python examples/quickstart.py --scale ci
    python examples/quickstart.py --scale small --model vgg11
"""

from __future__ import annotations

import argparse

from repro import ExperimentSession, ExperimentSetting, ProgressCallback
from repro.core import ModelPool


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=["ci", "small", "paper"], help="experiment size preset")
    parser.add_argument("--model", default="simple_cnn", help="architecture registry name (simple_cnn, vgg16, resnet18, ...)")
    parser.add_argument("--dataset", default="cifar10", choices=["cifar10", "cifar100", "femnist", "widar"])
    parser.add_argument("--alpha", type=float, default=None, help="Dirichlet alpha for non-IID data (omit for IID)")
    parser.add_argument("--rounds", type=int, default=None, help="override the number of federated rounds")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    distribution = "dirichlet" if args.alpha is not None else "iid"
    setting = ExperimentSetting(
        dataset=args.dataset,
        model=args.model,
        distribution=distribution,
        alpha=args.alpha,
        scale=args.scale,
        seed=args.seed,
    )
    session = ExperimentSession(setting).with_callback(ProgressCallback())
    prepared = session.prepared
    print(f"dataset={args.dataset} model={args.model} clients={prepared.scale.num_clients} "
          f"rounds={args.rounds or prepared.scale.num_rounds} distribution={distribution}")
    print(f"global model parameters: {prepared.architecture.parameter_count():,}")
    pool = ModelPool(prepared.architecture, prepared.pool_config)
    print("model pool:", ", ".join(f"{c.name}={c.num_params:,}" for c in pool))

    result = session.run("adaptivefl", num_rounds=args.rounds)
    final = result.history.evaluated_records()[-1]
    print("\n=== AdaptiveFL results ===")
    print(f"full global model accuracy : {result.full_accuracy * 100:.2f}%")
    print(f"avg submodel accuracy      : {result.avg_accuracy * 100:.2f}%")
    for level, accuracy in sorted(final.level_accuracies.items()):
        print(f"  level {level} head accuracy : {accuracy * 100:.2f}%")
    print(f"mean communication waste   : {result.communication_waste * 100:.2f}%")


if __name__ == "__main__":
    main()
