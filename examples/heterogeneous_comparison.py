#!/usr/bin/env python
"""Compare AdaptiveFL against the paper's four baselines (Table 2 style).

Runs the selected registered algorithms through ``run_comparison``, which
prepares the federation **once** (same data partition, same heterogeneous
devices) and trains every algorithm on the identical snapshot, then prints
the avg/full accuracy table plus the communication-waste column of
Figure 5a.

Run:
    python examples/heterogeneous_comparison.py --scale ci
    python examples/heterogeneous_comparison.py --scale small --alpha 0.3 --proportion 8:1:1
"""

from __future__ import annotations

import argparse

from repro import ProgressCallback, available_algorithms, run_comparison
from repro.experiments import ExperimentSetting, render_accuracy_table, render_waste_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=["ci", "small", "paper"])
    parser.add_argument("--dataset", default="cifar10", choices=["cifar10", "cifar100", "femnist"])
    parser.add_argument("--model", default="simple_cnn")
    parser.add_argument("--alpha", type=float, default=None, help="Dirichlet alpha; omit for IID")
    parser.add_argument("--proportion", default="4:3:3", help="weak:medium:strong device proportion (Table 3)")
    parser.add_argument("--algorithms", nargs="*", default=list(available_algorithms()))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    distribution = "dirichlet" if args.alpha is not None else "iid"
    setting = ExperimentSetting(
        dataset=args.dataset,
        model=args.model,
        distribution=distribution,
        alpha=args.alpha,
        proportion=args.proportion,
        scale=args.scale,
        seed=args.seed,
    )

    results = run_comparison(setting, tuple(args.algorithms), callbacks=[ProgressCallback()])

    title = (
        f"{args.dataset} / {args.model} / {distribution}"
        + (f"(alpha={args.alpha})" if args.alpha else "")
        + f" / devices {args.proportion} / scale {args.scale}"
    )
    print("\n=== Accuracy (Table 2 style) ===")
    print(render_accuracy_table(results, title))
    print("\n=== Communication waste (Figure 5a style) ===")
    print(render_waste_table(results))


if __name__ == "__main__":
    main()
