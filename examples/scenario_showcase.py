#!/usr/bin/env python
"""Scenario showcase: the same algorithms under two fleet scenarios.

Runs each selected algorithm under two registered :mod:`repro.sim`
scenarios (default: the benign ``stable_lab`` vs the hostile
``flaky_edge``) on the *same* data/partition seed and prints, per
scenario, the accuracy next to the system-level outcomes the discrete-
event fleet simulator produced: simulated wall-clock, dispatched vs
dropped client slots and the bytes moved.  The point of the comparison:
deadline-aware over-selection keeps synchronous rounds moving when the
fleet churns, at the cost of extra dispatches.

Run:
    python examples/scenario_showcase.py
    python examples/scenario_showcase.py --scenarios congested_network battery_constrained
    python examples/scenario_showcase.py --algorithms heterofl adaptivefl --rounds 8
"""

from __future__ import annotations

import argparse

from repro import available_scenarios
from repro.experiments import ExperimentSetting, format_table, prepare_experiment, run_algorithm


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenarios", nargs=2, default=["stable_lab", "flaky_edge"],
                        metavar=("A", "B"), help=f"two of: {', '.join(available_scenarios())}")
    parser.add_argument("--algorithms", nargs="*", default=["heterofl", "adaptivefl"])
    parser.add_argument("--dataset", default="cifar10", choices=["cifar10", "cifar100", "femnist"])
    parser.add_argument("--model", default="simple_cnn")
    parser.add_argument("--scale", default="ci", choices=["ci", "small", "paper"])
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rows = []
    for scenario in args.scenarios:
        setting = ExperimentSetting(
            dataset=args.dataset, model=args.model, scale=args.scale, seed=args.seed,
            scenario=scenario, overrides={"num_rounds": args.rounds, "eval_every": args.rounds},
        )
        prepared = prepare_experiment(setting)
        for name in args.algorithms:
            result = run_algorithm(name, prepared)
            history = result.history
            dispatched = sum(len(r.selected_clients) for r in history.records)
            dropped = history.total_dropped()
            rows.append(
                [
                    scenario,
                    result.algorithm,
                    f"{100 * result.full_accuracy:.1f}%",
                    f"{history.elapsed_seconds():.2f}s",
                    str(dispatched),
                    f"{dropped} ({100 * dropped / dispatched:.0f}%)" if dispatched else "0",
                    f"{sum(r.bytes_down or 0 for r in history.records) / 1e6:.2f} MB",
                ]
            )

    print(f"\n=== Scenario showcase ({args.rounds} rounds, seed {args.seed}) ===")
    print(
        format_table(
            ["scenario", "algorithm", "full acc", "sim time", "dispatched", "dropped", "downlink"],
            rows,
        )
    )
    print(
        "\nDropped = dispatched client slots whose update missed aggregation\n"
        "(mid-round dropout, battery death or deadline miss); over-selection\n"
        "pads the dispatch count so rounds survive them."
    )


if __name__ == "__main__":
    main()
