#!/usr/bin/env python
"""Kill a sweep midway, resume it, regenerate the report — end to end.

This is the experiment store's whole pitch in one script:

1. start a small sweep (2 algorithms × 2 seeds) into a store directory,
   with a callback that **simulates a crash** partway through the second
   run (mid-round-budget, after a checkpoint was written),
2. re-invoke the *same* sweep: the completed cell is skipped, the
   crashed cell resumes from its last checkpoint (bit-identically — see
   ``tests/store/test_resume_parity.py``), the untouched cells run,
3. regenerate ``report.md``/``report.json`` from the stored state only.

The same flow from a shell::

    repro sweep  --store runs/ --algorithms adaptivefl heterofl --seeds 0 1 --scale ci
    # ... ctrl-C whenever you like, then re-invoke the same command ...
    repro report --store runs/

Run:
    PYTHONPATH=src python examples/resume_and_report.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro import Callback, ExperimentSetting, ExperimentSpec, SweepSpec, generate_report, run_sweep
from repro.store.runstore import RunStore


class CrashAfter(Callback):
    """Raise after N total rounds across runs — a stand-in for kill -9.

    The exception escapes ``run_sweep`` exactly like a real crash would;
    checkpoints already written stay on disk, the completion marker for
    the in-flight run does not.
    """

    def __init__(self, rounds: int):
        self.rounds = rounds
        self.seen = 0

    def on_checkpoint(self, algorithm, record) -> None:
        self.seen += 1
        if self.seen >= self.rounds:
            raise KeyboardInterrupt(f"simulated crash after {self.seen} rounds")


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-store-demo-"))
    store_dir = root / "store"
    setting = ExperimentSetting(
        dataset="cifar10",
        model="simple_cnn",
        scale="ci",
        overrides={"num_rounds": 3, "eval_every": 2},
    )
    sweep = SweepSpec(
        base=ExperimentSpec(setting=setting, algorithms=("adaptivefl", "heterofl")),
        seeds=(0, 1),
    )

    print("== phase 1: sweep, killed midway =========================================")
    crash = CrashAfter(rounds=5)  # run 1 completes (3 rounds); run 2 dies at its 2nd
    try:
        run_sweep(sweep, store_dir, callbacks=[crash])
    except KeyboardInterrupt as interrupt:
        print(f"sweep interrupted: {interrupt}")

    store = RunStore(store_dir)
    for entry in store.runs():
        rounds = store.checkpoint_rounds(entry.run_id)
        print(f"  run {entry.run_id}: status={entry.status}, checkpoints at rounds {rounds}")

    print("\n== phase 2: re-invoke the identical sweep ================================")
    result = run_sweep(sweep, store_dir)  # resume=True is the default
    for cell in result.cells:
        print(
            f"  {cell.cell.algorithm} seed={cell.cell.seed}: {cell.status} "
            f"(full accuracy {cell.result.full_accuracy:.3f})"
        )
    counts = result.counts()
    print(f"  -> {counts['skipped']} skipped, {counts['resumed']} resumed, {counts['ran']} ran")
    assert counts["skipped"] >= 1, "the completed cell should have been skipped"
    assert counts["resumed"] >= 1, "the crashed cell should have resumed from its checkpoint"

    print("\n== phase 3: regenerate the report from stored state only =================")
    bundle = generate_report(store_dir, title="Resume-and-report demo")
    written = bundle.save(store_dir)
    print(bundle.markdown)
    print("wrote:", ", ".join(str(path) for path in written))

    shutil.rmtree(root)


if __name__ == "__main__":
    main()
