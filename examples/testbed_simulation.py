#!/usr/bin/env python
"""Simulated AIoT test-bed: Widar-like gestures on 17 heterogeneous devices.

Reproduces the paper's real test-bed experiment (§4.5, Table 5, Figure 6)
with the device timing model in :mod:`repro.devices.testbed`: 4 Raspberry
Pi 4B, 10 Jetson Nano and 3 Jetson Xavier AGX clients train a slimmable
MobileNetV2 on per-user non-IID CSI data, and the script prints accuracy
against simulated wall-clock seconds.

Run:
    python examples/testbed_simulation.py --rounds 5
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig, ModelPoolConfig, ProgressCallback, get_algorithm
from repro.data import make_widar_like, natural_partition
from repro.devices import ResourceModel, TESTBED_DEVICE_SPECS, TestbedSimulator
from repro.experiments import format_table
from repro.nn.models import SlimmableMobileNetV2


def build_setup(args, seed):
    architecture = SlimmableMobileNetV2(
        num_classes=22,
        input_shape=(1, args.image_size, args.image_size),
        width_multiplier=args.width,
        stem_channels=8,
        head_channels=32,
    )
    train, test = make_widar_like(
        num_users=17, train_samples=args.samples, test_samples=args.samples // 4, image_size=args.image_size, seed=seed
    )
    testbed = TestbedSimulator()
    profiles = testbed.build_profiles(np.random.default_rng(seed))
    partition = natural_partition(train, 17, np.random.default_rng(seed))
    resource_model = ResourceModel(profiles, architecture.parameter_count(), uncertainty=0.1, seed=seed)
    federated = FederatedConfig(num_rounds=args.rounds, clients_per_round=10, eval_every=max(1, args.rounds // 4))
    local = LocalTrainingConfig(local_epochs=1, batch_size=25)
    max_layer = architecture.num_prunable_layers()
    pool = ModelPoolConfig(
        models_per_level=3,
        start_layers=(max_layer - 1, max_layer - 3, max_layer - 5),
        min_start_layer=1,
    )
    kwargs = dict(
        architecture=architecture,
        train_dataset=train,
        partition=partition,
        test_dataset=test,
        profiles=profiles,
        federated_config=federated,
        local_config=local,
        resource_model=resource_model,
        testbed=testbed,
        seed=seed,
    )
    return kwargs, AdaptiveFLConfig(federated=federated, local=local, pool=pool), pool


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--samples", type=int, default=850)
    parser.add_argument("--image-size", type=int, default=16)
    parser.add_argument("--width", type=float, default=0.25, help="MobileNetV2 width multiplier")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Test-bed platform (Table 5):")
    rows = [[s.name, s.device_class, f"{s.memory_gb:.0f}G", s.count] for s in TESTBED_DEVICE_SPECS]
    print(format_table(["device", "class", "memory", "count"], rows))

    progress = ProgressCallback()
    print("\nrunning AdaptiveFL ...")
    kwargs, adaptive_config, pool = build_setup(args, args.seed)
    adaptivefl = get_algorithm("adaptivefl").factory
    adaptive_history = adaptivefl(algorithm_config=adaptive_config, pool_config=pool, **kwargs).run(callbacks=[progress])

    print("running HeteroFL ...")
    kwargs, _, _ = build_setup(args, args.seed)
    heterofl = get_algorithm("heterofl").factory
    hetero_history = heterofl(**kwargs).run(callbacks=[progress])

    print("\n=== Accuracy vs simulated wall-clock time (Figure 6 style) ===")
    for name, history in (("adaptivefl", adaptive_history), ("heterofl", hetero_history)):
        seconds, accuracies = history.time_curve("full")
        series = ", ".join(f"({t:.0f}s, {a * 100:.1f}%)" for t, a in zip(seconds, accuracies))
        print(f"{name:>10}: {series}")


if __name__ == "__main__":
    main()
