"""Setuptools configuration for the AdaptiveFL reproduction."""

import re
from pathlib import Path

from setuptools import find_packages, setup

# single source of truth: repro.__version__
_init = Path(__file__).parent / "src" / "repro" / "__init__.py"
_version = re.search(r'^__version__ = "([^"]+)"', _init.read_text(), re.MULTILINE).group(1)

setup(
    name="repro-adaptivefl",
    version=_version,
    description="AdaptiveFL (DAC 2024) reproduction: heterogeneous FL with fine-grained pruning and RL client selection",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.__main__:main"]},
)
