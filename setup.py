"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose pip/setuptools lack
PEP 660 editable-wheel support (no ``wheel`` package installed).
"""

from setuptools import setup

setup()
