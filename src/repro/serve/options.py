"""Tunable knobs of the federation service, shared by both sides.

:class:`ServeOptions` configures the coordinator (bind address, client
quorum, straggler and liveness timeouts, per-actor send-queue bound)
and provides the defaults a factory-built
:class:`~repro.serve.executor.RemoteExecutor` uses when the executor is
selected by name (``FederatedConfig.executor = "remote"``) and nobody
constructed it explicitly.  ``repro serve`` calls :func:`configure_serve`
before training so the config-driven path picks up its CLI flags.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ServeOptions", "configure_serve", "serve_options"]


@dataclass(frozen=True)
class ServeOptions:
    """Coordinator configuration (see field comments for semantics)."""

    #: interface the coordinator binds; loopback by default
    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it from ``RemoteExecutor.address``)
    port: int = 0
    #: how many connected clients a batch waits for before dispatching
    min_clients: int = 1
    #: seconds to wait for the client quorum (and for a mid-batch rejoin
    #: after every client disconnected) before failing the batch
    connect_timeout: float = 60.0
    #: seconds a dispatched task may stay unanswered before it is requeued
    #: to another client; ``None`` disables straggler rescue
    straggler_timeout: float | None = 60.0
    #: cadence of coordinator-side heartbeat probes per client
    heartbeat_interval: float = 10.0
    #: seconds without any frame from a client before its connection is
    #: declared dead and its in-flight work requeued
    liveness_timeout: float = 120.0
    #: bound of each client actor's send queue — the back-pressure point:
    #: enqueueing to a slow client suspends the producer instead of
    #: buffering without limit
    send_queue_size: int = 8
    #: tasks one client may hold concurrently (its work-loop fan-out)
    max_inflight: int = 1
    #: dispatch attempts per task before the batch is failed
    max_task_attempts: int = 5
    #: print a "listening on host:port" line when the server binds
    announce: bool = False
    #: bind the HTTP status endpoint (/metrics, /healthz, /events) on this
    #: port (0 = ephemeral); ``None`` disables it
    status_port: int | None = None

    def __post_init__(self) -> None:
        """Validate the knob ranges."""
        if self.min_clients <= 0:
            raise ValueError("min_clients must be positive")
        if self.connect_timeout <= 0:
            raise ValueError("connect_timeout must be positive")
        if self.straggler_timeout is not None and self.straggler_timeout <= 0:
            raise ValueError("straggler_timeout must be positive when set")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.liveness_timeout <= 0:
            raise ValueError("liveness_timeout must be positive")
        if self.send_queue_size <= 0:
            raise ValueError("send_queue_size must be positive")
        if self.max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if self.max_task_attempts <= 0:
            raise ValueError("max_task_attempts must be positive")
        if self.status_port is not None and self.status_port < 0:
            raise ValueError("status_port cannot be negative")


#: process-wide defaults used by factory-built executors; reassigned (never
#: mutated) by configure_serve, so concurrent readers always see a
#: consistent frozen snapshot
_DEFAULT_OPTIONS = ServeOptions()


def configure_serve(**overrides: object) -> ServeOptions:
    """Replace the process-wide default :class:`ServeOptions` (returns them).

    Called by ``repro serve`` before training so that executors built by
    name through :func:`repro.engine.factory.create_executor` — which
    only receives ``(name, max_workers)`` — inherit the CLI's host,
    port and timeout flags.
    """
    global _DEFAULT_OPTIONS
    _DEFAULT_OPTIONS = replace(_DEFAULT_OPTIONS, **overrides)  # type: ignore[arg-type]
    return _DEFAULT_OPTIONS


def serve_options() -> ServeOptions:
    """The current process-wide default options (a frozen snapshot)."""
    return _DEFAULT_OPTIONS
