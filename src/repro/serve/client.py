"""Blocking-socket client runner: one federated worker over the wire.

:class:`ClientRunner` is what ``repro client`` (and the parity tests)
run in each worker process.  It dials the coordinator, performs the
versioned handshake, then serves frames: ``task_dispatch`` payloads are
unpickled and executed exactly as a local worker would run them,
results go back as ``state_delta`` uploads, heartbeats are echoed, and
``bye`` ends the session cleanly.

Two behaviours make the networked path equivalent to the in-process
executors:

* **State fetching** — while a task resolves a
  :class:`~repro.engine.transport.StateHandle`, the runner's fetcher
  (installed via :func:`repro.engine.transport.set_state_fetcher`)
  turns the spill-file read into a ``state_request``/``weight_slice``
  round-trip.  Frames that arrive in between (new dispatches,
  heartbeats) are deferred and served afterwards, so interleaving never
  drops work.
* **Reconnect with backoff** — a lost connection is retried with
  deterministic exponential backoff (no jitter: reconnect timing must
  never feed into results, and the engine's per-task seed streams
  guarantee a re-run of a redispatched task is bit-identical anyway).

``drop_after=N`` is a failure-injection knob for tests: after computing
its *N*-th result the runner closes the socket once *without uploading
it*, forcing the coordinator down the requeue/reconnect path.

``event_log=<path>`` attaches a private
:class:`~repro.obs.sinks.JsonlSink` and emits ``task_start`` /
``task_upload`` events carrying the trace/span ids from each dispatch
frame — the client half of the timelines ``scripts/trace_join.py``
stitches together with the server's log.
"""

from __future__ import annotations

import pickle
import socket
import sys
import time
import traceback
from collections import deque

from repro.engine.codecs import EncodedUpdate
from repro.engine.transport import set_state_fetcher
from repro.obs.events import EventBus
from repro.obs.sinks import JsonlSink
from repro.serve.codec import CodecError, recv_message, send_message
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    SCHEMA_VERSION,
    Bye,
    EncodedResult,
    Heartbeat,
    Hello,
    HelloAck,
    Message,
    ProtocolError,
    RoundPlan,
    StateRequest,
    TaskDispatch,
    TaskResult,
    WeightSlice,
)

__all__ = ["ClientRunner", "HandshakeRejected"]


class HandshakeRejected(RuntimeError):
    """The server refused the handshake (version mismatch or protocol error)."""


class ClientRunner:
    """One networked federated worker (see the module docstring)."""

    def __init__(
        self,
        host: str,
        port: int,
        name: str,
        *,
        reconnect_attempts: int = 10,
        backoff_base: float = 0.2,
        backoff_max: float = 5.0,
        drop_after: int | None = None,
        quiet: bool = False,
        event_log: str | None = None,
    ):
        if reconnect_attempts < 0:
            raise ValueError("reconnect_attempts must be non-negative")
        if backoff_base <= 0 or backoff_max <= 0:
            raise ValueError("backoff_base and backoff_max must be positive")
        self.host = host
        self.port = port
        self.name = name
        self.reconnect_attempts = reconnect_attempts
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.drop_after = drop_after
        self.quiet = quiet
        self._sock: socket.socket | None = None
        #: payload schema negotiated in the handshake (set by ``_connect``)
        self._schema = SCHEMA_VERSION
        #: frames read while waiting for a weight slice, served afterwards
        self._deferred: "deque[Message]" = deque()
        self._results_computed = 0
        self._dropped = False
        #: private telemetry bus (dormant unless event_log is set)
        self.events = EventBus(source=name)
        self._event_log = event_log

    # -- public entry point ---------------------------------------------------------------
    def run(self) -> int:
        """Serve the coordinator until ``bye``; returns a process exit code."""
        set_state_fetcher(self._fetch_state)
        if self._event_log is not None:
            self.events.attach(JsonlSink(self._event_log))
        failures = 0
        try:
            while True:
                try:
                    self._connect()
                except HandshakeRejected as error:
                    self._log(f"handshake rejected: {error}")
                    return 1
                except (OSError, CodecError) as error:
                    failures += 1
                    if failures > self.reconnect_attempts:
                        self._log(f"giving up after {failures} failed connection attempts: {error}")
                        return 1
                    self._sleep_backoff(failures)
                    continue
                failures = 0
                outcome = self._serve()
                if outcome == "bye":
                    return 0
                if outcome == "fatal":
                    return 1
                # "dropped" (injected) or "eof" (server vanished): reconnect
                if outcome == "eof":
                    failures += 1
                    if failures > self.reconnect_attempts:
                        self._log(f"giving up after {failures} lost connections")
                        return 1
                    self._sleep_backoff(failures)
        finally:
            set_state_fetcher(None)
            self._close_socket()
            self.events.close()

    # -- connection management ------------------------------------------------------------
    def _connect(self) -> None:
        self._close_socket()
        self._deferred.clear()
        sock = socket.create_connection((self.host, self.port), timeout=30)
        try:
            sock.settimeout(None)
            send_message(
                sock,
                Hello(client_name=self.name, protocol_version=PROTOCOL_VERSION, schema_version=SCHEMA_VERSION),
            )
            reply = recv_message(sock)
        except BaseException:
            sock.close()
            raise
        if reply is None:
            sock.close()
            raise OSError("server closed the connection during the handshake")
        if isinstance(reply, ProtocolError):
            sock.close()
            raise HandshakeRejected(reply.message)
        if not isinstance(reply, HelloAck):
            sock.close()
            raise CodecError(f"expected hello_ack, got {type(reply).type!r}")
        self._sock = sock
        self._schema = min(SCHEMA_VERSION, reply.schema_version)
        self._log(f"connected to {reply.server_name} at {self.host}:{self.port} (resumed={reply.resumed})")

    def _close_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close of a dead socket
                pass
            self._sock = None

    def _sleep_backoff(self, failures: int) -> None:
        delay = min(self.backoff_max, self.backoff_base * (2 ** (failures - 1)))
        self._log(f"retrying in {delay:.2f}s (attempt {failures}/{self.reconnect_attempts})")
        time.sleep(delay)

    # -- serving --------------------------------------------------------------------------
    def _serve(self) -> str:
        assert self._sock is not None
        try:
            return self._serve_loop()
        except OSError:
            # a send raced the server closing the connection (e.g. a
            # heartbeat echo against a shutdown); a `bye` may still sit in
            # the receive buffer — honour it before treating this as a loss
            if self._pending_bye():
                self._log("server said goodbye (read after a failed send)")
                return "bye"
            self._log("connection lost while sending")
            return "eof"

    def _serve_loop(self) -> str:
        while True:
            message = self._next_message()
            if message is None:
                self._log("connection lost")
                return "eof"
            if isinstance(message, TaskDispatch):
                if not self._handle_task(message):
                    return "dropped"
            elif isinstance(message, Heartbeat):
                send_message(self._sock, Heartbeat(seq=message.seq))
            elif isinstance(message, (RoundPlan, WeightSlice)):
                pass  # round plans are informational; late slices are stale
            elif isinstance(message, Bye):
                self._log(f"server said goodbye: {message.reason or 'bye'}")
                return "bye"
            elif isinstance(message, ProtocolError):
                self._log(f"server reported an error: {message.message}")
                return "fatal"
            else:
                send_message(self._sock, ProtocolError(message=f"unexpected {type(message).type!r} frame"))
                return "fatal"

    def _pending_bye(self) -> bool:
        """Whether the dying connection still delivers a ``bye`` frame."""
        if self._sock is None:
            return False
        try:
            self._sock.settimeout(1.0)
            while True:
                message = recv_message(self._sock)
                if message is None:
                    return False
                if isinstance(message, Bye):
                    return True
        except (OSError, CodecError):
            return False

    def _next_message(self) -> Message | None:
        if self._deferred:
            return self._deferred.popleft()
        assert self._sock is not None
        try:
            return recv_message(self._sock)
        except CodecError:
            return None

    def _handle_task(self, dispatch: TaskDispatch) -> bool:
        assert self._sock is not None
        self.events.emit(
            "task_start",
            trace_id=dispatch.trace_id,
            span_id=dispatch.span_id,
            task_index=dispatch.task_index,
            batch_id=dispatch.batch_id,
        )
        error: str | None = None
        payload = b""
        encoded: EncodedUpdate | None = None
        try:
            task = pickle.loads(dispatch.payload)
            result = task.run()
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            state = getattr(result, "state", None)
            if isinstance(state, EncodedUpdate):
                encoded = state
        except Exception:
            error = traceback.format_exc()
        self._results_computed += 1
        if (
            self.drop_after is not None
            and not self._dropped
            and error is None
            and self._results_computed >= self.drop_after
        ):
            # injected failure: vanish without uploading; the coordinator
            # requeues the task and our re-run after reconnect is bit-identical
            self._dropped = True
            self._log(f"injected drop after result #{self._results_computed}")
            self._close_socket()
            return False
        if encoded is not None and self._schema >= 3:
            # schema-3 peers get the codec-tagged frame so the coordinator's
            # compression counters see true encoded bytes, not pickle sizes;
            # older servers receive the same payload as a plain state_delta
            upload: TaskResult = EncodedResult(
                batch_id=dispatch.batch_id,
                task_index=dispatch.task_index,
                payload=payload,
                client_name=self.name,
                error=error,
                trace_id=dispatch.trace_id,
                span_id=dispatch.span_id,
                codec=encoded.codec,
                encoded_nbytes=encoded.nbytes,
                raw_nbytes=encoded.raw_nbytes,
            )
        else:
            upload = TaskResult(
                batch_id=dispatch.batch_id,
                task_index=dispatch.task_index,
                payload=payload,
                client_name=self.name,
                error=error,
                trace_id=dispatch.trace_id,
                span_id=dispatch.span_id,
            )
        send_message(self._sock, upload)
        self.events.emit(
            "task_upload",
            trace_id=dispatch.trace_id,
            span_id=dispatch.span_id,
            task_index=dispatch.task_index,
            batch_id=dispatch.batch_id,
            payload_bytes=len(payload),
            failed=error is not None,
        )
        return True

    # -- state fetching -------------------------------------------------------------------
    def _fetch_state(self, store_id: str, version: int) -> object:
        """Resolve a state handle over the wire (installed as the transport fetcher)."""
        if self._sock is None:
            raise CodecError("not connected while fetching state")
        send_message(self._sock, StateRequest(store_id=store_id, version=version))
        while True:
            message = recv_message(self._sock)
            if message is None:
                raise CodecError("connection lost while fetching state")
            if isinstance(message, WeightSlice):
                if message.store_id == store_id and message.version == version:
                    return pickle.loads(message.payload)
                continue  # stale slice from an earlier request
            if isinstance(message, ProtocolError):
                raise KeyError(message.message)
            if isinstance(message, Heartbeat):
                send_message(self._sock, Heartbeat(seq=message.seq))
                continue
            # anything else (new dispatches, round plans, bye) waits its turn
            self._deferred.append(message)

    # -- logging --------------------------------------------------------------------------
    def _log(self, text: str) -> None:
        if not self.quiet:
            print(f"repro-client[{self.name}]: {text}", file=sys.stderr, flush=True)
