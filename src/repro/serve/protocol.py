"""Versioned message vocabulary of the federation wire protocol.

The coordinator (:mod:`repro.serve.coordinator`) and the client runner
(:mod:`repro.serve.client`) speak length-prefixed frames
(:mod:`repro.serve.codec`), each carrying exactly one of the message
dataclasses below.  The conversation is:

========================  =========  ==================================================
message                   direction  meaning
========================  =========  ==================================================
``hello``                 c → s      identity + protocol/schema version negotiation
``hello_ack``             s → c      accept; advertises the heartbeat cadence
``round_plan``            s → c      a task batch (one federated round) is starting
``task_dispatch``         s → c      one pickled client task to execute
``state_request``         c → s      fetch a published ``StateStore`` version
``weight_slice``          s → c      the requested state payload (pickled dict)
``state_delta``           c → s      a task's result — the XOR delta upload in
                                     delta-transport mode, raw weights otherwise
``encoded_delta``         c → s      a codec-compressed task result, tagged with
                                     the codec name + true byte counts (schema ≥ 3)
``heartbeat``             both       liveness probe / echo
``bye``                   both       orderly shutdown of one side
``error``                 both       protocol violation or remote failure report
========================  =========  ==================================================

Two version numbers gate the handshake: ``PROTOCOL_VERSION`` covers the
framing and message vocabulary and must match exactly; ``SCHEMA_VERSION``
covers the *payload* pickles (task dataclasses, state dicts, deltas) and
is **negotiated**: the server accepts any client schema in
``[MIN_SCHEMA_VERSION, SCHEMA_VERSION]`` and its ``hello_ack`` advertises
the lower of the two sides' versions, which both sides then speak.  A
client outside that window receives an ``error`` frame and is
disconnected before any task can cross the wire.

Schema 2 added the optional ``trace_id``/``span_id`` telemetry fields on
``task_dispatch`` and ``state_delta`` frames (defaulted to empty
strings, so schema-1 peers interoperate unchanged — the negotiation
exists to make that compatibility contract explicit on the wire).

Schema 3 added the ``encoded_delta`` frame (:class:`EncodedResult`): a
codec-tagged ``state_delta`` subclass a client sends when the task's
upload is a lossy :class:`~repro.engine.codecs.EncodedUpdate`.  The tag
names the codec and carries the true encoded/raw byte counts so the
coordinator's compression counters never re-measure pickles.  Clients
only emit it when the negotiated schema is ≥ 3; to older servers the
same payload travels as a plain ``state_delta`` frame (the pickled
``EncodedUpdate`` inside is self-describing, so decoding is unaffected —
only the wire-level accounting tag is lost).

Payloads travel as pickles of this repository's own dataclasses, so the
protocol is for **trusted networks only** — the loopback and
cluster-internal deployments the reproduction targets, never the open
internet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

__all__ = [
    "PROTOCOL_VERSION",
    "SCHEMA_VERSION",
    "MIN_SCHEMA_VERSION",
    "MESSAGE_TYPES",
    "Message",
    "Hello",
    "HelloAck",
    "RoundPlan",
    "TaskDispatch",
    "StateRequest",
    "WeightSlice",
    "TaskResult",
    "EncodedResult",
    "Heartbeat",
    "Bye",
    "ProtocolError",
]

#: framing + message vocabulary version (checked in the handshake)
PROTOCOL_VERSION = 1

#: payload pickle schema version (task dataclasses, state dicts, deltas);
#: v2 added optional trace fields on task_dispatch/state_delta frames,
#: v3 the codec-tagged encoded_delta result frame
SCHEMA_VERSION = 3

#: oldest payload schema the server still accepts in the handshake
MIN_SCHEMA_VERSION = 1

#: wire name -> message class; populated by :func:`register_message`
MESSAGE_TYPES: dict[str, type["Message"]] = {}


def register_message(cls: type["Message"]) -> type["Message"]:
    """Class decorator adding a message to :data:`MESSAGE_TYPES` (unique names)."""
    if cls.type in MESSAGE_TYPES:
        raise ValueError(f"duplicate message type {cls.type!r}")
    MESSAGE_TYPES[cls.type] = cls
    return cls


@dataclass(frozen=True)
class Message:
    """Base class of every frame payload; ``type`` is the wire name."""

    type: ClassVar[str] = "message"


@register_message
@dataclass(frozen=True)
class Hello(Message):
    """Client's opening frame: identity and version negotiation."""

    type: ClassVar[str] = "hello"
    client_name: str
    protocol_version: int
    schema_version: int


@register_message
@dataclass(frozen=True)
class HelloAck(Message):
    """Server's handshake acceptance.

    ``resumed`` is True when ``client_name`` was connected before — the
    coordinator treats the connection as a reconnect and counts it in
    its churn statistics.
    """

    type: ClassVar[str] = "hello_ack"
    server_name: str
    protocol_version: int
    schema_version: int
    heartbeat_interval: float
    resumed: bool = False


@register_message
@dataclass(frozen=True)
class RoundPlan(Message):
    """Announces a task batch (one federated round's fan-out)."""

    type: ClassVar[str] = "round_plan"
    batch_id: int
    num_tasks: int


@register_message
@dataclass(frozen=True)
class TaskDispatch(Message):
    """One pickled :class:`~repro.engine.tasks.ClientTask` to execute."""

    type: ClassVar[str] = "task_dispatch"
    batch_id: int
    task_index: int
    payload: bytes
    #: telemetry identity (schema ≥ 2; empty strings for schema-1 peers)
    trace_id: str = ""
    span_id: str = ""


@register_message
@dataclass(frozen=True)
class StateRequest(Message):
    """Client asks for one published version of a server-side state store."""

    type: ClassVar[str] = "state_request"
    store_id: str
    version: int


@register_message
@dataclass(frozen=True)
class WeightSlice(Message):
    """The requested state payload: the store's pickled state dict."""

    type: ClassVar[str] = "weight_slice"
    store_id: str
    version: int
    payload: bytes


@register_message
@dataclass(frozen=True)
class TaskResult(Message):
    """A task's result upload (wire name ``state_delta``).

    Under the engine's delta transport the payload is the pickled
    bit-exact XOR :class:`~repro.engine.transport.StateDelta` the task
    produced; under legacy full transport it is the raw trained state.
    ``error`` carries the client-side traceback when the task raised
    instead of completing (``payload`` is empty then).
    """

    type: ClassVar[str] = "state_delta"
    batch_id: int
    task_index: int
    payload: bytes
    client_name: str = ""
    error: str | None = None
    #: telemetry identity echoed from the dispatch (schema ≥ 2)
    trace_id: str = ""
    span_id: str = ""


@register_message
@dataclass(frozen=True)
class EncodedResult(TaskResult):
    """A codec-compressed task result (wire name ``encoded_delta``, schema ≥ 3).

    Subclasses :class:`TaskResult` so every coordinator code path that
    routes on ``isinstance(message, TaskResult)`` handles it unchanged;
    the extra fields tag the payload with its codec and true byte
    counts (``encoded_nbytes`` = summed compressed blob sizes,
    ``raw_nbytes`` = what the same update would have moved uncompressed)
    for the coordinator's compression metrics.
    """

    type: ClassVar[str] = "encoded_delta"
    codec: str = ""
    encoded_nbytes: int = 0
    raw_nbytes: int = 0


@register_message
@dataclass(frozen=True)
class Heartbeat(Message):
    """Liveness probe; the receiving side echoes it back unchanged."""

    type: ClassVar[str] = "heartbeat"
    seq: int


@register_message
@dataclass(frozen=True)
class Bye(Message):
    """Orderly goodbye; the receiver stops expecting frames from the sender."""

    type: ClassVar[str] = "bye"
    reason: str = ""


@register_message
@dataclass(frozen=True)
class ProtocolError(Message):
    """A protocol violation or remote failure report (usually terminal)."""

    type: ClassVar[str] = "error"
    message: str
