"""Length-prefixed frame codec for the federation wire protocol.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of pickled :class:`~repro.serve.protocol.Message`.  The same
framing serves both sides of the connection: the coordinator reads and
writes through asyncio streams (:func:`read_message` /
:func:`write_message`), the client runner through plain blocking
sockets (:func:`recv_message` / :func:`send_message`).

Decoding validates that the payload is a registered message type —
anything else (a truncated frame, an unregistered class, a non-message
pickle) raises :class:`CodecError` so a confused peer fails loudly at
the frame boundary instead of deep inside the engine.
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import struct

from repro.serve.protocol import MESSAGE_TYPES, Message

__all__ = [
    "CodecError",
    "FrameTooLarge",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_body",
    "read_message",
    "write_message",
    "send_message",
    "recv_message",
]

#: frame header: 4-byte big-endian payload length
_HEADER = struct.Struct(">I")

#: refuse frames above this size (a corrupted header otherwise allocates GiBs)
MAX_FRAME_BYTES = 1 << 30


class CodecError(RuntimeError):
    """A frame could not be decoded into a registered protocol message."""


class FrameTooLarge(CodecError):
    """A frame's declared or actual size exceeds :data:`MAX_FRAME_BYTES`."""


def encode_frame(message: Message) -> bytes:
    """Serialise a message into one length-prefixed frame."""
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} byte cap")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Message:
    """Deserialise a frame body, validating it is a registered message."""
    try:
        message = pickle.loads(body)
    except Exception as error:  # any unpickling failure is a codec error, whatever its class
        raise CodecError(f"frame body failed to unpickle: {error}") from error
    if not isinstance(message, Message) or type(message).type not in MESSAGE_TYPES:
        raise CodecError(f"frame decoded to {type(message).__name__}, not a registered message")
    return message


# -- asyncio side (coordinator) -----------------------------------------------------------
async def read_message(reader: asyncio.StreamReader) -> Message | None:
    """Read one frame from a stream; ``None`` on a clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise CodecError("connection closed mid-header") from error
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"peer announced a {length} byte frame (cap {MAX_FRAME_BYTES})")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise CodecError("connection closed mid-frame") from error
    return decode_body(body)


async def write_message(writer: asyncio.StreamWriter, message: Message) -> None:
    """Write one frame to a stream and drain (the asyncio back-pressure point)."""
    writer.write(encode_frame(message))
    await writer.drain()


# -- blocking-socket side (client runner) -------------------------------------------------
def send_message(sock: socket.socket, message: Message) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, length: int) -> bytes | None:
    """Read exactly ``length`` bytes; ``None`` on EOF before the first byte."""
    buffer = bytearray()
    while len(buffer) < length:
        try:
            chunk = sock.recv(length - len(buffer))
        except (ConnectionResetError, BrokenPipeError):
            chunk = b""
        if not chunk:
            if not buffer:
                return None
            raise CodecError("connection closed mid-frame")
        buffer.extend(chunk)
    return bytes(buffer)


def recv_message(sock: socket.socket) -> Message | None:
    """Read one frame from a blocking socket; ``None`` on EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"peer announced a {length} byte frame (cap {MAX_FRAME_BYTES})")
    body = _recv_exact(sock, length)
    if body is None:
        raise CodecError("connection closed between header and frame body")
    return decode_body(body)
