"""Asyncio coordinator of the networked federation service.

The :class:`Coordinator` binds a TCP server, performs the versioned
``hello``/``hello_ack`` handshake with every connecting client and runs
one supervised :class:`~repro.serve.actors.ClientActor` per connection.
Task batches (one federated round each) enter through
:meth:`Coordinator.run_batch`: the payloads are wrapped in
:class:`TaskEnvelope` objects, queued on a shared pending queue that all
actors' work loops pull from, and the call resolves when every envelope
has a result — surviving client disconnects (requeue + rejoin grace
window), stragglers (timeout + redispatch to another client) and
duplicate results (first upload wins, later ones are counted and
dropped).

Operational telemetry: the coordinator's churn counters live in a
per-instance :class:`~repro.obs.metrics.MetricsRegistry`
(:attr:`Coordinator.metrics`; ``connects_total``, ``reconnects_total``,
``dispatched_total`` … plus the ``tasks_inflight`` gauge,
``heartbeat_rtt_seconds`` histogram and wire byte counters fed by the
actors), with the legacy :attr:`Coordinator.stats` dict preserved as a
read-only snapshot property.  Fleet lifecycle events (connect /
reconnect / disconnect, dispatches, results, straggler requeues) are
emitted on the process-wide :class:`~repro.obs.events.EventBus`, and an
optional :class:`~repro.obs.status.StatusServer`
(``ServeOptions.status_port``) exposes ``/metrics``, ``/healthz`` and
``/events`` over HTTP while a fleet runs.

The coordinator never touches training semantics: payloads are opaque
pickled bytes produced and consumed by
:class:`~repro.serve.executor.RemoteExecutor`, which is what slots into
the engine's ``Executor`` contract.
"""

from __future__ import annotations

import asyncio
import itertools
import time

from repro.obs.events import get_event_bus
from repro.obs.metrics import MetricsRegistry, registry as obs_registry
from repro.obs.sinks import RingBufferSink
from repro.obs.status import StatusServer
from repro.serve.actors import ClientActor
from repro.serve.codec import CodecError, read_message, write_message
from repro.serve.options import ServeOptions
from repro.serve.protocol import (
    MIN_SCHEMA_VERSION,
    PROTOCOL_VERSION,
    SCHEMA_VERSION,
    EncodedResult,
    Hello,
    HelloAck,
    ProtocolError,
    RoundPlan,
    TaskResult,
)

__all__ = ["Coordinator", "TaskBatch", "TaskEnvelope", "STAT_KEYS"]

#: server identity advertised in every ``hello_ack``
SERVER_NAME = "repro-serve"

#: the churn counters every coordinator maintains (``stats`` dict keys)
STAT_KEYS = (
    "connects",
    "reconnects",
    "dispatched",
    "results",
    "requeues",
    "duplicate_results",
    "stale_results",
    "state_requests",
)


class TaskEnvelope:
    """One task payload in flight: dispatch bookkeeping around opaque bytes."""

    def __init__(self, batch: "TaskBatch", index: int, payload: bytes, trace_id: str = "", span_id: str = ""):
        self.batch = batch
        self.index = index
        self.payload = payload
        self.trace_id = trace_id
        self.span_id = span_id
        self.attempts = 0
        self.completed = False
        #: set when a result (or the batch's failure) resolves this envelope
        self.done = asyncio.Event()


class TaskBatch:
    """One ``run_batch`` call: envelopes, results and completion state."""

    def __init__(self, batch_id: int, payloads: list[bytes], traces: "list[tuple[str, str]] | None" = None):
        self.batch_id = batch_id
        self.envelopes = [
            TaskEnvelope(
                self,
                index,
                payload,
                trace_id=traces[index][0] if traces is not None else "",
                span_id=traces[index][1] if traces is not None else "",
            )
            for index, payload in enumerate(payloads)
        ]
        self.results: list[bytes | None] = [None] * len(payloads)
        self.remaining = len(payloads)
        self.error: str | None = None
        #: set once every envelope has a result, or on failure
        self.finished = asyncio.Event()

    def fail(self, reason: str) -> None:
        """Mark the batch failed and release every waiter (first reason wins)."""
        if self.finished.is_set():
            return
        self.error = reason
        self.finished.set()
        for envelope in self.envelopes:
            envelope.done.set()


class Coordinator:
    """The federation server: connection handshakes, actors and task batches."""

    def __init__(self, options: ServeOptions | None = None):
        self.options = options if options is not None else ServeOptions()
        #: live actors by client name (one connection per name; newest wins)
        self.actors: dict[str, ClientActor] = {}
        #: this fleet's metrics (layered over the process registry by /metrics)
        self.metrics = MetricsRegistry()
        self._counters = {
            key: self.metrics.counter(f"{key}_total", f"coordinator {key.replace('_', ' ')}")
            for key in STAT_KEYS
        }
        self._inflight_gauge = self.metrics.gauge(
            "tasks_inflight", "tasks dispatched to clients and not yet resolved"
        )
        #: heartbeat send→ack round-trip times, observed by the actors
        self.heartbeat_rtt = self.metrics.histogram(
            "heartbeat_rtt_seconds",
            "heartbeat probe round-trip time",
            buckets=(0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0),
        )
        #: application bytes moved over the wire (task + state payloads)
        self.bytes_down = self.metrics.counter(
            "bytes_down_total", "payload bytes sent to clients (dispatches and weight slices)"
        )
        self.bytes_up = self.metrics.counter(
            "bytes_up_total", "payload bytes received from clients (result uploads)"
        )
        #: true post-codec upload bytes reported by schema-3 encoded_delta frames
        self.codec_bytes_up = self.metrics.counter(
            "codec_bytes_up_total", "encoded update bytes reported by codec-tagged uploads"
        )
        self.codec_raw_bytes_up = self.metrics.counter(
            "codec_raw_bytes_up_total", "uncompressed-equivalent bytes of codec-tagged uploads"
        )
        self._known_clients: set[str] = set()
        self._pending: "asyncio.Queue[TaskEnvelope]" = asyncio.Queue()
        self._batch: TaskBatch | None = None
        self._batch_ids = itertools.count(1)
        self._server: asyncio.base_events.Server | None = None
        self._client_joined: asyncio.Event = asyncio.Event()
        self._watchdog: asyncio.Task | None = None
        self.address: tuple[str, int] | None = None
        self._status: StatusServer | None = None
        self._status_ring: RingBufferSink | None = None

    # -- telemetry ------------------------------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        """Snapshot of the churn counters (legacy dict view of the registry)."""
        return {key: int(counter.value) for key, counter in self._counters.items()}

    def count(self, key: str, amount: int = 1) -> None:
        """Increment one of the :data:`STAT_KEYS` churn counters."""
        self._counters[key].inc(amount)

    def update_inflight(self) -> None:
        """Recompute the ``tasks_inflight`` gauge from the live actors."""
        self._inflight_gauge.set(sum(len(actor.inflight) for actor in self.actors.values()))

    @property
    def status_address(self) -> tuple[str, int] | None:
        """Bound ``(host, port)`` of the status endpoint, if enabled."""
        if self._status is None:
            return None
        return (self._status.host, self._status.port)

    # -- lifecycle ------------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the TCP server and return the bound ``(host, port)``."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.options.host, port=self.options.port
            )
            sockname = self._server.sockets[0].getsockname()
            self.address = (sockname[0], sockname[1])
            if self.options.status_port is not None:
                # the ring feeds /events with the most recent telemetry even
                # when no JSONL sink was configured
                self._status_ring = RingBufferSink(capacity=1024)
                get_event_bus().attach(self._status_ring)
                self._status = StatusServer(
                    [obs_registry(), self.metrics],
                    host=self.options.host,
                    port=self.options.status_port,
                    ring=self._status_ring,
                )
                await self._status.start()
        assert self.address is not None
        return self.address

    async def stop(self) -> None:
        """Send ``bye`` to every client, close all actors and the server."""
        if self._batch is not None and not self._batch.finished.is_set():
            self._batch.fail("coordinator stopped mid-batch")
        for actor in list(self.actors.values()):
            await actor.stop("server shutting down", send_bye=True)
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        if self._status is not None:
            await self._status.stop()
            self._status = None
        if self._status_ring is not None:
            get_event_bus().detach(self._status_ring)
            self._status_ring = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling --------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            message = await asyncio.wait_for(read_message(reader), timeout=self.options.connect_timeout)
        except (asyncio.TimeoutError, CodecError, OSError):
            writer.close()
            return
        if not isinstance(message, Hello):
            await self._reject(writer, "expected a hello frame before anything else")
            return
        if message.protocol_version != PROTOCOL_VERSION:
            await self._reject(
                writer,
                f"protocol version mismatch: server speaks protocol {PROTOCOL_VERSION}, client "
                f"{message.client_name!r} speaks protocol {message.protocol_version}",
            )
            return
        if not MIN_SCHEMA_VERSION <= message.schema_version <= SCHEMA_VERSION:
            await self._reject(
                writer,
                f"schema version mismatch: server accepts schema {MIN_SCHEMA_VERSION}..{SCHEMA_VERSION}, "
                f"client {message.client_name!r} speaks schema {message.schema_version}",
            )
            return
        # both sides speak the lower of the two schemas (schema-1 peers
        # simply never see the optional trace fields populated)
        negotiated_schema = min(SCHEMA_VERSION, message.schema_version)
        name = message.client_name
        resumed = name in self._known_clients
        superseded = self.actors.get(name)
        if superseded is not None:
            await superseded.stop(f"superseded by a new connection from {name!r}")
        self._known_clients.add(name)
        self.count("reconnects" if resumed else "connects")
        get_event_bus().emit(
            "client_reconnect" if resumed else "client_connect",
            client=name,
            schema_version=negotiated_schema,
        )
        try:
            await write_message(
                writer,
                HelloAck(
                    server_name=SERVER_NAME,
                    protocol_version=PROTOCOL_VERSION,
                    schema_version=negotiated_schema,
                    heartbeat_interval=self.options.heartbeat_interval,
                    resumed=resumed,
                ),
            )
        except (OSError, CodecError):
            writer.close()
            return
        actor = ClientActor(self, name, reader, writer, self.options)
        actor.schema_version = negotiated_schema
        self.actors[name] = actor
        actor.start()
        self._client_joined.set()

    async def _reject(self, writer: asyncio.StreamWriter, reason: str) -> None:
        try:
            await write_message(writer, ProtocolError(message=reason))
            writer.close()
            await writer.wait_closed()
        except (OSError, CodecError):  # pragma: no cover - peer already gone
            writer.close()

    # -- batch execution ------------------------------------------------------------------
    async def run_batch(
        self, payloads: list[bytes], traces: "list[tuple[str, str]] | None" = None
    ) -> list[bytes]:
        """Execute one batch of opaque task payloads, preserving order.

        Waits for the client quorum, announces a ``round_plan``, queues
        every payload for the actors' work loops and resolves when all
        results are in.  ``traces`` optionally aligns one
        ``(trace_id, span_id)`` pair with each payload so dispatches and
        results carry telemetry identity over the wire.  Raises
        ``RuntimeError`` when the batch fails (quorum never met, a task
        exhausted its attempts, a client reported an unrecoverable
        error, or every client vanished and none rejoined within
        ``connect_timeout``).
        """
        if self._batch is not None and not self._batch.finished.is_set():
            raise RuntimeError("a batch is already in flight; run_batch calls must be sequential")
        if not payloads:
            return []
        if traces is not None and len(traces) != len(payloads):
            raise ValueError("traces must align one (trace_id, span_id) pair per payload")
        await self._wait_for_quorum()
        batch = TaskBatch(next(self._batch_ids), payloads, traces)
        self._batch = batch
        try:
            plan = RoundPlan(batch_id=batch.batch_id, num_tasks=len(payloads))
            for actor in list(self.actors.values()):
                await actor.enqueue(plan)
            for envelope in batch.envelopes:
                self._pending.put_nowait(envelope)
            await batch.finished.wait()
            if batch.error is not None:
                raise RuntimeError(f"batch {batch.batch_id} failed: {batch.error}")
            return [result for result in batch.results if result is not None]
        finally:
            self._batch = None
            self._drain_pending()

    async def _wait_for_quorum(self) -> None:
        deadline = time.monotonic() + self.options.connect_timeout
        while len(self.actors) < self.options.min_clients:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"waited {self.options.connect_timeout}s for {self.options.min_clients} "
                    f"client(s); only {len(self.actors)} connected"
                )
            self._client_joined.clear()
            try:
                await asyncio.wait_for(self._client_joined.wait(), timeout=min(remaining, 0.5))
            except asyncio.TimeoutError:
                continue

    def _drain_pending(self) -> None:
        while True:
            try:
                self._pending.get_nowait()
            except asyncio.QueueEmpty:
                return

    # -- actor callbacks ------------------------------------------------------------------
    async def next_envelope(self) -> TaskEnvelope:
        """Hand a work loop the next pending envelope (awaits until one exists)."""
        return await self._pending.get()

    def requeue(self, envelope: TaskEnvelope, *, reason: str) -> None:
        """Put an unresolved envelope back on the pending queue."""
        if envelope.completed or envelope.batch.finished.is_set():
            return
        self.count("requeues")
        get_event_bus().emit(
            "straggler_requeue",
            trace_id=envelope.trace_id,
            span_id=envelope.span_id,
            task_index=envelope.index,
            batch_id=envelope.batch.batch_id,
            reason=reason,
        )
        self._pending.put_nowait(envelope)

    def give_up(self, envelope: TaskEnvelope) -> None:
        """Fail the batch: an envelope exhausted its dispatch attempts."""
        envelope.batch.fail(
            f"task {envelope.index} exhausted {envelope.attempts} dispatch attempts without a result"
        )

    def complete_result(self, message: TaskResult) -> None:
        """Record a client's result upload (first result per task wins)."""
        batch = self._batch
        if batch is None or batch.batch_id != message.batch_id or batch.finished.is_set():
            self.count("stale_results")
            return
        if not 0 <= message.task_index < len(batch.envelopes):
            batch.fail(f"client {message.client_name!r} uploaded an out-of-range task index {message.task_index}")
            return
        envelope = batch.envelopes[message.task_index]
        if envelope.completed:
            self.count("duplicate_results")
            return
        if message.error is not None:
            batch.fail(f"task {envelope.index} failed on client {message.client_name!r}: {message.error}")
            return
        envelope.completed = True
        envelope.done.set()
        batch.results[envelope.index] = message.payload
        batch.remaining -= 1
        self.count("results")
        self.bytes_up.inc(len(message.payload))
        codec = ""
        if isinstance(message, EncodedResult):
            codec = message.codec
            self.codec_bytes_up.inc(message.encoded_nbytes)
            self.codec_raw_bytes_up.inc(message.raw_nbytes)
        get_event_bus().emit(
            "task_result",
            trace_id=envelope.trace_id,
            span_id=envelope.span_id,
            task_index=envelope.index,
            batch_id=batch.batch_id,
            client=message.client_name,
            payload_bytes=len(message.payload),
            codec=codec,
        )
        if batch.remaining == 0:
            batch.finished.set()

    def detach(self, actor: ClientActor, reason: str) -> None:
        """Unregister a dead actor and requeue its unresolved in-flight work."""
        if self.actors.get(actor.name) is actor:
            del self.actors[actor.name]
        get_event_bus().emit("client_disconnect", client=actor.name, reason=reason)
        for envelope in list(actor.inflight):
            self.requeue(envelope, reason=f"client {actor.name!r} detached: {reason}")
        actor.inflight.clear()
        self.update_inflight()
        if self._batch is not None and not self._batch.finished.is_set() and not self.actors:
            self._spawn_rejoin_watchdog(self._batch)

    def _spawn_rejoin_watchdog(self, batch: TaskBatch) -> None:
        """Give disconnected clients ``connect_timeout`` seconds to rejoin."""

        async def watchdog() -> None:
            deadline = time.monotonic() + self.options.connect_timeout
            while time.monotonic() < deadline:
                if self.actors or batch.finished.is_set():
                    return
                await asyncio.sleep(0.05)
            if not self.actors and not batch.finished.is_set():
                batch.fail(
                    f"all clients disconnected and none rejoined within {self.options.connect_timeout}s"
                )

        if self._watchdog is not None and not self._watchdog.done():
            return
        self._watchdog = asyncio.get_running_loop().create_task(watchdog(), name="repro-serve-rejoin-watchdog")
