"""Asyncio coordinator of the networked federation service.

The :class:`Coordinator` binds a TCP server, performs the versioned
``hello``/``hello_ack`` handshake with every connecting client and runs
one supervised :class:`~repro.serve.actors.ClientActor` per connection.
Task batches (one federated round each) enter through
:meth:`Coordinator.run_batch`: the payloads are wrapped in
:class:`TaskEnvelope` objects, queued on a shared pending queue that all
actors' work loops pull from, and the call resolves when every envelope
has a result — surviving client disconnects (requeue + rejoin grace
window), stragglers (timeout + redispatch to another client) and
duplicate results (first upload wins, later ones are counted and
dropped).

The coordinator never touches training semantics: payloads are opaque
pickled bytes produced and consumed by
:class:`~repro.serve.executor.RemoteExecutor`, which is what slots into
the engine's ``Executor`` contract.
"""

from __future__ import annotations

import asyncio
import itertools
import time

from repro.serve.actors import ClientActor
from repro.serve.codec import CodecError, read_message, write_message
from repro.serve.options import ServeOptions
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    SCHEMA_VERSION,
    Hello,
    HelloAck,
    ProtocolError,
    RoundPlan,
    TaskResult,
)

__all__ = ["Coordinator", "TaskBatch", "TaskEnvelope"]

#: server identity advertised in every ``hello_ack``
SERVER_NAME = "repro-serve"


class TaskEnvelope:
    """One task payload in flight: dispatch bookkeeping around opaque bytes."""

    def __init__(self, batch: "TaskBatch", index: int, payload: bytes):
        self.batch = batch
        self.index = index
        self.payload = payload
        self.attempts = 0
        self.completed = False
        #: set when a result (or the batch's failure) resolves this envelope
        self.done = asyncio.Event()


class TaskBatch:
    """One ``run_batch`` call: envelopes, results and completion state."""

    def __init__(self, batch_id: int, payloads: list[bytes]):
        self.batch_id = batch_id
        self.envelopes = [TaskEnvelope(self, index, payload) for index, payload in enumerate(payloads)]
        self.results: list[bytes | None] = [None] * len(payloads)
        self.remaining = len(payloads)
        self.error: str | None = None
        #: set once every envelope has a result, or on failure
        self.finished = asyncio.Event()

    def fail(self, reason: str) -> None:
        """Mark the batch failed and release every waiter (first reason wins)."""
        if self.finished.is_set():
            return
        self.error = reason
        self.finished.set()
        for envelope in self.envelopes:
            envelope.done.set()


class Coordinator:
    """The federation server: connection handshakes, actors and task batches."""

    def __init__(self, options: ServeOptions | None = None):
        self.options = options if options is not None else ServeOptions()
        #: live actors by client name (one connection per name; newest wins)
        self.actors: dict[str, ClientActor] = {}
        #: churn counters exposed through ``RemoteExecutor.stats()``
        self.stats: dict[str, int] = {
            "connects": 0,
            "reconnects": 0,
            "dispatched": 0,
            "results": 0,
            "requeues": 0,
            "duplicate_results": 0,
            "stale_results": 0,
            "state_requests": 0,
        }
        self._known_clients: set[str] = set()
        self._pending: "asyncio.Queue[TaskEnvelope]" = asyncio.Queue()
        self._batch: TaskBatch | None = None
        self._batch_ids = itertools.count(1)
        self._server: asyncio.base_events.Server | None = None
        self._client_joined: asyncio.Event = asyncio.Event()
        self._watchdog: asyncio.Task | None = None
        self.address: tuple[str, int] | None = None

    # -- lifecycle ------------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the TCP server and return the bound ``(host, port)``."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.options.host, port=self.options.port
            )
            sockname = self._server.sockets[0].getsockname()
            self.address = (sockname[0], sockname[1])
        assert self.address is not None
        return self.address

    async def stop(self) -> None:
        """Send ``bye`` to every client, close all actors and the server."""
        if self._batch is not None and not self._batch.finished.is_set():
            self._batch.fail("coordinator stopped mid-batch")
        for actor in list(self.actors.values()):
            await actor.stop("server shutting down", send_bye=True)
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling --------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            message = await asyncio.wait_for(read_message(reader), timeout=self.options.connect_timeout)
        except (asyncio.TimeoutError, CodecError, OSError):
            writer.close()
            return
        if not isinstance(message, Hello):
            await self._reject(writer, "expected a hello frame before anything else")
            return
        if message.protocol_version != PROTOCOL_VERSION or message.schema_version != SCHEMA_VERSION:
            await self._reject(
                writer,
                f"version mismatch: server speaks protocol {PROTOCOL_VERSION} / schema {SCHEMA_VERSION}, "
                f"client {message.client_name!r} speaks protocol {message.protocol_version} / "
                f"schema {message.schema_version}",
            )
            return
        name = message.client_name
        resumed = name in self._known_clients
        superseded = self.actors.get(name)
        if superseded is not None:
            await superseded.stop(f"superseded by a new connection from {name!r}")
        self._known_clients.add(name)
        self.stats["reconnects" if resumed else "connects"] += 1
        try:
            await write_message(
                writer,
                HelloAck(
                    server_name=SERVER_NAME,
                    protocol_version=PROTOCOL_VERSION,
                    schema_version=SCHEMA_VERSION,
                    heartbeat_interval=self.options.heartbeat_interval,
                    resumed=resumed,
                ),
            )
        except (OSError, CodecError):
            writer.close()
            return
        actor = ClientActor(self, name, reader, writer, self.options)
        self.actors[name] = actor
        actor.start()
        self._client_joined.set()

    async def _reject(self, writer: asyncio.StreamWriter, reason: str) -> None:
        try:
            await write_message(writer, ProtocolError(message=reason))
            writer.close()
            await writer.wait_closed()
        except (OSError, CodecError):  # pragma: no cover - peer already gone
            writer.close()

    # -- batch execution ------------------------------------------------------------------
    async def run_batch(self, payloads: list[bytes]) -> list[bytes]:
        """Execute one batch of opaque task payloads, preserving order.

        Waits for the client quorum, announces a ``round_plan``, queues
        every payload for the actors' work loops and resolves when all
        results are in.  Raises ``RuntimeError`` when the batch fails
        (quorum never met, a task exhausted its attempts, a client
        reported an unrecoverable error, or every client vanished and
        none rejoined within ``connect_timeout``).
        """
        if self._batch is not None and not self._batch.finished.is_set():
            raise RuntimeError("a batch is already in flight; run_batch calls must be sequential")
        if not payloads:
            return []
        await self._wait_for_quorum()
        batch = TaskBatch(next(self._batch_ids), payloads)
        self._batch = batch
        try:
            plan = RoundPlan(batch_id=batch.batch_id, num_tasks=len(payloads))
            for actor in list(self.actors.values()):
                await actor.enqueue(plan)
            for envelope in batch.envelopes:
                self._pending.put_nowait(envelope)
            await batch.finished.wait()
            if batch.error is not None:
                raise RuntimeError(f"batch {batch.batch_id} failed: {batch.error}")
            return [result for result in batch.results if result is not None]
        finally:
            self._batch = None
            self._drain_pending()

    async def _wait_for_quorum(self) -> None:
        deadline = time.monotonic() + self.options.connect_timeout
        while len(self.actors) < self.options.min_clients:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"waited {self.options.connect_timeout}s for {self.options.min_clients} "
                    f"client(s); only {len(self.actors)} connected"
                )
            self._client_joined.clear()
            try:
                await asyncio.wait_for(self._client_joined.wait(), timeout=min(remaining, 0.5))
            except asyncio.TimeoutError:
                continue

    def _drain_pending(self) -> None:
        while True:
            try:
                self._pending.get_nowait()
            except asyncio.QueueEmpty:
                return

    # -- actor callbacks ------------------------------------------------------------------
    async def next_envelope(self) -> TaskEnvelope:
        """Hand a work loop the next pending envelope (awaits until one exists)."""
        return await self._pending.get()

    def requeue(self, envelope: TaskEnvelope, *, reason: str) -> None:
        """Put an unresolved envelope back on the pending queue."""
        if envelope.completed or envelope.batch.finished.is_set():
            return
        self.stats["requeues"] += 1
        self._pending.put_nowait(envelope)

    def give_up(self, envelope: TaskEnvelope) -> None:
        """Fail the batch: an envelope exhausted its dispatch attempts."""
        envelope.batch.fail(
            f"task {envelope.index} exhausted {envelope.attempts} dispatch attempts without a result"
        )

    def complete_result(self, message: TaskResult) -> None:
        """Record a client's result upload (first result per task wins)."""
        batch = self._batch
        if batch is None or batch.batch_id != message.batch_id or batch.finished.is_set():
            self.stats["stale_results"] += 1
            return
        if not 0 <= message.task_index < len(batch.envelopes):
            batch.fail(f"client {message.client_name!r} uploaded an out-of-range task index {message.task_index}")
            return
        envelope = batch.envelopes[message.task_index]
        if envelope.completed:
            self.stats["duplicate_results"] += 1
            return
        if message.error is not None:
            batch.fail(f"task {envelope.index} failed on client {message.client_name!r}: {message.error}")
            return
        envelope.completed = True
        envelope.done.set()
        batch.results[envelope.index] = message.payload
        batch.remaining -= 1
        self.stats["results"] += 1
        if batch.remaining == 0:
            batch.finished.set()

    def detach(self, actor: ClientActor, reason: str) -> None:
        """Unregister a dead actor and requeue its unresolved in-flight work."""
        if self.actors.get(actor.name) is actor:
            del self.actors[actor.name]
        for envelope in list(actor.inflight):
            self.requeue(envelope, reason=f"client {actor.name!r} detached: {reason}")
        actor.inflight.clear()
        if self._batch is not None and not self._batch.finished.is_set() and not self.actors:
            self._spawn_rejoin_watchdog(self._batch)

    def _spawn_rejoin_watchdog(self, batch: TaskBatch) -> None:
        """Give disconnected clients ``connect_timeout`` seconds to rejoin."""

        async def watchdog() -> None:
            deadline = time.monotonic() + self.options.connect_timeout
            while time.monotonic() < deadline:
                if self.actors or batch.finished.is_set():
                    return
                await asyncio.sleep(0.05)
            if not self.actors and not batch.finished.is_set():
                batch.fail(
                    f"all clients disconnected and none rejoined within {self.options.connect_timeout}s"
                )

        if self._watchdog is not None and not self._watchdog.done():
            return
        self._watchdog = asyncio.get_running_loop().create_task(watchdog(), name="repro-serve-rejoin-watchdog")
