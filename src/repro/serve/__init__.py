"""``repro.serve`` — the networked federation service.

Turns the engine's in-process executor fan-out into a real
client/server deployment while keeping the training loop — and its
bit-exact results — untouched:

* :mod:`repro.serve.protocol` / :mod:`repro.serve.codec` — the
  versioned, length-prefixed wire protocol (``hello`` handshake,
  ``round_plan``/``task_dispatch`` fan-out, ``weight_slice`` downloads,
  XOR ``state_delta`` uploads, heartbeats, ``bye``);
* :class:`Coordinator` — asyncio server running one supervised
  :class:`~repro.serve.actors.ClientActor` per connection, with
  straggler requeue, reconnect grace windows and bounded send queues
  for back-pressure;
* :class:`RemoteExecutor` — slots the coordinator into the engine's
  ``Executor`` contract (``FederatedConfig.executor = "remote"``);
* :class:`ClientRunner` — the worker side (``repro client``), with
  deterministic reconnect backoff and wire-served state fetching.

The wire format pickles this repository's own dataclasses: use it on
trusted networks (loopback, cluster-internal) only.

Exports resolve lazily (PEP 562) so importing the protocol vocabulary
does not pull in asyncio server machinery.
"""

from __future__ import annotations

import importlib
from typing import Any

_EXPORTS: dict[str, str] = {
    "PROTOCOL_VERSION": "repro.serve.protocol",
    "SCHEMA_VERSION": "repro.serve.protocol",
    "MESSAGE_TYPES": "repro.serve.protocol",
    "Message": "repro.serve.protocol",
    "CodecError": "repro.serve.codec",
    "ServeOptions": "repro.serve.options",
    "configure_serve": "repro.serve.options",
    "serve_options": "repro.serve.options",
    "Coordinator": "repro.serve.coordinator",
    "ClientActor": "repro.serve.actors",
    "RemoteExecutor": "repro.serve.executor",
    "ClientRunner": "repro.serve.client",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.serve' has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
