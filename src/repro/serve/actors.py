"""Supervised per-client actors on the coordinator side.

Every accepted connection gets one :class:`ClientActor` owning four
supervised coroutines:

* **reader** — decodes inbound frames: task results are handed to the
  coordinator, ``state_request`` frames are answered with
  ``weight_slice`` payloads from the live
  :class:`~repro.engine.transport.StateStore` registry, heartbeats
  refresh the liveness watermark;
* **sender** — drains the actor's *bounded* send queue into the socket.
  The queue bound is the protocol's back-pressure point: producers
  (work loops, state serving, heartbeats) suspend on a full queue
  instead of buffering without limit for a slow client;
* **work loops** (``max_inflight`` of them) — pull task envelopes from
  the coordinator's shared pending queue, dispatch them to this client
  and wait for the result; a straggler timeout requeues the envelope so
  another client can rescue the round;
* **heartbeat** — probes the client periodically and declares the
  connection dead after ``liveness_timeout`` seconds of silence.  Each
  probe's send time is remembered by sequence number, so the client's
  echo yields a send→ack round-trip observation on the coordinator's
  ``heartbeat_rtt_seconds`` histogram instead of being fire-and-forget.

The supervisor wraps all of them: the first child to exit (EOF, codec
error, liveness timeout, ``bye``) cancels the rest, requeues the
actor's in-flight work through :meth:`Coordinator.detach` and closes
the socket — so a client crash mid-round costs a redispatch, never the
round.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import TYPE_CHECKING

from repro.engine.transport import server_state_bytes
from repro.obs.events import get_event_bus
from repro.serve.codec import read_message, write_message
from repro.serve.options import ServeOptions
from repro.serve.protocol import (
    Bye,
    Heartbeat,
    Message,
    ProtocolError,
    StateRequest,
    TaskDispatch,
    TaskResult,
    WeightSlice,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.coordinator import Coordinator, TaskEnvelope

__all__ = ["ClientActor", "ActorFailure"]


class ActorFailure(RuntimeError):
    """Terminal condition of one client connection (EOF, timeout, ``bye``)."""


class ClientActor:
    """One supervised client connection (see the module docstring)."""

    def __init__(
        self,
        coordinator: "Coordinator",
        name: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        options: ServeOptions,
    ):
        self.coordinator = coordinator
        self.name = name
        self.reader = reader
        self.writer = writer
        self.options = options
        #: bounded send queue — the per-actor back-pressure point
        self.send_queue: "asyncio.Queue[Message]" = asyncio.Queue(maxsize=options.send_queue_size)
        #: envelopes dispatched to this client and not yet resolved
        self.inflight: "set[TaskEnvelope]" = set()
        self.last_seen = time.monotonic()
        #: payload schema negotiated in the handshake (set by the coordinator)
        self.schema_version: int = 0
        #: send time of each outstanding heartbeat probe, by sequence number
        self._heartbeat_sent: dict[int, float] = {}
        #: set once the supervisor finished cleanup (socket closed, work requeued)
        self.closed = asyncio.Event()
        self._supervisor: asyncio.Task | None = None
        self._close_reason: str | None = None
        self._send_bye = False
        self._cleaning = False

    def start(self) -> None:
        """Spawn the supervisor (idempotent)."""
        if self._supervisor is None:
            self._supervisor = asyncio.get_running_loop().create_task(
                self._supervise(), name=f"repro-serve-actor-{self.name}"
            )

    async def stop(self, reason: str, *, send_bye: bool = False) -> None:
        """Cancel the actor and wait for its cleanup to finish."""
        self._close_reason = reason
        self._send_bye = send_bye
        if self._supervisor is None:
            self.closed.set()
            return
        # never cancel a supervisor already in its cleanup section: the
        # CancelledError would land mid-finally and abort the cleanup that
        # sets `closed`, deadlocking this wait
        if not self._cleaning and not self._supervisor.done():
            self._supervisor.cancel()
        await self.closed.wait()

    async def enqueue(self, message: Message) -> None:
        """Queue a frame for this client (suspends when the bound is hit)."""
        await self.send_queue.put(message)

    # -- supervision ----------------------------------------------------------------------
    async def _supervise(self) -> None:
        loop = asyncio.get_running_loop()
        children = [
            loop.create_task(self._reader_loop(), name=f"{self.name}-reader"),
            loop.create_task(self._sender_loop(), name=f"{self.name}-sender"),
            loop.create_task(self._heartbeat_loop(), name=f"{self.name}-heartbeat"),
        ]
        children.extend(
            loop.create_task(self._work_loop(), name=f"{self.name}-work-{slot}")
            for slot in range(self.options.max_inflight)
        )
        reason = "actor loop exited"
        try:
            done, _ = await asyncio.wait(children, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                error = task.exception()
                if error is not None:
                    reason = str(error)
                    break
        except asyncio.CancelledError:
            reason = self._close_reason or "cancelled"
        finally:
            self._cleaning = True
            for task in children:
                task.cancel()
            # a late cancel() must not abort this cleanup: `closed` has to be
            # set no matter what, or stop() callers wait forever
            try:
                await asyncio.gather(*children, return_exceptions=True)
            except asyncio.CancelledError:
                pass
            try:
                await self._close_connection()
            except asyncio.CancelledError:
                pass
            self.coordinator.detach(self, reason)
            self.closed.set()

    async def _close_connection(self) -> None:
        try:
            if self._send_bye:
                await write_message(self.writer, Bye(reason=self._close_reason or "shutdown"))
            self.writer.close()
            await self.writer.wait_closed()
        except (OSError, asyncio.CancelledError):  # pragma: no cover - peer already gone
            pass

    # -- children -------------------------------------------------------------------------
    async def _reader_loop(self) -> None:
        while True:
            message = await read_message(self.reader)
            if message is None:
                raise ActorFailure(f"client {self.name!r} disconnected")
            self.last_seen = time.monotonic()
            if isinstance(message, TaskResult):
                self.coordinator.complete_result(message)
            elif isinstance(message, StateRequest):
                await self._serve_state(message)
            elif isinstance(message, Heartbeat):
                # the echo closes the probe's send→ack loop: observe the RTT
                sent_at = self._heartbeat_sent.pop(message.seq, None)
                if sent_at is not None:
                    self.coordinator.heartbeat_rtt.observe(time.monotonic() - sent_at)
            elif isinstance(message, Bye):
                raise ActorFailure(f"client {self.name!r} said goodbye: {message.reason or 'bye'}")
            elif isinstance(message, ProtocolError):
                raise ActorFailure(f"client {self.name!r} reported an error: {message.message}")
            else:
                raise ActorFailure(f"unexpected {type(message).type!r} frame from client {self.name!r}")

    async def _serve_state(self, request: StateRequest) -> None:
        self.coordinator.count("state_requests")
        try:
            payload = server_state_bytes(request.store_id, request.version)
        except KeyError as error:
            await self.enqueue(ProtocolError(message=str(error)))
            return
        self.coordinator.bytes_down.inc(len(payload))
        await self.enqueue(WeightSlice(store_id=request.store_id, version=request.version, payload=payload))

    async def _sender_loop(self) -> None:
        while True:
            message = await self.send_queue.get()
            await write_message(self.writer, message)

    async def _heartbeat_loop(self) -> None:
        for seq in itertools.count():
            await asyncio.sleep(self.options.heartbeat_interval)
            if time.monotonic() - self.last_seen > self.options.liveness_timeout:
                raise ActorFailure(
                    f"client {self.name!r} sent no frame for over {self.options.liveness_timeout}s"
                )
            # stamp before enqueueing: the RTT then includes our own send
            # queue, which is exactly the backlog an operator wants to see
            self._heartbeat_sent[seq] = time.monotonic()
            if len(self._heartbeat_sent) > 64:
                # unanswered probes on a silent-but-alive connection must not
                # accumulate forever; liveness_timeout catches true death
                oldest = min(self._heartbeat_sent)
                del self._heartbeat_sent[oldest]
            await self.enqueue(Heartbeat(seq=seq))

    async def _work_loop(self) -> None:
        while True:
            envelope = await self.coordinator.next_envelope()
            if envelope.completed or envelope.batch.finished.is_set():
                continue
            if envelope.attempts >= self.options.max_task_attempts:
                self.coordinator.give_up(envelope)
                continue
            envelope.attempts += 1
            # no awaits between claiming and registering the envelope: a
            # cancellation here would otherwise lose it for good
            self.inflight.add(envelope)
            self.coordinator.update_inflight()
            try:
                await self.enqueue(
                    TaskDispatch(
                        batch_id=envelope.batch.batch_id,
                        task_index=envelope.index,
                        payload=envelope.payload,
                        trace_id=envelope.trace_id,
                        span_id=envelope.span_id,
                    )
                )
                self.coordinator.count("dispatched")
                self.coordinator.bytes_down.inc(len(envelope.payload))
                get_event_bus().emit(
                    "task_dispatch",
                    trace_id=envelope.trace_id,
                    span_id=envelope.span_id,
                    task_index=envelope.index,
                    batch_id=envelope.batch.batch_id,
                    client=self.name,
                    attempt=envelope.attempts,
                    payload_bytes=len(envelope.payload),
                )
                if self.options.straggler_timeout is None:
                    await envelope.done.wait()
                else:
                    try:
                        await asyncio.wait_for(envelope.done.wait(), self.options.straggler_timeout)
                    except asyncio.TimeoutError:
                        self.coordinator.requeue(envelope, reason="straggler")
            except asyncio.CancelledError:
                # leave the envelope in `inflight`: the supervisor's detach
                # requeues it so another client can pick the task up
                raise
            self.inflight.discard(envelope)
            self.coordinator.update_inflight()
