"""``RemoteExecutor`` — the engine's ``Executor`` contract over the network.

Hosts a :class:`~repro.serve.coordinator.Coordinator` on a private
asyncio event loop running in a daemon thread, so the synchronous
training loop in :mod:`repro.core.fl_base` stays unchanged: ``map``
pickles the round's :class:`~repro.engine.tasks.ClientTask` batch,
submits it to the coordinator and blocks until every connected client
has returned a result.  ``is_interprocess`` is True, so the transport
layer spills published state to disk exactly as it does for the process
pool — clients then pull those versions over the wire through
``state_request`` frames instead of reading the coordinator's
filesystem.

Determinism is inherited from the engine contract: every task carries
its own seed stream, so results are bit-identical to the serial
executor no matter which client ran which task, in what order, or how
often a task had to be redispatched after a disconnect.
"""

from __future__ import annotations

import asyncio
import pickle
import threading
from dataclasses import replace
from typing import Any, Sequence

from repro.engine.base import Executor
from repro.serve.coordinator import Coordinator
from repro.serve.options import ServeOptions, serve_options

__all__ = ["RemoteExecutor"]


class RemoteExecutor(Executor):
    """Fans client tasks out to networked workers via the federation service.

    ``max_workers`` maps onto the coordinator's client quorum
    (``min_clients``): a round is not dispatched before that many
    clients are connected.  Explicit ``options`` win over the
    process-wide defaults from :func:`repro.serve.options.serve_options`.
    """

    name = "remote"
    is_interprocess = True

    def __init__(self, max_workers: int | None = None, options: ServeOptions | None = None):
        super().__init__(max_workers)
        if options is None:
            options = serve_options()
        if max_workers is not None:
            options = replace(options, min_clients=max_workers)
        self.options = options
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._coordinator: Coordinator | None = None
        self._address: tuple[str, int] | None = None

    # -- lifecycle ------------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind the coordinator (idempotent) and return its ``(host, port)``."""
        if self._loop is not None:
            assert self._address is not None
            return self._address
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, name="repro-serve-loop", daemon=True)
        thread.start()
        coordinator = Coordinator(self.options)
        try:
            self._address = asyncio.run_coroutine_threadsafe(coordinator.start(), loop).result(timeout=30)
        except Exception:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5)
            loop.close()
            raise
        self._loop = loop
        self._thread = thread
        self._coordinator = coordinator
        if self.options.announce:
            print(f"repro-serve: listening on {self._address[0]}:{self._address[1]}", flush=True)
            status = coordinator.status_address
            if status is not None:
                print(f"repro-serve: status endpoint on http://{status[0]}:{status[1]}/metrics", flush=True)
        return self._address

    def shutdown(self) -> None:
        """Say ``bye`` to every client and stop the coordinator (idempotent)."""
        loop, thread, coordinator = self._loop, self._thread, self._coordinator
        self._loop = self._thread = self._coordinator = None
        self._address = None
        if loop is None or coordinator is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(coordinator.stop(), loop).result(timeout=30)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=10)
            loop.close()

    # -- Executor contract ----------------------------------------------------------------
    def map(self, tasks: Sequence[Any]) -> list[Any]:
        """Run one batch of tasks on the connected clients, in submission order."""
        address = self.start()
        assert self._loop is not None and self._coordinator is not None and address is not None
        payloads = [pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL) for task in tasks]
        # telemetry identity rides the wire alongside (not inside) the opaque
        # payloads, so dispatch/result frames are joinable across logs
        traces = [
            (trace.trace_id, trace.span_id) if (trace := getattr(task, "trace", None)) is not None else ("", "")
            for task in tasks
        ]
        future = asyncio.run_coroutine_threadsafe(
            self._coordinator.run_batch(payloads, traces=traces), self._loop
        )
        results = future.result()
        return [pickle.loads(result) for result in results]

    @property
    def effective_workers(self) -> int:
        """The client quorum a batch waits for before dispatching."""
        return self.options.min_clients

    @property
    def address(self) -> tuple[str, int] | None:
        """Bound ``(host, port)`` once started, else ``None``."""
        return self._address

    @property
    def status_address(self) -> tuple[str, int] | None:
        """Bound ``(host, port)`` of the HTTP status endpoint, if enabled."""
        if self._coordinator is None:
            return None
        return self._coordinator.status_address

    def stats(self) -> dict[str, int]:
        """Snapshot of the coordinator's churn counters (empty before start)."""
        if self._coordinator is None:
            return {}
        return dict(self._coordinator.stats)
