"""HeteroFL (Diao et al., ICLR 2021) on the shared substrate.

HeteroFL statically prunes *every* layer of the global model by a
per-level width ratio and assigns each client the largest level its
(known) resources can train.  Aggregation is the same prefix-overlap
weighted averaging as AdaptiveFL — the differences under test are the
coarse pruning granularity (whole-network width only, no ``I`` knob) and
the reliance on accurate device resource information.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_algorithm
from repro.baselines.base import RandomSelectionMixin, capacity_level_assignment
from repro.core.aggregation import ClientUpdate
from repro.core.config import ModelPoolConfig
from repro.core.fl_base import FederatedAlgorithm
from repro.core.history import RoundRecord
from repro.core.metrics import communication_waste_rate

__all__ = ["HeteroFL", "HETEROFL_POOL_CONFIG"]

#: Width ratios chosen so the level parameter counts approximate the
#: canonical HeteroFL 1.0× / 0.5× / 0.25× complexity levels (parameters of
#: conv layers scale with the square of the width ratio).
HETEROFL_POOL_CONFIG = ModelPoolConfig(
    models_per_level=1,
    level_width_ratios={"L": 1.0, "M": 0.71, "S": 0.5},
    start_layers=(0,),
    min_start_layer=0,
)


@register_algorithm(
    "heterofl",
    description="HeteroFL: static whole-network width pruning, capacity-based levels",
    # HeteroFL ships its own canonical 1.0x/0.71x/0.5x pool; the experiment's
    # fine-grained pool_config must NOT be forced on it (declared here instead
    # of an `if name != "heterofl"` branch in the runner).
    uses_pool_config=False,
    order=30,
)
class HeteroFL(RandomSelectionMixin, FederatedAlgorithm):
    """Static whole-network width pruning with capacity-based assignment."""

    name = "heterofl"

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("pool_config", HETEROFL_POOL_CONFIG)
        super().__init__(*args, **kwargs)
        self.level_heads = self.pool.level_heads()
        self.client_level = capacity_level_assignment(self, self.level_heads)

    def run_round(self, round_index: int) -> RoundRecord:
        rng = self.round_rng(round_index)
        selected = self.sample_clients(rng, round_index)

        handle = self.publish_state(self.global_state)
        assignments = []
        dispatched: list[str] = []
        for client_id in selected:
            config = self.level_heads[self.client_level[client_id]]
            group_sizes = self.pool.group_sizes(config)
            source = self.state_source(handle, self.global_state, group_sizes)
            assignments.append((client_id, group_sizes, source))
            dispatched.append(config.name)

        outcome = self.plan_round_outcome(round_index, selected, dispatched, dispatched)
        keep = outcome.aggregated_positions() if outcome is not None else range(len(selected))
        kept = [assignments[i] for i in keep]
        results = self.run_local_training(round_index, kept)
        losses = [result.mean_loss for result in results]

        if results:
            # generator: each decoded update is folded into the aggregator's
            # reused buffers and dropped before the next one is decoded
            updates = (
                ClientUpdate(
                    self.decode_result_state(result.state, sizes, self.global_state),
                    result.num_samples,
                )
                for (_, sizes, _), result in zip(kept, results)
            )
            self.global_state = self.aggregate(updates)
        # dropped/late dispatches return nothing and count as pure waste
        aggregated = set(keep)
        sent = [self.level_heads[self.client_level[c]].num_params for c in selected]
        back = [size if i in aggregated else 0 for i, size in enumerate(sent)]
        record = RoundRecord(
            round_index=round_index,
            train_loss=float(np.mean(losses)) if losses else None,
            communication_waste=communication_waste_rate(sent, back) if sent else None,
            dispatched=dispatched,
            returned=list(dispatched),
            selected_clients=selected,
        )
        return self.finalize_round(record, outcome)
