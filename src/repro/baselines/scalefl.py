"""ScaleFL (Ilhan et al., CVPR 2023) on the shared substrate.

ScaleFL scales submodels along *two* dimensions: width (channel pruning)
and depth (dropping the deepest blocks, with early-exit classifiers).
This reproduction keeps the two-dimensional scaling but realises the depth
dimension by shrinking the deepest layers to a minimal residual width
instead of removing them, which keeps every submodel a prefix slice of the
global model so the shared heterogeneous aggregation applies unchanged.
The self-distillation between exits of the original method is not
reproduced (documented in DESIGN.md); the behaviour under test — 2-D
scaled submodels assigned from known device resources — is.

Width ratios are calibrated per architecture so the S/M/L levels hit the
0.25× / 0.5× / 1.0× parameter budgets used throughout the paper.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.api.registry import register_algorithm
from repro.baselines.base import RandomSelectionMixin, capacity_level_assignment
from repro.core.aggregation import ClientUpdate
from repro.core.fl_base import FederatedAlgorithm
from repro.core.history import RoundRecord
from repro.core.metrics import communication_waste_rate
from repro.nn.models.spec import SlimmableArchitecture, scaled_size

__all__ = ["ScaleFL", "two_dimensional_group_sizes", "calibrate_width_ratio"]

#: per-level (target parameter fraction, kept depth fraction, tail width ratio)
SCALEFL_LEVELS: dict[str, tuple[float, float, float]] = {
    "S": (0.25, 0.50, 0.10),
    "M": (0.50, 0.75, 0.15),
    "L": (1.00, 1.00, 1.00),
}


def two_dimensional_group_sizes(
    architecture: SlimmableArchitecture,
    width_ratio: float,
    depth_fraction: float,
    tail_ratio: float,
) -> dict[str, int]:
    """Channel sizes for a width × depth scaled submodel.

    Layers within the kept depth are scaled by ``width_ratio``; layers
    beyond it collapse to ``tail_ratio`` (the prefix-slice stand-in for
    depth truncation).
    """
    if not 0.0 < width_ratio <= 1.0:
        raise ValueError("width_ratio must be in (0, 1]")
    if not 0.0 < depth_fraction <= 1.0:
        raise ValueError("depth_fraction must be in (0, 1]")
    if not 0.0 < tail_ratio <= 1.0:
        raise ValueError("tail_ratio must be in (0, 1]")
    max_layer = architecture.num_prunable_layers()
    depth_cutoff = int(np.ceil(depth_fraction * max_layer))
    sizes: dict[str, int] = {}
    for group in architecture.channel_groups():
        if not group.prunable:
            sizes[group.name] = group.full_size
        elif group.layer_index <= depth_cutoff:
            sizes[group.name] = scaled_size(group.full_size, width_ratio)
        else:
            sizes[group.name] = scaled_size(group.full_size, tail_ratio)
    return sizes


def calibrate_width_ratio(
    architecture: SlimmableArchitecture,
    target_fraction: float,
    depth_fraction: float,
    tail_ratio: float,
    tolerance: float = 0.01,
) -> float:
    """Find the width ratio whose 2-D submodel hits a parameter budget.

    Binary search over the width ratio; the parameter count is monotone in
    it.  Returns 1.0 immediately for the full level.
    """
    if target_fraction >= 1.0:
        return 1.0
    full = architecture.parameter_count()
    low, high = 0.05, 1.0
    for _ in range(40):
        mid = (low + high) / 2.0
        sizes = two_dimensional_group_sizes(architecture, mid, depth_fraction, tail_ratio)
        fraction = architecture.parameter_count(sizes) / full
        if abs(fraction - target_fraction) <= tolerance:
            return mid
        if fraction > target_fraction:
            high = mid
        else:
            low = mid
    return (low + high) / 2.0


@register_algorithm(
    "scalefl",
    description="ScaleFL: two-dimensional (width + depth) submodel scaling",
    order=40,
)
class ScaleFL(RandomSelectionMixin, FederatedAlgorithm):
    """Two-dimensional (width + depth) submodel scaling."""

    name = "scalefl"

    def __init__(self, *args, level_specs: Mapping[str, tuple[float, float, float]] | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.level_specs = dict(level_specs) if level_specs is not None else dict(SCALEFL_LEVELS)
        self.level_sizes: dict[str, dict[str, int]] = {}
        self.level_params: dict[str, int] = {}
        for level, (target, depth, tail) in self.level_specs.items():
            width = calibrate_width_ratio(self.architecture, target, depth, tail)
            sizes = (
                self.architecture.full_group_sizes()
                if target >= 1.0
                else two_dimensional_group_sizes(self.architecture, width, depth, tail)
            )
            self.level_sizes[level] = sizes
            self.level_params[level] = self.architecture.parameter_count(sizes)
        self.client_level = capacity_level_assignment(self, self.level_params)

    def level_group_sizes(self) -> dict[str, dict[str, int]]:
        """Evaluate the per-level heads at ScaleFL's own 2-D configurations."""
        return {level: dict(sizes) for level, sizes in self.level_sizes.items()}

    def run_round(self, round_index: int) -> RoundRecord:
        rng = self.round_rng(round_index)
        selected = self.sample_clients(rng, round_index)

        handle = self.publish_state(self.global_state)
        assignments = []
        dispatched: list[str] = []
        for client_id in selected:
            level = self.client_level[client_id]
            sizes = self.level_sizes[level]
            source = self.state_source(handle, self.global_state, sizes)
            assignments.append((client_id, sizes, source))
            dispatched.append(f"{level}1")

        outcome = self.plan_round_outcome(round_index, selected, dispatched, dispatched)
        keep = outcome.aggregated_positions() if outcome is not None else range(len(selected))
        kept = [assignments[i] for i in keep]
        results = self.run_local_training(round_index, kept)
        losses = [result.mean_loss for result in results]

        if results:
            # generator: each decoded update is folded into the aggregator's
            # reused buffers and dropped before the next one is decoded
            updates = (
                ClientUpdate(
                    self.decode_result_state(result.state, sizes, self.global_state),
                    result.num_samples,
                )
                for (_, sizes, _), result in zip(kept, results)
            )
            self.global_state = self.aggregate(updates)
        # dropped/late dispatches return nothing and count as pure waste
        aggregated = set(keep)
        sent = [self.level_params[self.client_level[c]] for c in selected]
        back = [size if i in aggregated else 0 for i, size in enumerate(sent)]
        record = RoundRecord(
            round_index=round_index,
            train_loss=float(np.mean(losses)) if losses else None,
            communication_waste=communication_waste_rate(sent, back) if sent else None,
            dispatched=dispatched,
            returned=list(dispatched),
            selected_clients=selected,
        )
        return self.finalize_round(record, outcome)
