"""Baseline federated-learning algorithms the paper compares against.

* :class:`~repro.baselines.fedavg.AllLargeFedAvg` — classic FedAvg training
  the full model on every selected client ("All-Large" in Table 2),
* :class:`~repro.baselines.decoupled.DecoupledFL` — independent FedAvg per
  size level with no cross-level knowledge sharing ("Decoupled"),
* :class:`~repro.baselines.heterofl.HeteroFL` — static width-wise pruning
  of every layer, level assigned from known device resources,
* :class:`~repro.baselines.scalefl.ScaleFL` — two-dimensional (width +
  depth) scaling, level assigned from known device resources.

Each class registers itself in :mod:`repro.api.registry` via
``@register_algorithm`` and declares there which configs it accepts
(e.g. HeteroFL's fixed pool); the experiment runner and CLI discover the
baselines through that registry, never through this module.  ``ALGORITHMS``
below is the legacy name→class mapping, kept consistent with the registry
by the api test-suite.
"""

from repro.baselines.decoupled import DecoupledFL
from repro.baselines.fedavg import AllLargeFedAvg
from repro.baselines.heterofl import HeteroFL
from repro.baselines.scalefl import ScaleFL

__all__ = ["AllLargeFedAvg", "DecoupledFL", "HeteroFL", "ScaleFL", "create_algorithm", "ALGORITHMS"]

ALGORITHMS = {
    "all_large": AllLargeFedAvg,
    "decoupled": DecoupledFL,
    "heterofl": HeteroFL,
    "scalefl": ScaleFL,
}


def create_algorithm(name: str, *args, **kwargs):
    """Instantiate a baseline by name (see :data:`ALGORITHMS`)."""
    if name not in ALGORITHMS:
        raise KeyError(f"unknown baseline {name!r}; available: {sorted(ALGORITHMS)}")
    return ALGORITHMS[name](*args, **kwargs)
