"""All-Large: classic FedAvg on the full global model.

This is the paper's reference upper-capacity baseline: every selected
client trains the unpruned L1 model regardless of its resources (which a
real resource-constrained deployment could not do — the comparison shows
how close AdaptiveFL gets without that assumption).
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_algorithm
from repro.baselines.base import RandomSelectionMixin
from repro.core.aggregation import ClientUpdate
from repro.core.fl_base import FederatedAlgorithm
from repro.core.history import RoundRecord
from repro.core.metrics import communication_waste_rate

__all__ = ["AllLargeFedAvg"]


@register_algorithm(
    "all_large",
    description="All-Large: classic FedAvg training the unpruned model on every client",
    order=10,
)
class AllLargeFedAvg(RandomSelectionMixin, FederatedAlgorithm):
    """FedAvg with the full model dispatched to every participant."""

    name = "all_large"

    def run_round(self, round_index: int) -> RoundRecord:
        rng = self.round_rng(round_index)
        selected = self.sample_clients(rng, round_index)
        full_sizes = self.architecture.full_group_sizes()
        full_params = self.pool.full_config.num_params
        dispatched = ["L1"] * len(selected)

        outcome = self.plan_round_outcome(round_index, selected, dispatched, dispatched)
        keep = outcome.aggregated_positions() if outcome is not None else range(len(selected))
        aggregated = set(keep)
        handle = self.publish_state(self.global_state)
        source = handle if handle is not None else self.global_state
        results = self.run_local_training(
            round_index,
            [(selected[i], full_sizes, source) for i in keep],
        )
        losses = [result.mean_loss for result in results]

        if results:
            # generator: each decoded update is folded into the aggregator's
            # reused buffers and dropped before the next one is decoded
            updates = (
                ClientUpdate(
                    self.decode_result_state(result.state, full_sizes, self.global_state),
                    result.num_samples,
                )
                for result in results
            )
            self.global_state = self.aggregate(updates)
        record = RoundRecord(
            round_index=round_index,
            train_loss=float(np.mean(losses)) if losses else None,
            # dropped/late dispatches return nothing and count as pure waste
            communication_waste=(
                communication_waste_rate(
                    [full_params] * len(selected),
                    [full_params if i in aggregated else 0 for i in range(len(selected))],
                )
                if selected
                else None
            ),
            dispatched=dispatched,
            returned=list(dispatched),
            selected_clients=selected,
        )
        return self.finalize_round(record, outcome)
