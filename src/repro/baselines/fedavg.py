"""All-Large: classic FedAvg on the full global model.

This is the paper's reference upper-capacity baseline: every selected
client trains the unpruned L1 model regardless of its resources (which a
real resource-constrained deployment could not do — the comparison shows
how close AdaptiveFL gets without that assumption).
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_algorithm
from repro.baselines.base import RandomSelectionMixin
from repro.core.aggregation import ClientUpdate, aggregate_heterogeneous
from repro.core.fl_base import FederatedAlgorithm
from repro.core.history import RoundRecord
from repro.core.local_training import train_local_model
from repro.core.metrics import communication_waste_rate

__all__ = ["AllLargeFedAvg"]


@register_algorithm(
    "all_large",
    description="All-Large: classic FedAvg training the unpruned model on every client",
    order=10,
)
class AllLargeFedAvg(RandomSelectionMixin, FederatedAlgorithm):
    """FedAvg with the full model dispatched to every participant."""

    name = "all_large"

    def run_round(self, round_index: int) -> RoundRecord:
        rng = self.round_rng(round_index)
        selected = self.sample_clients(rng)
        full_sizes = self.architecture.full_group_sizes()
        full_params = self.pool.full_config.num_params

        updates: list[ClientUpdate] = []
        losses: list[float] = []
        for client_id in selected:
            client = self.clients[client_id]
            result = train_local_model(
                architecture=self.architecture,
                group_sizes=full_sizes,
                initial_state=self.global_state,
                dataset=client.dataset,
                config=self.local_config,
                rng=np.random.default_rng((self.seed, round_index, client_id)),
            )
            updates.append(ClientUpdate(result.state, result.num_samples))
            losses.append(result.mean_loss)

        self.global_state = aggregate_heterogeneous(self.global_state, updates)
        dispatched = ["L1"] * len(selected)
        record = RoundRecord(
            round_index=round_index,
            train_loss=float(np.mean(losses)) if losses else None,
            communication_waste=communication_waste_rate([full_params] * len(selected), [full_params] * len(selected)),
            dispatched=dispatched,
            returned=list(dispatched),
            selected_clients=selected,
        )
        record.wall_clock_seconds = self.simulate_round_time(round_index, selected, dispatched, dispatched)
        return record
