"""Decoupled: independent FedAvg per size level.

Each level (S1 / M1 / L1) keeps its own global model, trained only by the
clients whose resources can afford that level, and no parameters are
shared across levels.  The paper uses this baseline to show what is lost
without heterogeneous aggregation: small-capable clients never contribute
to the large model and vice versa.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_algorithm
from repro.baselines.base import RandomSelectionMixin, capacity_level_assignment
from repro.core.aggregation import ClientUpdate, fedavg_aggregate
from repro.core.fl_base import FederatedAlgorithm
from repro.core.history import RoundRecord
from repro.core.metrics import communication_waste_rate, evaluate_state
from repro.core.pruning import extract_submodel_state

__all__ = ["DecoupledFL"]


@register_algorithm(
    "decoupled",
    description="Decoupled: independent FedAvg per size level, no cross-level sharing",
    order=20,
)
class DecoupledFL(RandomSelectionMixin, FederatedAlgorithm):
    """One isolated FedAvg per model level."""

    name = "decoupled"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.level_heads = self.pool.level_heads()
        # Every level starts from the matching slice of the same initial model.
        self.level_states = {
            level: extract_submodel_state(self.global_state, self.pool, config)
            for level, config in self.level_heads.items()
        }
        self.client_level = capacity_level_assignment(self, self.level_heads)

    def run_round(self, round_index: int) -> RoundRecord:
        rng = self.round_rng(round_index)
        selected = self.sample_clients(rng, round_index)

        # one published stream per level: each level keeps its own global model
        handles = {
            level: self.publish_state(state, stream=level)
            for level, state in self.level_states.items()
        }
        assignments = []
        levels: list[str] = []
        dispatched: list[str] = []
        for client_id in selected:
            level = self.client_level[client_id]
            config = self.level_heads[level]
            handle = handles[level]
            source = handle if handle is not None else self.level_states[level]
            assignments.append((client_id, self.pool.group_sizes(config), source))
            levels.append(level)
            dispatched.append(config.name)

        outcome = self.plan_round_outcome(round_index, selected, dispatched, dispatched)
        keep = list(outcome.aggregated_positions()) if outcome is not None else list(range(len(selected)))
        results = self.run_local_training(round_index, [assignments[i] for i in keep])
        per_level_updates: dict[str, list[ClientUpdate]] = {level: [] for level in self.level_states}
        losses: list[float] = []
        for i, result in zip(keep, results):
            level = levels[i]
            state = self.decode_result_state(
                result.state, self.pool.group_sizes(self.level_heads[level]), self.level_states[level]
            )
            per_level_updates[level].append(ClientUpdate(state, result.num_samples))
            losses.append(result.mean_loss)

        for level, updates in per_level_updates.items():
            if updates:
                self.level_states[level] = fedavg_aggregate(updates)
        # The "full" model of Decoupled is its L-level model.
        self.global_state = dict(self.level_states["L"])

        # dropped/late dispatches return nothing and count as pure waste
        aggregated = set(keep)
        sent = [self.level_heads[self.client_level[c]].num_params for c in selected]
        back = [size if i in aggregated else 0 for i, size in enumerate(sent)]
        record = RoundRecord(
            round_index=round_index,
            train_loss=float(np.mean(losses)) if losses else None,
            communication_waste=communication_waste_rate(sent, back) if sent else None,
            dispatched=dispatched,
            returned=list(dispatched),
            selected_clients=selected,
        )
        return self.finalize_round(record, outcome)

    def evaluate(self) -> tuple[float, dict[str, float]]:
        """Full = the L-level model; per-level heads use their own decoupled states."""
        full_sizes = self.architecture.full_group_sizes()
        full_accuracy, _ = evaluate_state(
            self.architecture,
            full_sizes,
            self.level_states["L"],
            self.test_dataset,
            batch_size=self.federated_config.eval_batch_size,
            model_cache=self._eval_model_cache,
        )
        level_accuracies: dict[str, float] = {}
        for level, config in self.level_heads.items():
            group_sizes = self.pool.group_sizes(config)
            if group_sizes == full_sizes and level == "L":
                # the L head evaluates the same state with the same sizes
                level_accuracies[level] = full_accuracy
                continue
            accuracy, _ = evaluate_state(
                self.architecture,
                group_sizes,
                self.level_states[level],
                self.test_dataset,
                batch_size=self.federated_config.eval_batch_size,
                model_cache=self._eval_model_cache,
            )
            level_accuracies[level] = accuracy
        return full_accuracy, level_accuracies
