"""Shared helpers for the baseline algorithms."""

from __future__ import annotations

import numpy as np

from repro.core.fl_base import FederatedAlgorithm
from repro.core.model_pool import SubmodelConfig
from repro.sim.cohorts import STREAMING_SELECTION_THRESHOLD, masked_choice_without_replacement

__all__ = ["RandomSelectionMixin", "capacity_level_assignment"]


class RandomSelectionMixin:
    """Uniform client sampling without replacement (used by every baseline).

    Under a fleet scenario the draw is restricted to the clients that are
    reachable this round and widened by the scenario's over-selection
    margin; without one (or when every client is reachable and no margin
    applies) the draw is bit-identical to the historical implementation.
    At fleet scale the draw runs on the availability mask directly via
    cohort-sharded rank translation — the same generator stream, the same
    ids, without ever materialising the online population as a list.
    """

    def sample_clients(self: FederatedAlgorithm, rng: np.random.Generator, round_index: int) -> list[int]:
        if self.num_clients >= STREAMING_SELECTION_THRESHOLD:
            mask = self.selectable_mask(round_index)
            if mask is not None:
                count = min(self.dispatch_count(), int(np.count_nonzero(mask)))
                return [int(c) for c in masked_choice_without_replacement(rng, mask, count)]
        candidates = self.selectable_clients(round_index)
        if candidates is None:
            count = min(self.federated_config.clients_per_round, self.num_clients)
            return [int(c) for c in rng.choice(self.num_clients, size=count, replace=False)]
        count = min(self.dispatch_count(), len(candidates))
        if len(candidates) == self.num_clients:
            return [int(c) for c in rng.choice(self.num_clients, size=count, replace=False)]
        chosen = rng.choice(len(candidates), size=count, replace=False)
        return [int(candidates[index]) for index in chosen]


def capacity_level_assignment(
    algorithm: FederatedAlgorithm,
    level_configs: dict[str, SubmodelConfig] | dict[str, int],
) -> dict[int, str]:
    """Assign each client the largest level its *nominal* capacity can train.

    HeteroFL and ScaleFL require the server to know device resources; this
    helper encodes that assumption (which AdaptiveFL removes).  Clients that
    cannot even fit the smallest level are still assigned the smallest one.
    ``level_configs`` maps level name to either a pool entry or a raw
    parameter count.
    """
    sizes: dict[str, int] = {}
    for level, value in level_configs.items():
        sizes[level] = value.num_params if isinstance(value, SubmodelConfig) else int(value)
    ordered = sorted(sizes.items(), key=lambda item: item[1])

    assignment: dict[int, str] = {}
    for client_id in range(algorithm.num_clients):
        capacity = algorithm.resource_model.nominal_capacity(client_id)
        chosen = ordered[0][0]
        for level, size in ordered:
            if size <= capacity:
                chosen = level
        assignment[client_id] = chosen
    return assignment
