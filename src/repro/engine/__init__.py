"""``repro.engine`` — the parallel client-execution subsystem.

Federated rounds are embarrassingly parallel on the client side: once the
server has planned *who* trains *what*, every local round is an
independent task.  This package fans those tasks out:

* :class:`SerialExecutor` — sequential reference implementation (default),
* :class:`ThreadExecutor` — thread pool; cheapest spin-up, overlaps
  GIL-releasing numpy kernels and simulated device latency,
* :class:`ProcessExecutor` — process pool; true CPU parallelism for
  compute-bound local training.

All three are interchangeable **and bit-identical**: tasks carry private
:class:`numpy.random.SeedSequence` streams keyed on (seed, round, client),
so the training history never depends on the executor or worker count —
enforced by the serial-parity suite in ``tests/engine``.

Exports resolve lazily (PEP 562) so that low-level modules can import the
executor vocabulary (``repro.engine.factory``) without pulling in the
task layer and its dependencies.
"""

from __future__ import annotations

import importlib
from typing import Any

_EXPORTS: dict[str, str] = {
    "Executor": "repro.engine.base",
    "run_task": "repro.engine.base",
    "default_max_workers": "repro.engine.base",
    "SerialExecutor": "repro.engine.serial",
    "ThreadExecutor": "repro.engine.thread",
    "ProcessExecutor": "repro.engine.process",
    "EXECUTORS": "repro.engine.factory",
    "EXECUTOR_NAMES": "repro.engine.factory",
    "create_executor": "repro.engine.factory",
    "client_stream": "repro.engine.rng",
    "spawn_streams": "repro.engine.rng",
    "ClientTask": "repro.engine.tasks",
    "LocalRoundTask": "repro.engine.tasks",
    "TrainSubmodelTask": "repro.engine.tasks",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.engine' has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
