"""Thread-pool execution of client tasks.

Threads share the interpreter, so pure-Python sections serialise on the
GIL; the win comes from numpy kernels that release the GIL and from
overlapping any simulated device/communication latency.  No pickling is
involved, which makes this the cheapest parallel executor to spin up and
the right default for latency-dominated simulations.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

from repro.engine.base import Executor, run_task

__all__ = ["ThreadExecutor"]


class ThreadExecutor(Executor):
    """Fans tasks out over a reusable :class:`ThreadPoolExecutor`."""

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.effective_workers,
                thread_name_prefix="repro-client",
            )
        return self._pool

    def map(self, tasks: Sequence[Any]) -> list[Any]:
        """Fan the tasks across the thread pool; results in submission order.

        ``Executor.map`` re-raises the first task exception when its
        result is consumed, preserving the serial error behaviour.
        """
        if not tasks:
            return []
        return list(self._ensure_pool().map(run_task, tasks))

    def shutdown(self) -> None:
        """Join the thread pool (a later map() lazily rebuilds it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
