"""The ``Executor`` protocol: how per-client work fans out across workers.

An executor runs a batch of independent :class:`~repro.engine.tasks.ClientTask`
objects and returns their results **in submission order**.  Determinism is
the contract that makes executors interchangeable: every task carries its
own :class:`numpy.random.SeedSequence` stream, so a task's result depends
only on the task itself — never on which worker ran it, in which order, or
alongside what — and every executor produces bit-identical results.

This module is self-contained (no imports from the rest of the package) so
that low-level modules such as :mod:`repro.core.config` can reference the
executor vocabulary without import cycles.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Any, Sequence

__all__ = ["Executor", "run_task", "default_max_workers"]


def run_task(task: Any) -> Any:
    """Execute one task (module-level so process pools can pickle it by name)."""
    return task.run()


def default_max_workers() -> int:
    """Worker count when the user does not pin one: the usable CPU count."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class Executor(ABC):
    """Executes batches of independent client tasks.

    Implementations must preserve submission order in the returned list and
    propagate the first exception a task raises.  ``map`` may be called many
    times (once per federated round); worker pools are reused across calls
    and released by :meth:`shutdown`.
    """

    #: registry name of the implementation ("serial", "thread", "process")
    name: str = "executor"

    #: True when tasks cross a process boundary (results are pickled); the
    #: transport layer spills published state to disk only in that case
    is_interprocess: bool = False

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive when set")
        self.max_workers = max_workers

    @abstractmethod
    def map(self, tasks: Sequence[Any]) -> list[Any]:
        """Run every task and return their results in submission order."""

    def shutdown(self) -> None:
        """Release worker resources (idempotent; the executor may be reused)."""

    @property
    def effective_workers(self) -> int:
        """The worker count actually used by pool-based executors."""
        return self.max_workers if self.max_workers is not None else default_max_workers()

    # -- context manager ----------------------------------------------------------------
    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers!r})"
