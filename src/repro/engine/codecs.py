"""Lossy update codecs — the compressed transport tier.

The XOR-delta transport (:mod:`repro.engine.transport`) is *exact*: it
moves every changed bit of a trained slice.  At fleet scale bytes, not
FLOPs, bound a round, so this module adds the lossy tier the ROADMAP
names: registered **update codecs** that compress the arithmetic update
``trained − reference`` a client uploads, at a quantified fidelity cost.

Codecs are frozen dataclasses registered under a short name through
:func:`register_codec` and selected by
``FederatedConfig.transport_codec`` (CLI ``--transport-codec``):

========  ==============================================================
``none``  exact passthrough (raw update bytes; the accounting baseline)
``fp16``  stochastic rounding to IEEE float16 (2 bytes/param)
``int8``  per-tensor symmetric int8 quantization with stochastic
          rounding, DEFLATE-packed (≈1 byte/param before compression)
``topk``  magnitude top-k sparsification with per-client error-feedback
          residuals (k·8 bytes before compression)
========  ==============================================================

Three contracts every codec honours:

* **Determinism** — all randomness (stochastic rounding) comes from a
  generator derived from the task's ``(seed, round, client)``
  :class:`~numpy.random.SeedSequence` via :func:`codec_generator`, on a
  spawn key disjoint from training draws.  Encoding is a pure function
  of ``(update, stream)``: serial, thread, process and remote executors
  produce bit-identical payloads — lossy, but *reproducibly* lossy.
* **Self-describing payloads** — an :class:`EncodedUpdate` decodes from
  its own blobs and metadata alone (:func:`decode_update`), so the
  server, a property test and a wire peer all reconstruct the same
  arrays without the codec instance in hand.
* **Honest byte accounting** — :attr:`EncodedUpdate.nbytes` is the true
  post-codec wire size (compressed blob lengths), never the nominal
  array size, so ``RoundRecord.bytes_up`` and the obs counters cannot
  overstate a lossy payload.

Error feedback (``topk``): the coordinates a sparse upload drops are
not lost — they accumulate in a per-client residual that is added to
the *next* round's update before encoding (EF-SGD).  The residual is
device-local state in a real deployment; the simulation keeps it on the
server keyed by client id (see ``FederatedAlgorithm``), which is what
makes lossy runs executor-independent and checkpointable.
"""

from __future__ import annotations

import math
import zlib
from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass, field
from typing import Any, ClassVar, Mapping

import numpy as np

from repro.core.serialization import checked_payload

__all__ = [
    "EncodedUpdate",
    "UpdateCodec",
    "PassthroughCodec",
    "Fp16Codec",
    "Int8Codec",
    "TopKCodec",
    "register_codec",
    "unregister_codec",
    "get_codec",
    "available_codecs",
    "codec_from_dict",
    "codec_generator",
    "encode_update",
    "decode_update",
    "encode_client_update",
    "apply_encoded_update",
]

#: spawn-key suffix deriving the codec's rounding stream from a task's
#: training stream — same entropy, disjoint key, so quantization noise
#: never perturbs (or depends on) the training draws
CODEC_SPAWN_KEY = 0xC0DEC

#: float16's largest finite magnitude; updates are clipped into range
#: before stochastic rounding (an update this large has already diverged)
_FP16_MAX = 65504.0


def codec_generator(stream: np.random.SeedSequence) -> np.random.Generator:
    """The deterministic rounding generator of one task's encode pass."""
    derived = np.random.SeedSequence(
        entropy=stream.entropy, spawn_key=(*tuple(stream.spawn_key), CODEC_SPAWN_KEY)
    )
    return np.random.default_rng(derived)


@dataclass
class EncodedUpdate:
    """One client's encoded arithmetic update (``trained − reference``).

    ``blobs`` hold the wire payload per tensor; ``encodings`` name the
    per-tensor scheme (``raw``/``fp16``/``int8``/``topk`` — non-float
    tensors always travel ``raw`` and exact).  ``residual`` is the new
    error-feedback carry (device-local state, **excluded** from
    :attr:`nbytes`); ``raw_nbytes`` is what the same update would have
    moved uncompressed, kept for compression-ratio telemetry.
    """

    codec: str
    blobs: dict[str, bytes]
    encodings: dict[str, str]
    shapes: dict[str, tuple[int, ...]]
    dtypes: dict[str, str]
    client_id: int = -1
    raw_nbytes: int = 0
    residual: dict[str, np.ndarray] | None = None

    @property
    def nbytes(self) -> int:
        """True post-codec wire bytes of the update payload."""
        return sum(len(blob) for blob in self.blobs.values())


# -- registry ---------------------------------------------------------------------------

_CODECS: dict[str, type["UpdateCodec"]] = {}


def register_codec(name: str):
    """Class decorator adding an :class:`UpdateCodec` to the registry."""

    def decorator(cls: type["UpdateCodec"]) -> type["UpdateCodec"]:
        existing = _CODECS.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"codec {name!r} is already registered ({existing!r})")
        if cls.name != name:
            raise ValueError(f"codec class {cls.__name__} declares name {cls.name!r}, not {name!r}")
        _CODECS[name] = cls
        return cls

    return decorator


def unregister_codec(name: str) -> None:
    """Remove a registration (plugin teardown / tests); unknown names are a no-op."""
    _CODECS.pop(name, None)


def available_codecs() -> tuple[str, ...]:
    """All registered codec names, sorted."""
    return tuple(sorted(_CODECS))


def get_codec(name: str) -> "UpdateCodec":
    """Build the default-configured codec for a registered name."""
    try:
        cls = _CODECS[name]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; registered: {', '.join(available_codecs())}"
        ) from None
    return cls()


def codec_from_dict(payload: Mapping[str, Any]) -> "UpdateCodec":
    """Reconstruct a codec from its :meth:`UpdateCodec.to_dict` payload."""
    data = dict(payload)
    name = data.pop("name", None)
    if not isinstance(name, str):
        raise ValueError("codec payload must carry its registry 'name'")
    try:
        cls = _CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; registered: {', '.join(available_codecs())}"
        ) from None
    return cls.from_dict(data)


# -- codec classes ----------------------------------------------------------------------


class UpdateCodec(ABC):
    """One registered compression scheme for client updates."""

    #: registry name (wire tag of the payloads this codec produces)
    name: ClassVar[str] = "codec"
    #: True when decode(encode(x)) == x bit-for-bit
    lossless: ClassVar[bool] = False
    #: True when dropped mass must accumulate in a per-client residual
    uses_error_feedback: ClassVar[bool] = False

    @abstractmethod
    def encode_array(self, value: np.ndarray, rng: np.random.Generator) -> tuple[str, bytes]:
        """Encode one float tensor; returns ``(encoding_tag, blob)``."""

    @property
    @abstractmethod
    def nominal_bytes_per_param(self) -> float:
        """Modeled wire bytes per parameter (drives the fleet clock)."""

    def to_dict(self) -> dict:
        """Strict JSON payload (registry name + knobs); see :func:`codec_from_dict`."""
        return {"name": self.name, **asdict(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "UpdateCodec":
        """Rebuild from :meth:`to_dict` output (unknown keys raise)."""
        return cls(**checked_payload(cls, payload))


@register_codec("none")
@dataclass(frozen=True)
class PassthroughCodec(UpdateCodec):
    """Exact passthrough: the update's raw bytes, untouched."""

    name: ClassVar[str] = "none"
    lossless: ClassVar[bool] = True

    def encode_array(self, value: np.ndarray, rng: np.random.Generator) -> tuple[str, bytes]:
        """Ship the tensor's exact bytes."""
        return "raw", np.ascontiguousarray(value).tobytes()

    @property
    def nominal_bytes_per_param(self) -> float:
        """Four bytes: one float32 per parameter."""
        return 4.0


@register_codec("fp16")
@dataclass(frozen=True)
class Fp16Codec(UpdateCodec):
    """Stochastic rounding to IEEE float16 (2 bytes per parameter).

    Each value rounds to one of its two neighbouring float16 grid points
    with probability proportional to proximity, so the rounding is
    unbiased: ``E[decode(encode(x))] = x``.
    """

    name: ClassVar[str] = "fp16"

    def encode_array(self, value: np.ndarray, rng: np.random.Generator) -> tuple[str, bytes]:
        """Round each value to a neighbouring float16 grid point, unbiased."""
        clipped = np.clip(value.astype(np.float32, copy=False), -_FP16_MAX, _FP16_MAX)
        nearest = clipped.astype(np.float16)
        nearest32 = nearest.astype(np.float32)
        with np.errstate(over="ignore"):
            # at ±float16-max the outward neighbour overflows to ±inf; that
            # bracket is never picked (frac becomes exactly 0 there)
            above = np.nextafter(nearest, np.float16(np.inf)).astype(np.float32)
            below = np.nextafter(nearest, np.float16(-np.inf)).astype(np.float32)
        lo = np.where(nearest32 <= clipped, nearest32, below)
        hi = np.where(nearest32 <= clipped, above, nearest32)
        span = hi - lo
        frac = np.where(span > 0, (clipped - lo) / np.where(span > 0, span, 1.0), 0.0)
        pick_hi = rng.random(clipped.shape) < frac
        return "fp16", np.where(pick_hi, hi, lo).astype(np.float16).tobytes()

    @property
    def nominal_bytes_per_param(self) -> float:
        """Two bytes: one float16 per parameter."""
        return 2.0


@register_codec("int8")
@dataclass(frozen=True)
class Int8Codec(UpdateCodec):
    """Per-tensor symmetric int8 quantization with stochastic rounding.

    ``scale = max|x| / 127``; values quantize to the int8 grid with
    unbiased stochastic rounding and the lattice codes are
    DEFLATE-packed (quantized SGD updates concentrate near zero, so the
    entropy coder buys real bytes on top of the 4:1 width cut).  The
    blob is ``[float32 scale][zlib(int8 codes)]``.
    """

    name: ClassVar[str] = "int8"
    compress_level: int = 6

    def __post_init__(self) -> None:
        if not 1 <= self.compress_level <= 9:
            raise ValueError("compress_level must be in [1, 9]")

    def encode_array(self, value: np.ndarray, rng: np.random.Generator) -> tuple[str, bytes]:
        """Quantize to the symmetric int8 lattice and DEFLATE-pack the codes."""
        work = value.astype(np.float32, copy=False)
        peak = float(np.max(np.abs(work))) if work.size else 0.0
        scale = np.float32(peak / 127.0)
        if scale > 0:
            grid = work / scale
            lower = np.floor(grid)
            codes = lower + (rng.random(work.shape) < (grid - lower))
            codes = np.clip(codes, -127, 127).astype(np.int8)
        else:
            codes = np.zeros(work.shape, dtype=np.int8)
        packed = zlib.compress(codes.tobytes(), self.compress_level)
        return "int8", scale.tobytes() + packed

    @property
    def nominal_bytes_per_param(self) -> float:
        """One byte: an int8 code per parameter (pre-DEFLATE)."""
        return 1.0


@register_codec("topk")
@dataclass(frozen=True)
class TopKCodec(UpdateCodec):
    """Magnitude top-k sparsification with error feedback.

    Keeps the ``k_fraction`` largest-magnitude entries per tensor
    (deterministic ties: lower flat index wins) and ships
    ``[uint32 indices][float32 values]`` DEFLATE-packed.  The dropped
    mass returns as the task's error-feedback residual and is added to
    the client's next update before encoding, so nothing is lost — only
    delayed.
    """

    name: ClassVar[str] = "topk"
    uses_error_feedback: ClassVar[bool] = True
    k_fraction: float = 0.05
    compress_level: int = 6

    def __post_init__(self) -> None:
        if not 0.0 < self.k_fraction <= 1.0:
            raise ValueError("k_fraction must be in (0, 1]")
        if not 1 <= self.compress_level <= 9:
            raise ValueError("compress_level must be in [1, 9]")

    def encode_array(self, value: np.ndarray, rng: np.random.Generator) -> tuple[str, bytes]:
        """Keep the k largest-magnitude entries as packed (index, value) pairs."""
        flat = np.ascontiguousarray(value.astype(np.float32, copy=False)).ravel()
        k = max(1, int(math.ceil(self.k_fraction * flat.size))) if flat.size else 0
        # stable magnitude order: sort on (-|x|, flat index) so equal
        # magnitudes keep a deterministic winner on every platform
        order = np.lexsort((np.arange(flat.size, dtype=np.int64), -np.abs(flat)))
        kept = np.sort(order[:k]).astype(np.uint32)
        values = flat[kept].astype(np.float32)
        packed = zlib.compress(kept.tobytes() + values.tobytes(), self.compress_level)
        return "topk", packed

    @property
    def nominal_bytes_per_param(self) -> float:
        """Eight bytes (uint32 index + float32 value) per kept parameter."""
        return 8.0 * self.k_fraction


# -- encode / decode drivers ------------------------------------------------------------


def _decode_array(encoding: str, blob: bytes, shape: tuple[int, ...], dtype: str) -> np.ndarray:
    """Decode one tensor blob back to its array (pure, codec-free)."""
    if encoding == "raw":
        return np.frombuffer(blob, dtype=np.dtype(dtype)).reshape(shape).copy()
    if encoding == "fp16":
        half = np.frombuffer(blob, dtype=np.float16).reshape(shape)
        return half.astype(np.dtype(dtype))
    if encoding == "int8":
        scale = np.frombuffer(blob[:4], dtype=np.float32)[0]
        codes = np.frombuffer(zlib.decompress(blob[4:]), dtype=np.int8).reshape(shape)
        return (codes.astype(np.float32) * scale).astype(np.dtype(dtype))
    if encoding == "topk":
        raw = zlib.decompress(blob)
        count = len(raw) // 8
        kept = np.frombuffer(raw[: count * 4], dtype=np.uint32)
        values = np.frombuffer(raw[count * 4 :], dtype=np.float32)
        dense = np.zeros(int(np.prod(shape, dtype=np.int64)) if shape else 1, dtype=np.float32)
        dense[kept.astype(np.int64)] = values
        return dense.reshape(shape).astype(np.dtype(dtype))
    raise ValueError(f"unknown tensor encoding {encoding!r}")


def encode_update(
    codec: UpdateCodec,
    update: Mapping[str, np.ndarray],
    rng: np.random.Generator,
    client_id: int = -1,
) -> EncodedUpdate:
    """Encode a full update dict (float tensors via the codec, rest raw)."""
    blobs: dict[str, bytes] = {}
    encodings: dict[str, str] = {}
    shapes: dict[str, tuple[int, ...]] = {}
    dtypes: dict[str, str] = {}
    raw_nbytes = 0
    for name, value in update.items():
        array = np.asarray(value)
        shapes[name] = tuple(array.shape)
        dtypes[name] = array.dtype.str
        raw_nbytes += array.nbytes
        if array.dtype.kind == "f":
            encodings[name], blobs[name] = codec.encode_array(array, rng)
        else:
            # non-float state (counters, index maps) is never quantized
            encodings[name] = "raw"
            blobs[name] = np.ascontiguousarray(array).tobytes()
    return EncodedUpdate(
        codec=codec.name,
        blobs=blobs,
        encodings=encodings,
        shapes=shapes,
        dtypes=dtypes,
        client_id=client_id,
        raw_nbytes=raw_nbytes,
    )


def decode_update(encoded: EncodedUpdate) -> dict[str, np.ndarray]:
    """Decode every tensor of an encoded update (self-describing; pure)."""
    return {
        name: _decode_array(
            encoded.encodings[name], blob, encoded.shapes[name], encoded.dtypes[name]
        )
        for name, blob in encoded.blobs.items()
    }


def _prefix_slice(full: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """The leading block of ``full`` with the given (smaller) shape."""
    if full.shape == tuple(shape):
        return full
    return full[tuple(slice(0, size) for size in shape)]


def encode_client_update(
    codec: UpdateCodec,
    trained: Mapping[str, np.ndarray],
    reference: Mapping[str, np.ndarray],
    rng_stream: np.random.SeedSequence,
    residual: Mapping[str, np.ndarray] | None = None,
    client_id: int = -1,
) -> EncodedUpdate:
    """The client-side encode pass: delta → (+ residual) → codec → new residual.

    ``reference`` must be the exact weights the client started from (the
    server holds the same bits, so decode reconstructs against an
    identical base).  When the codec uses error feedback the returned
    payload carries the new residual ``v − decode(encode(v))`` for the
    server to bank; residuals larger than the trained slice are
    prefix-sliced, mirroring how the submodel itself was cut.
    """
    rng = codec_generator(rng_stream)
    update: dict[str, np.ndarray] = {}
    for name, value in trained.items():
        array = np.asarray(value)
        base = np.asarray(reference[name])
        base = _prefix_slice(base, array.shape)
        if base.shape != array.shape:
            raise ValueError(
                f"reference for {name!r} has shape {base.shape}, trained is {array.shape}"
            )
        update[name] = array - base
    if codec.uses_error_feedback and residual is not None:
        for name, value in update.items():
            carry = residual.get(name)
            if carry is None or value.dtype.kind != "f":
                continue
            update[name] = value + _prefix_slice(np.asarray(carry), value.shape).astype(
                value.dtype, copy=False
            )
    encoded = encode_update(codec, update, rng, client_id=client_id)
    if codec.uses_error_feedback:
        decoded = decode_update(encoded)
        encoded.residual = {
            name: (update[name] - decoded[name]).astype(np.float32)
            for name in update
            if update[name].dtype.kind == "f"
        }
    return encoded


def apply_encoded_update(
    encoded: EncodedUpdate, reference: Mapping[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Server-side decode: reconstruct trained weights against ``reference``."""
    decoded = decode_update(encoded)
    result: dict[str, np.ndarray] = {}
    for name, delta in decoded.items():
        base = np.asarray(reference[name])
        if base.shape != delta.shape:
            raise ValueError(
                f"reference for {name!r} has shape {base.shape}, encoded update is {delta.shape}"
            )
        result[name] = (base + delta.astype(base.dtype, copy=False)).astype(base.dtype, copy=False)
    return result
