"""Picklable units of per-client work dispatched through an executor.

A task bundles everything one client's local round needs — model slice,
data, hyper-parameters and a private RNG stream — so it can run anywhere:
inline (:class:`~repro.engine.serial.SerialExecutor`), on a thread, or
pickled to a worker process.  Tasks are pure: they read only their own
fields, mutate nothing shared, and derive all randomness from their
``rng_stream``, which is what guarantees bit-identical results across
executors and worker counts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.client import ClientRoundResult, SimulatedClient
from repro.core.config import LocalTrainingConfig
from repro.core.local_training import LocalTrainingResult, train_local_model
from repro.core.model_pool import ModelPool, SubmodelConfig
from repro.data.datasets import Dataset
from repro.nn.models.spec import SlimmableArchitecture

__all__ = ["ClientTask", "LocalRoundTask", "TrainSubmodelTask"]


class ClientTask(ABC):
    """One independent unit of client work executed by an :class:`Executor`."""

    #: private randomness of this task (see :mod:`repro.engine.rng`)
    rng_stream: np.random.SeedSequence

    @abstractmethod
    def run(self) -> Any:
        """Execute the work and return its result (runs on any worker)."""

    def rng(self) -> np.random.Generator:
        """A fresh generator over the task's stream (same bits every call)."""
        return np.random.default_rng(self.rng_stream)


@dataclass
class LocalRoundTask(ClientTask):
    """AdaptiveFL's full client round: adapt (prune) then train (Algorithm 1).

    The device-side resource adaptation runs inside the task, exactly as it
    would on a real client; the server only planned the dispatch.
    """

    client: SimulatedClient
    pool: ModelPool
    dispatched: SubmodelConfig
    dispatched_state: Mapping[str, np.ndarray]
    available_capacity: float
    # required on purpose: an OS-entropy default would silently break the
    # engine's determinism guarantee
    rng_stream: np.random.SeedSequence

    def run(self) -> ClientRoundResult:
        return self.client.local_round(
            pool=self.pool,
            dispatched=self.dispatched,
            dispatched_state=self.dispatched_state,
            available_capacity=self.available_capacity,
            rng=self.rng(),
        )


@dataclass
class TrainSubmodelTask(ClientTask):
    """A baseline's client round: train a fixed submodel slice on local data."""

    architecture: SlimmableArchitecture
    group_sizes: Mapping[str, int]
    initial_state: Mapping[str, np.ndarray]
    dataset: Dataset
    local_config: LocalTrainingConfig
    rng_stream: np.random.SeedSequence
    client_id: int = -1

    def run(self) -> LocalTrainingResult:
        return train_local_model(
            architecture=self.architecture,
            group_sizes=self.group_sizes,
            initial_state=self.initial_state,
            dataset=self.dataset,
            config=self.local_config,
            rng=self.rng(),
        )
