"""Picklable units of per-client work dispatched through an executor.

A task bundles everything one client's local round needs — model slice,
data, hyper-parameters and a private RNG stream — so it can run anywhere:
inline (:class:`~repro.engine.serial.SerialExecutor`), on a thread, or
pickled to a worker process.  Tasks are pure: they read only their own
fields, mutate nothing shared, and derive all randomness from their
``rng_stream``, which is what guarantees bit-identical results across
executors and worker counts.

Weight transport (see :mod:`repro.engine.transport`): ``initial_state``/
``dispatched_state`` may be either a plain mapping (legacy "full" mode:
the slice travels inside the task) or a :class:`StateHandle` — the
worker resolves the handle against its per-process cache of the
published global state and cuts the submodel slice locally, so the task
payload stays tiny.  With ``delta_upload`` the trained weights return as
a bit-exact XOR :class:`StateDelta` against the received slice.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace as dataclass_replace
from typing import Any, Mapping

import numpy as np

from repro.core.client import ClientRoundResult, SimulatedClient
from repro.core.config import LocalTrainingConfig
from repro.core.local_training import LocalTrainingResult, train_local_model
from repro.core.model_pool import ModelPool, SubmodelConfig
from repro.core.pruning import slice_state_dict
from repro.data.datasets import Dataset
from repro.engine.codecs import UpdateCodec, encode_client_update
from repro.engine.transport import StateHandle, encode_state_delta
from repro.nn.models.spec import SlimmableArchitecture
from repro.obs.trace import TraceContext

__all__ = ["ClientTask", "LocalRoundTask", "TrainSubmodelTask"]


def _resolve_state(
    source: "Mapping[str, np.ndarray] | StateHandle",
    architecture: SlimmableArchitecture,
    group_sizes: Mapping[str, int],
) -> Mapping[str, np.ndarray]:
    """Materialise the submodel slice a task trains.

    A :class:`StateHandle` resolves to the worker-cached global state and
    is sliced here (worker-side); a plain mapping is the pre-sliced
    legacy payload and passes through untouched.
    """
    if isinstance(source, StateHandle):
        return slice_state_dict(source.load(), architecture, dict(group_sizes))
    return source


class ClientTask(ABC):
    """One independent unit of client work executed by an :class:`Executor`."""

    #: private randomness of this task (see :mod:`repro.engine.rng`)
    rng_stream: np.random.SeedSequence

    @abstractmethod
    def run(self) -> Any:
        """Execute the work and return its result (runs on any worker)."""

    def rng(self) -> np.random.Generator:
        """A fresh generator over the task's stream (same bits every call)."""
        return np.random.default_rng(self.rng_stream)


@dataclass
class LocalRoundTask(ClientTask):
    """AdaptiveFL's full client round: adapt (prune) then train (Algorithm 1).

    The device-side resource adaptation runs inside the task, exactly as it
    would on a real client; the server only planned the dispatch.  Under
    slice transport the task carries only the *planned-return*
    configuration's slice (the weights the device actually trains — a
    prefix of the dispatched model, so slicing the global state directly
    to it is value-identical to pruning the dispatched slice on device).
    """

    client: SimulatedClient
    pool: ModelPool
    dispatched: SubmodelConfig
    dispatched_state: "Mapping[str, np.ndarray] | StateHandle"
    available_capacity: float
    # required on purpose: an OS-entropy default would silently break the
    # engine's determinism guarantee
    rng_stream: np.random.SeedSequence
    #: the submodel the resource plan predicts the device trains; used to
    #: cut the slice worker-side when ``dispatched_state`` is a handle
    planned_return: SubmodelConfig | None = None
    delta_upload: bool = False
    #: lossy update codec (takes precedence over ``delta_upload``); the
    #: trained slice uploads as an :class:`EncodedUpdate` of
    #: ``trained − reference``, rounded on the task's own stream
    codec: UpdateCodec | None = None
    #: server-banked error-feedback carry for this client (sliced to the
    #: dispatched shapes), added to the update before encoding
    codec_residual: "Mapping[str, np.ndarray] | None" = None
    #: telemetry identity (round trace + task span); never read by run()
    trace: TraceContext | None = None

    def run(self) -> ClientRoundResult:
        """Execute the client's full local round (worker-side entry point)."""
        slice_config = self.planned_return if self.planned_return is not None else self.dispatched
        initial_state = _resolve_state(
            self.dispatched_state, self.pool.architecture, self.pool.group_sizes(slice_config)
        )
        result = self.client.local_round(
            pool=self.pool,
            dispatched=self.dispatched,
            dispatched_state=initial_state,
            available_capacity=self.available_capacity,
            rng=self.rng(),
        )
        if self.codec is not None:
            # encode_client_update prefix-slices the reference to the
            # trained shapes, which matches slice_state_dict's prefix cut
            # bit-for-bit even when the device pruned below the plan
            result.state = encode_client_update(
                self.codec,
                result.state,
                initial_state,
                rng_stream=self.rng_stream,
                residual=self.codec_residual,
                client_id=self.client.client_id,
            )
        elif self.delta_upload:
            reference = initial_state
            if result.returned.name != slice_config.name:  # pragma: no cover - plan invariant
                reference = slice_state_dict(
                    dict(initial_state), self.pool.architecture, self.pool.group_sizes(result.returned)
                )
            result.state = encode_state_delta(result.state, reference)
        return result


@dataclass
class TrainSubmodelTask(ClientTask):
    """A baseline's client round: train a fixed submodel slice on local data."""

    architecture: SlimmableArchitecture
    group_sizes: Mapping[str, int]
    initial_state: "Mapping[str, np.ndarray] | StateHandle"
    dataset: "Dataset | StateHandle"
    local_config: LocalTrainingConfig
    rng_stream: np.random.SeedSequence
    client_id: int = -1
    delta_upload: bool = False
    #: lossy update codec (takes precedence over ``delta_upload``)
    codec: UpdateCodec | None = None
    #: server-banked error-feedback carry for this client
    codec_residual: "Mapping[str, np.ndarray] | None" = None
    #: telemetry identity (round trace + task span); never read by run()
    trace: TraceContext | None = None

    def run(self) -> LocalTrainingResult:
        """Train the assigned submodel on the client's data (worker-side)."""
        initial_state = _resolve_state(self.initial_state, self.architecture, self.group_sizes)
        dataset = self.dataset.load() if isinstance(self.dataset, StateHandle) else self.dataset
        result = train_local_model(
            architecture=self.architecture,
            group_sizes=self.group_sizes,
            initial_state=initial_state,
            dataset=dataset,
            config=self.local_config,
            rng=self.rng(),
        )
        if self.codec is not None:
            result = dataclass_replace(
                result,
                state=encode_client_update(
                    self.codec,
                    result.state,
                    initial_state,
                    rng_stream=self.rng_stream,
                    residual=self.codec_residual,
                    client_id=self.client_id,
                ),
            )
        elif self.delta_upload:
            result = dataclass_replace(result, state=encode_state_delta(result.state, initial_state))
        return result
