"""Process-pool execution of client tasks.

Each task (client, submodel weights, dataset reference, RNG stream) is
pickled to a worker process, trained there and the result pickled back.
Workers bypass the GIL entirely, so CPU-bound local training scales with
cores — at the price of per-task serialisation overhead, which the
CI-scale models keep small relative to the training itself.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Sequence

from repro.engine.base import Executor, run_task

__all__ = ["ProcessExecutor"]


class ProcessExecutor(Executor):
    """Fans tasks out over a reusable :class:`ProcessPoolExecutor`."""

    name = "process"
    is_interprocess = True

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.effective_workers)
        return self._pool

    def map(self, tasks: Sequence[Any]) -> list[Any]:
        """Fan the tasks across worker processes; results in submission order."""
        if not tasks:
            return []
        return list(self._ensure_pool().map(run_task, tasks))

    def shutdown(self) -> None:
        """Terminate the worker pool (a later map() lazily rebuilds it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
