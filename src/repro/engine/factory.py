"""Executor lookup by name — the single source of the executor vocabulary."""

from __future__ import annotations

from repro.engine.base import Executor
from repro.engine.process import ProcessExecutor
from repro.engine.serial import SerialExecutor
from repro.engine.thread import ThreadExecutor
from repro.serve.executor import RemoteExecutor

__all__ = ["EXECUTORS", "EXECUTOR_NAMES", "create_executor", "validate_executor_choice"]

EXECUTORS: dict[str, type[Executor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
    RemoteExecutor.name: RemoteExecutor,
}

#: valid values of ``FederatedConfig.executor`` / the CLI ``--executor`` flag
EXECUTOR_NAMES: tuple[str, ...] = tuple(EXECUTORS)


def validate_executor_choice(name: str, max_workers: int | None) -> None:
    """Shared validation for every config layer that carries an executor choice."""
    if name not in EXECUTORS:
        raise ValueError(f"executor must be one of {', '.join(EXECUTOR_NAMES)} (got {name!r})")
    if max_workers is not None and max_workers <= 0:
        raise ValueError("max_workers must be positive when set")


def create_executor(name: str = "serial", max_workers: int | None = None) -> Executor:
    """Instantiate an executor by registry name."""
    validate_executor_choice(name, max_workers)
    return EXECUTORS[name](max_workers=max_workers)
