"""Deterministic per-client RNG streams for parallel execution.

Every client task owns an independent :class:`numpy.random.SeedSequence`
keyed on ``(seed, round, client)``, so randomness is a pure function of
*which* work is done — never of worker identity, scheduling order or
executor choice.  ``client_stream`` reproduces bit-for-bit the generators
of the historical sequential implementation
(``np.random.default_rng((seed, round_index, client_id))`` seeds a
``SeedSequence`` with the same entropy tuple), which is what makes the
parallel engine's histories byte-identical to the pre-engine serial runs.

Tasks that need several independent generators (e.g. separate streams for
model initialisation and data shuffling, or benchmark workload jitter)
derive them with :func:`spawn_streams`, the collision-free
``SeedSequence.spawn`` mechanism.
"""

from __future__ import annotations

import numpy as np

__all__ = ["client_stream", "spawn_streams"]


def client_stream(seed: int, round_index: int, client_id: int) -> np.random.SeedSequence:
    """The independent RNG stream of one client's work in one round."""
    if round_index < 0 or client_id < 0:
        raise ValueError("round_index and client_id must be non-negative")
    return np.random.SeedSequence((int(seed), int(round_index), int(client_id)))


def spawn_streams(stream: np.random.SeedSequence, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent child streams of ``stream`` (deterministic).

    Children are keyed by spawn index.  Spawning happens on a fresh copy of
    the parent, so the result is a pure function of the parent's identity
    (entropy + spawn key): repeated calls return bit-identical children no
    matter how often the parent was spawned from before.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = np.random.SeedSequence(entropy=stream.entropy, spawn_key=stream.spawn_key)
    return list(parent.spawn(count))
