"""Slice/delta weight transport between the server and client workers.

Historically every client task carried a full copy of its submodel
weights and returned the trained weights whole — for the process
executor that meant pickling (and unpickling) the model state once per
task per round.  This module replaces both directions:

* **Download** — the server :meth:`publishes <StateStore.publish>` the
  global state once per round under a monotonically increasing version
  tag.  Tasks carry only a tiny :class:`StateHandle`; each worker
  process resolves the handle against a per-process cache, paying the
  deserialisation cost once per (store, version) instead of once per
  task, and then cuts the submodel slice *it trains* locally.  For
  in-process executors (serial/thread) the handle resolves to the
  published dict itself — zero copies.
* **Upload** — clients return a :class:`StateDelta` against the slice
  they received instead of raw weights.  The delta is a *bitwise* XOR
  of the IEEE-754 payloads, so the server's reconstruction
  (``reference XOR delta``) is exact to the last bit — arithmetic
  deltas (``trained - received``) cannot guarantee that, and the
  engine's contract is bit-identical histories for every transport and
  executor choice.  Tensors the client never touched XOR to all-zero
  blocks, which collapse under any downstream compression.

The server reconstructs uploads with :func:`decode_upload` against the
same slice of the global state it published — slicing is exact, so the
round trip is lossless by construction (property-tested in
``tests/perf``).
"""

from __future__ import annotations

import itertools
import os
import pickle
import tempfile
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

__all__ = [
    "StateStore",
    "StateHandle",
    "StateDelta",
    "encode_state_delta",
    "apply_state_delta",
    "decode_upload",
    "state_nbytes",
    "set_state_fetcher",
    "server_state_bytes",
]

#: per-worker-process LRU cache: store id -> (version, state).  Only the
#: latest version of each store is retained, and at most
#: ``_WORKER_CACHE_MAX_STREAMS`` distinct streams (global-model streams
#: plus per-client dataset streams) stay resident — an evicted stream
#: transparently reloads from its spill file on next use, so worker
#: memory stays bounded even for fleets with many more clients than this.
_WORKER_CACHE_MAX_STREAMS = 64
_WORKER_STATE_CACHE: "OrderedDict[str, tuple[int, Mapping[str, np.ndarray]]]" = OrderedDict()

#: store-id allocator; server-side only, unique for the process lifetime
_STORE_IDS = itertools.count()

#: live server-side stores by id, for serving spill bytes over the wire
#: (weak values: registration must never extend a store's lifetime)
_SERVER_STORES: "weakref.WeakValueDictionary[str, StateStore]" = weakref.WeakValueDictionary()

#: optional hook a networked worker installs to resolve handles over the
#: wire instead of the (server-local) spill path; None outside repro.serve
_STATE_FETCHER: "Callable[[str, int], Mapping[str, np.ndarray]] | None" = None


def set_state_fetcher(fetcher: "Callable[[str, int], Mapping[str, np.ndarray]] | None") -> None:
    """Install (or clear, with ``None``) the worker-side remote state fetcher.

    When set, :meth:`StateHandle.load` resolves cache misses by calling
    ``fetcher(store_id, version)`` instead of opening the handle's spill
    path — which on a networked worker names a file on the *server's*
    filesystem.  :class:`repro.serve.client.ClientRunner` installs its
    ``state_request``/``weight_slice`` round-trip here for the duration
    of its session.
    """
    global _STATE_FETCHER
    _STATE_FETCHER = fetcher


def server_state_bytes(store_id: str, version: int) -> bytes:
    """The pickled spill bytes of one published version of a live store.

    Serves ``state_request`` frames on the coordinator side.  Raises
    ``KeyError`` when the store is gone or the version was already
    released — a client asking for it is fatally out of sync.
    """
    store = _SERVER_STORES.get(store_id)
    if store is None:
        raise KeyError(f"no live state store {store_id!r}")
    return store.version_bytes(version)


def _cache_put(store_id: str, version: int, state) -> None:
    cached = _WORKER_STATE_CACHE.get(store_id)
    if cached is not None and cached[0] > version:
        # never clobber a newer cached version with an out-of-order load
        # of an older one (stragglers resolve old handles late)
        return
    _WORKER_STATE_CACHE[store_id] = (version, state)
    _WORKER_STATE_CACHE.move_to_end(store_id)
    while len(_WORKER_STATE_CACHE) > _WORKER_CACHE_MAX_STREAMS:
        _WORKER_STATE_CACHE.popitem(last=False)


def state_nbytes(state: Mapping[str, np.ndarray]) -> int:
    """Total payload bytes of a state dict (transport accounting)."""
    return int(sum(np.asarray(value).nbytes for value in state.values()))


@dataclass(frozen=True)
class StateHandle:
    """A picklable reference to one published version of a state dict.

    ``path`` is set when the owning store spilled the state for
    inter-process transport; the in-process reference (``_inline``)
    never crosses a pickle boundary.
    """

    store_id: str
    version: int
    path: str | None = None
    _inline: Mapping[str, np.ndarray] | None = field(default=None, repr=False, compare=False)

    def __getstate__(self) -> dict:
        # workers must go through the spill file + cache, never the inline dict
        return {"store_id": self.store_id, "version": self.version, "path": self.path}

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "store_id", state["store_id"])
        object.__setattr__(self, "version", state["version"])
        object.__setattr__(self, "path", state["path"])
        object.__setattr__(self, "_inline", None)

    def load(self) -> Mapping[str, np.ndarray]:
        """The published state (cached per worker process; read-only)."""
        if self._inline is not None:
            return self._inline
        cached = _WORKER_STATE_CACHE.get(self.store_id)
        if cached is not None and cached[0] == self.version:
            _WORKER_STATE_CACHE.move_to_end(self.store_id)
            return cached[1]
        if _STATE_FETCHER is not None:
            # networked worker: the spill path names a server-side file;
            # resolve over the wire instead
            state = _STATE_FETCHER(self.store_id, self.version)
        elif self.path is None:
            raise RuntimeError(
                f"state handle v{self.version} of store {self.store_id} has neither an "
                "inline reference nor a spill path (published for in-process use only?)"
            )
        else:
            with open(self.path, "rb") as stream:
                state = pickle.load(stream)
        _cache_put(self.store_id, self.version, state)
        return state


class StateStore:
    """Server-side publisher of versioned global-model state.

    One store backs one logical weight stream (the global model; one per
    level for Decoupled).  ``publish`` bumps the version and, when the
    executor crosses a process boundary, spills the state once to a
    temporary file that every worker deserialises at most once.
    """

    def __init__(self, label: str = "state"):
        self.label = label
        # a process-wide counter, not uuid4: store ids are cache-key
        # namespaces (identity, not data) and stores are only ever created
        # server-side, so a monotonic id is unique for the process lifetime
        # and keeps the whole run free of OS entropy (reprolint RPL001)
        self.store_id = f"{label}-{next(_STORE_IDS)}"
        self.version = 0
        self._spill_dir: str | None = None
        #: version -> spill path; versions are retained until close() or an
        #: explicit release_below(), never unlinked on the next publish —
        #: outstanding StateHandles (stragglers, networked workers) may
        #: still resolve them
        self._spill_paths: dict[int, str] = {}
        _SERVER_STORES[self.store_id] = self

    def publish(self, state: Mapping[str, np.ndarray], spill: bool = False) -> StateHandle:
        """Register a new version of the state and return its handle."""
        self.version += 1
        path = None
        if spill:
            if self._spill_dir is None:
                self._spill_dir = tempfile.mkdtemp(prefix=f"repro-{self.label}-")
            path = os.path.join(self._spill_dir, f"v{self.version}.pkl")
            with open(path, "wb") as stream:
                pickle.dump(state, stream, protocol=pickle.HIGHEST_PROTOCOL)
            self._spill_paths[self.version] = path
        return StateHandle(self.store_id, self.version, path, state)

    def version_bytes(self, version: int) -> bytes:
        """The pickled spill bytes of one retained version.

        Raises ``KeyError`` when that version was never spilled or was
        already released.
        """
        try:
            path = self._spill_paths[version]
        except KeyError:
            raise KeyError(
                f"store {self.store_id!r} does not retain v{version} "
                f"(current v{self.version}, retained {sorted(self._spill_paths)})"
            ) from None
        with open(path, "rb") as stream:
            return stream.read()

    def release_below(self, version: int) -> None:
        """Unlink spill files of versions strictly below ``version``.

        Called between rounds once no outstanding handle can reference a
        version any more, keeping disk usage bounded without the
        publish-time unlink that used to break stragglers mid-round.
        """
        for old in [v for v in self._spill_paths if v < version]:
            try:
                os.unlink(self._spill_paths.pop(old))
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def close(self) -> None:
        """Remove all retained spill files (idempotent, teardown-safe)."""
        # during interpreter shutdown module globals may already be torn
        # down; dropping the bookkeeping is then the only safe move
        if os is None or getattr(os, "unlink", None) is None:  # pragma: no cover
            self._spill_paths.clear()
            self._spill_dir = None
            return
        for path in self._spill_paths.values():
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._spill_paths.clear()
        if self._spill_dir is not None:
            try:
                os.rmdir(self._spill_dir)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._spill_dir = None

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            # never raise from a finaliser, least of all at interpreter
            # shutdown when our own globals may be half torn down
            pass


def _bit_view(tensor: np.ndarray) -> np.ndarray:
    """An unsigned-integer view of a float tensor's IEEE-754 payload."""
    tensor = np.ascontiguousarray(tensor)
    return tensor.view(np.dtype(f"u{tensor.dtype.itemsize}"))


@dataclass
class StateDelta:
    """A bitwise (XOR) delta of a trained state against its reference slice.

    ``payload`` maps tensor name to the XOR of the unsigned-integer views
    of trained and reference values; ``dtypes`` remembers the floating
    dtypes for reconstruction.
    """

    payload: dict[str, np.ndarray]
    dtypes: dict[str, str]

    @property
    def nbytes(self) -> int:
        """Total bytes of the delta payload (the upload's wire size)."""
        return int(sum(value.nbytes for value in self.payload.values()))


def encode_state_delta(
    trained: Mapping[str, np.ndarray],
    reference: Mapping[str, np.ndarray],
) -> StateDelta:
    """XOR-encode ``trained`` against ``reference`` (bit-exact, same shapes).

    Every tensor of ``trained`` must appear in ``reference`` with an
    identical shape and dtype — the reference is the exact slice the
    client received.
    """
    payload: dict[str, np.ndarray] = {}
    dtypes: dict[str, str] = {}
    for name, value in trained.items():
        value = np.asarray(value)
        ref = np.asarray(reference[name])
        if ref.shape != value.shape or ref.dtype != value.dtype:
            raise ValueError(
                f"delta reference mismatch for {name!r}: trained {value.shape}/{value.dtype} "
                f"vs reference {ref.shape}/{ref.dtype}"
            )
        payload[name] = _bit_view(value) ^ _bit_view(ref)
        dtypes[name] = value.dtype.str
    return StateDelta(payload, dtypes)


def apply_state_delta(
    delta: StateDelta,
    reference: Mapping[str, np.ndarray],
) -> dict[str, np.ndarray]:
    """Reconstruct the trained state: ``reference XOR delta`` per tensor.

    Exact inverse of :func:`encode_state_delta` — bit-identical to the
    weights the client trained.
    """
    state: dict[str, np.ndarray] = {}
    for name, bits in delta.payload.items():
        ref = np.asarray(reference[name])
        combined = _bit_view(ref) ^ bits
        state[name] = combined.view(np.dtype(delta.dtypes[name]))
    return state


def decode_upload(
    uploaded: "StateDelta | Mapping[str, np.ndarray]",
    reference: Mapping[str, np.ndarray] | None,
) -> Mapping[str, np.ndarray]:
    """Resolve an upload that may be either raw weights or a delta."""
    if isinstance(uploaded, StateDelta):
        if reference is None:
            raise ValueError("delta upload needs the reference slice to decode against")
        return apply_state_delta(uploaded, reference)
    return uploaded
