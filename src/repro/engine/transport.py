"""Slice/delta weight transport between the server and client workers.

Historically every client task carried a full copy of its submodel
weights and returned the trained weights whole — for the process
executor that meant pickling (and unpickling) the model state once per
task per round.  This module replaces both directions:

* **Download** — the server :meth:`publishes <StateStore.publish>` the
  global state once per round under a monotonically increasing version
  tag.  Tasks carry only a tiny :class:`StateHandle`; each worker
  process resolves the handle against a per-process cache, paying the
  deserialisation cost once per (store, version) instead of once per
  task, and then cuts the submodel slice *it trains* locally.  For
  in-process executors (serial/thread) the handle resolves to the
  published dict itself — zero copies.
* **Upload** — clients return a :class:`StateDelta` against the slice
  they received instead of raw weights.  The delta is a *bitwise* XOR
  of the IEEE-754 payloads, so the server's reconstruction
  (``reference XOR delta``) is exact to the last bit — arithmetic
  deltas (``trained - received``) cannot guarantee that, and the
  engine's contract is bit-identical histories for every transport and
  executor choice.  Tensors the client never touched XOR to all-zero
  blocks, which collapse under any downstream compression.

The server reconstructs uploads with :func:`decode_upload` against the
same slice of the global state it published — slicing is exact, so the
round trip is lossless by construction (property-tested in
``tests/perf``).
"""

from __future__ import annotations

import itertools
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = [
    "StateStore",
    "StateHandle",
    "StateDelta",
    "encode_state_delta",
    "apply_state_delta",
    "decode_upload",
    "state_nbytes",
]

#: per-worker-process LRU cache: store id -> (version, state).  Only the
#: latest version of each store is retained, and at most
#: ``_WORKER_CACHE_MAX_STREAMS`` distinct streams (global-model streams
#: plus per-client dataset streams) stay resident — an evicted stream
#: transparently reloads from its spill file on next use, so worker
#: memory stays bounded even for fleets with many more clients than this.
_WORKER_CACHE_MAX_STREAMS = 64
_WORKER_STATE_CACHE: "OrderedDict[str, tuple[int, Mapping[str, np.ndarray]]]" = OrderedDict()

#: store-id allocator; server-side only, unique for the process lifetime
_STORE_IDS = itertools.count()


def _cache_put(store_id: str, version: int, state) -> None:
    _WORKER_STATE_CACHE[store_id] = (version, state)
    _WORKER_STATE_CACHE.move_to_end(store_id)
    while len(_WORKER_STATE_CACHE) > _WORKER_CACHE_MAX_STREAMS:
        _WORKER_STATE_CACHE.popitem(last=False)


def state_nbytes(state: Mapping[str, np.ndarray]) -> int:
    """Total payload bytes of a state dict (transport accounting)."""
    return int(sum(np.asarray(value).nbytes for value in state.values()))


@dataclass(frozen=True)
class StateHandle:
    """A picklable reference to one published version of a state dict.

    ``path`` is set when the owning store spilled the state for
    inter-process transport; the in-process reference (``_inline``)
    never crosses a pickle boundary.
    """

    store_id: str
    version: int
    path: str | None = None
    _inline: Mapping[str, np.ndarray] | None = field(default=None, repr=False, compare=False)

    def __getstate__(self) -> dict:
        # workers must go through the spill file + cache, never the inline dict
        return {"store_id": self.store_id, "version": self.version, "path": self.path}

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "store_id", state["store_id"])
        object.__setattr__(self, "version", state["version"])
        object.__setattr__(self, "path", state["path"])
        object.__setattr__(self, "_inline", None)

    def load(self) -> Mapping[str, np.ndarray]:
        """The published state (cached per worker process; read-only)."""
        if self._inline is not None:
            return self._inline
        cached = _WORKER_STATE_CACHE.get(self.store_id)
        if cached is not None and cached[0] == self.version:
            _WORKER_STATE_CACHE.move_to_end(self.store_id)
            return cached[1]
        if self.path is None:
            raise RuntimeError(
                f"state handle v{self.version} of store {self.store_id} has neither an "
                "inline reference nor a spill path (published for in-process use only?)"
            )
        with open(self.path, "rb") as stream:
            state = pickle.load(stream)
        _cache_put(self.store_id, self.version, state)
        return state


class StateStore:
    """Server-side publisher of versioned global-model state.

    One store backs one logical weight stream (the global model; one per
    level for Decoupled).  ``publish`` bumps the version and, when the
    executor crosses a process boundary, spills the state once to a
    temporary file that every worker deserialises at most once.
    """

    def __init__(self, label: str = "state"):
        self.label = label
        # a process-wide counter, not uuid4: store ids are cache-key
        # namespaces (identity, not data) and stores are only ever created
        # server-side, so a monotonic id is unique for the process lifetime
        # and keeps the whole run free of OS entropy (reprolint RPL001)
        self.store_id = f"{label}-{next(_STORE_IDS)}"
        self.version = 0
        self._spill_dir: str | None = None
        self._spill_path: str | None = None

    def publish(self, state: Mapping[str, np.ndarray], spill: bool = False) -> StateHandle:
        """Register a new version of the state and return its handle."""
        self.version += 1
        path = None
        if spill:
            if self._spill_dir is None:
                self._spill_dir = tempfile.mkdtemp(prefix=f"repro-{self.label}-")
            path = os.path.join(self._spill_dir, f"v{self.version}.pkl")
            with open(path, "wb") as stream:
                pickle.dump(state, stream, protocol=pickle.HIGHEST_PROTOCOL)
            if self._spill_path is not None and self._spill_path != path:
                try:
                    os.unlink(self._spill_path)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
            self._spill_path = path
        return StateHandle(self.store_id, self.version, path, state)

    def close(self) -> None:
        """Remove spill files (idempotent)."""
        if self._spill_path is not None:
            try:
                os.unlink(self._spill_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._spill_path = None
        if self._spill_dir is not None:
            try:
                os.rmdir(self._spill_dir)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._spill_dir = None

    def __del__(self):  # pragma: no cover - GC safety net
        self.close()


def _bit_view(tensor: np.ndarray) -> np.ndarray:
    """An unsigned-integer view of a float tensor's IEEE-754 payload."""
    tensor = np.ascontiguousarray(tensor)
    return tensor.view(np.dtype(f"u{tensor.dtype.itemsize}"))


@dataclass
class StateDelta:
    """A bitwise (XOR) delta of a trained state against its reference slice.

    ``payload`` maps tensor name to the XOR of the unsigned-integer views
    of trained and reference values; ``dtypes`` remembers the floating
    dtypes for reconstruction.
    """

    payload: dict[str, np.ndarray]
    dtypes: dict[str, str]

    @property
    def nbytes(self) -> int:
        """Total bytes of the delta payload (the upload's wire size)."""
        return int(sum(value.nbytes for value in self.payload.values()))


def encode_state_delta(
    trained: Mapping[str, np.ndarray],
    reference: Mapping[str, np.ndarray],
) -> StateDelta:
    """XOR-encode ``trained`` against ``reference`` (bit-exact, same shapes).

    Every tensor of ``trained`` must appear in ``reference`` with an
    identical shape and dtype — the reference is the exact slice the
    client received.
    """
    payload: dict[str, np.ndarray] = {}
    dtypes: dict[str, str] = {}
    for name, value in trained.items():
        value = np.asarray(value)
        ref = np.asarray(reference[name])
        if ref.shape != value.shape or ref.dtype != value.dtype:
            raise ValueError(
                f"delta reference mismatch for {name!r}: trained {value.shape}/{value.dtype} "
                f"vs reference {ref.shape}/{ref.dtype}"
            )
        payload[name] = _bit_view(value) ^ _bit_view(ref)
        dtypes[name] = value.dtype.str
    return StateDelta(payload, dtypes)


def apply_state_delta(
    delta: StateDelta,
    reference: Mapping[str, np.ndarray],
) -> dict[str, np.ndarray]:
    """Reconstruct the trained state: ``reference XOR delta`` per tensor.

    Exact inverse of :func:`encode_state_delta` — bit-identical to the
    weights the client trained.
    """
    state: dict[str, np.ndarray] = {}
    for name, bits in delta.payload.items():
        ref = np.asarray(reference[name])
        combined = _bit_view(ref) ^ bits
        state[name] = combined.view(np.dtype(delta.dtypes[name]))
    return state


def decode_upload(
    uploaded: "StateDelta | Mapping[str, np.ndarray]",
    reference: Mapping[str, np.ndarray] | None,
) -> Mapping[str, np.ndarray]:
    """Resolve an upload that may be either raw weights or a delta."""
    if isinstance(uploaded, StateDelta):
        if reference is None:
            raise ValueError("delta upload needs the reference slice to decode against")
        return apply_state_delta(uploaded, reference)
    return uploaded
