"""In-process sequential execution — the reference all executors must match."""

from __future__ import annotations

from typing import Any, Sequence

from repro.engine.base import Executor, run_task

__all__ = ["SerialExecutor"]


class SerialExecutor(Executor):
    """Runs every task in the calling thread, one after another.

    This is the default executor and the parity reference: thread and
    process executors are required (and tested) to produce bit-identical
    results to this one at a fixed seed.
    """

    name = "serial"

    def map(self, tasks: Sequence[Any]) -> list[Any]:
        """Run every task in order, in this process."""
        return [run_task(task) for task in tasks]

    @property
    def effective_workers(self) -> int:
        """Always 1: serial execution has no pool."""
        return 1
