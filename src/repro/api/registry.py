"""The algorithm registry: every federated algorithm self-describes itself.

Algorithms register with the :func:`register_algorithm` decorator and
declare, through :class:`AlgorithmSpec`, which configs their constructor
accepts — e.g. HeteroFL ships its own fixed pool and therefore declares
``uses_pool_config=False`` (what used to be an ``if name != "heterofl"``
branch in the runner), and only AdaptiveFL accepts an
``algorithm_config``/selection strategy.  The experiment runner and the
CLI are pure registry lookups: adding an algorithm is one decorator, no
runner edits.

This module deliberately imports nothing from the rest of the package at
module level so that algorithm modules (``repro.core.server``,
``repro.baselines.*``) can import the decorator without cycles; the
built-in algorithms are pulled in lazily by :func:`ensure_builtin_algorithms`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fl_base import FederatedAlgorithm
    from repro.devices.testbed import TestbedSimulator
    from repro.experiments.settings import PreparedExperiment

__all__ = [
    "AlgorithmSpec",
    "register_algorithm",
    "unregister_algorithm",
    "get_algorithm",
    "available_algorithms",
    "validate_algorithm_names",
    "ensure_builtin_algorithms",
]

#: default selection strategy of AdaptiveFL (the paper's RL-CS)
DEFAULT_SELECTION_STRATEGY = "rl-cs"


@dataclass(frozen=True)
class AlgorithmSpec:
    """A registered algorithm plus the configs its constructor accepts."""

    name: str
    factory: Callable[..., "FederatedAlgorithm"]
    description: str = ""
    #: accepts ``pool_config=`` (HeteroFL ships its own fixed pool: False)
    uses_pool_config: bool = True
    #: accepts ``algorithm_config=`` (AdaptiveFL only)
    uses_algorithm_config: bool = False
    #: honours a client-selection strategy (AdaptiveFL only)
    uses_selection_strategy: bool = False
    #: display/iteration order in :func:`available_algorithms`
    order: int = 100
    #: extra constructor keyword arguments bound at registration time
    extra_kwargs: dict[str, Any] = field(default_factory=dict)

    def build(
        self,
        prepared: "PreparedExperiment",
        *,
        selection_strategy: str | None = None,
        testbed: "TestbedSimulator | None" = None,
        scenario: "str | None" = None,
    ) -> "FederatedAlgorithm":
        """Instantiate the algorithm on a prepared experiment.

        Only the configs the spec declares are passed to the factory, so
        registration — not the caller — decides the construction shape.
        ``scenario`` overrides the prepared federated config's scenario for
        this one run (the common path is the config itself).
        """
        if selection_strategy is not None and not self.uses_selection_strategy:
            raise ValueError(
                f"algorithm {self.name!r} does not accept a selection strategy "
                f"(got {selection_strategy!r})"
            )
        kwargs = prepared.algorithm_kwargs()
        if testbed is not None:
            kwargs["testbed"] = testbed
        if scenario is not None:
            kwargs["scenario"] = scenario
        if self.uses_pool_config:
            kwargs["pool_config"] = prepared.pool_config
        if self.uses_algorithm_config:
            kwargs["algorithm_config"] = prepared.adaptivefl_config(
                selection_strategy or DEFAULT_SELECTION_STRATEGY
            )
        kwargs.update(self.extra_kwargs)  # registration-time bindings win
        return self.factory(**kwargs)

    def run_label(self, selection_strategy: str | None = None) -> str:
        """Result label: the name, plus the non-default strategy if any."""
        if (
            self.uses_selection_strategy
            and selection_strategy is not None
            and selection_strategy != DEFAULT_SELECTION_STRATEGY
        ):
            return f"{self.name}+{selection_strategy}"
        return self.name

    def with_kwargs(self, **extra_kwargs: Any) -> "AlgorithmSpec":
        """Copy of the spec with additional bound constructor kwargs."""
        merged = {**self.extra_kwargs, **extra_kwargs}
        return replace(self, extra_kwargs=merged)


_REGISTRY: dict[str, AlgorithmSpec] = {}


def register_algorithm(
    name: str,
    *,
    description: str = "",
    uses_pool_config: bool = True,
    uses_algorithm_config: bool = False,
    uses_selection_strategy: bool = False,
    order: int = 100,
    **extra_kwargs: Any,
) -> Callable[[Callable[..., "FederatedAlgorithm"]], Callable[..., "FederatedAlgorithm"]]:
    """Class decorator that registers a federated algorithm by name."""

    def decorator(factory: Callable[..., "FederatedAlgorithm"]) -> Callable[..., "FederatedAlgorithm"]:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.factory is not factory:
            raise ValueError(f"algorithm {name!r} is already registered ({existing.factory!r})")
        doc = (factory.__doc__ or "").strip()
        _REGISTRY[name] = AlgorithmSpec(
            name=name,
            factory=factory,
            description=description or (doc.splitlines()[0] if doc else ""),
            uses_pool_config=uses_pool_config,
            uses_algorithm_config=uses_algorithm_config,
            uses_selection_strategy=uses_selection_strategy,
            order=order,
            extra_kwargs=dict(extra_kwargs),
        )
        return factory

    return decorator


def unregister_algorithm(name: str) -> None:
    """Remove a registration (plugin teardown / tests); unknown names are a no-op."""
    _REGISTRY.pop(name, None)


def ensure_builtin_algorithms() -> None:
    """Import the modules whose decorators register the built-in algorithms."""
    import repro.baselines  # noqa: F401  (registers the four baselines)
    import repro.core.server  # noqa: F401  (registers adaptivefl)


def available_algorithms() -> tuple[str, ...]:
    """All registered algorithm names, baselines first, AdaptiveFL last."""
    ensure_builtin_algorithms()
    return tuple(sorted(_REGISTRY, key=lambda name: (_REGISTRY[name].order, name)))


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm; unknown names list every valid one."""
    ensure_builtin_algorithms()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; registered: {', '.join(available_algorithms())}"
        ) from None


def validate_algorithm_names(names: Iterable[str]) -> tuple[str, ...]:
    """Fail fast on unknown names *before* any expensive data preparation."""
    ensure_builtin_algorithms()
    names = tuple(names)
    unknown = [name for name in names if name not in _REGISTRY]
    if unknown:
        raise KeyError(
            f"unknown algorithm(s) {', '.join(map(repr, unknown))}; "
            f"registered: {', '.join(available_algorithms())}"
        )
    return names
