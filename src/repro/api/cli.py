"""The ``python -m repro`` command line.

Three subcommands drive the whole experiment layer from a shell:

* ``repro run`` — train one algorithm, e.g.::

      python -m repro run --algorithm adaptivefl --dataset cifar10 --scale ci
      python -m repro run --algorithm adaptivefl --executor process --max-workers 4

* ``repro compare`` — run several algorithms on the identical prepared
  experiment, from flags or from a saved spec::

      python -m repro compare --spec spec.json
      python -m repro compare --algorithms heterofl adaptivefl --rounds 4

* ``repro algorithms`` — list the registry with declared capabilities.

* ``repro scenarios`` — list the fleet-scenario registry (``--names``
  prints bare names for scripting); ``run``/``compare`` accept
  ``--scenario`` to condition training on one::

      python -m repro run --algorithm adaptivefl --scenario flaky_edge

* ``repro sweep`` — expand a grid (algorithms × scenarios × seeds) into
  an experiment store, skipping cells the store already completed and
  resuming partially checkpointed ones::

      python -m repro sweep --store runs/ --algorithms adaptivefl heterofl \\
          --seeds 0 1 2 --scenarios none flaky_edge

* ``repro report`` — regenerate ``report.md``/``report.json`` from a
  store's completed runs, nothing else.

* ``repro lint`` — run *reprolint*, the repo's determinism & invariant
  linter (:mod:`repro.analysis`), against ``src/`` or any path::

      python -m repro lint --strict
      python -m repro lint src/repro/nn --rules RPL002 --format json

* ``repro serve`` — host the networked federation coordinator
  (:mod:`repro.serve`) and train over connected ``repro client``
  workers; accepts the same setting/run flags as ``run`` and prints the
  bound address before waiting for the client quorum::

      python -m repro serve --algorithm adaptivefl --port 7733 --expect-clients 2

* ``repro client`` — run one networked federated worker against a
  ``repro serve`` coordinator::

      python -m repro client --host 127.0.0.1 --port 7733 --name worker-0

* ``repro metrics`` — scrape a running coordinator's status endpoint
  (``repro serve --status-port``) and print the Prometheus exposition::

      python -m repro metrics --port 9100

* ``repro tail`` — pretty-print a telemetry JSONL event log (written by
  ``--telemetry`` / ``--event-log``), optionally following it live::

      python -m repro tail results/events.jsonl --follow

Both ``run`` and ``compare`` write one ``<algorithm>_history.json`` per
run plus ``summary.json`` (and echo the resolved ``spec.json``) into
``--output-dir``, and stream progress unless ``--quiet``; with
``--store`` they also checkpoint every round into a durable
:class:`repro.store.RunStore`, and ``--resume`` continues interrupted
runs from their last completed round.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.api.callbacks import Callback, EarlyStopping, JsonHistoryStreamer, ProgressCallback, WallClockBudget
from repro.api.registry import available_algorithms, get_algorithm, validate_algorithm_names
from repro.api.session import ExperimentSession
from repro.api.spec import ExperimentSpec
from repro.engine.factory import EXECUTOR_NAMES
from repro.experiments.settings import DATASET_BUILDERS, ExperimentSetting
from repro.experiments.reporting import format_table, render_accuracy_table
from repro.perf.profiler import render_summary

__all__ = ["main", "build_parser"]

#: CLI default model; the ExperimentSetting default (vgg16) needs 32px
#: inputs and cannot build at the 16px ci scale every quick run uses.
DEFAULT_MODEL = "simple_cnn"


def _add_setting_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("experiment setting")
    group.add_argument("--dataset", default="cifar10", choices=sorted(DATASET_BUILDERS))
    group.add_argument("--model", default=DEFAULT_MODEL, help="architecture registry name")
    group.add_argument(
        "--distribution",
        default=None,
        choices=["iid", "dirichlet", "natural"],
        help="data distribution (default: dirichlet when --alpha is given, else iid)",
    )
    group.add_argument("--alpha", type=float, default=None, help="Dirichlet alpha for non-IID data")
    group.add_argument("--proportion", default="4:3:3", help="weak:medium:strong device proportion")
    group.add_argument("--scale", default="ci", help="experiment scale preset (ci, small, paper)")
    group.add_argument("--seed", type=int, default=0)
    group.add_argument(
        "--executor",
        default="serial",
        choices=list(EXECUTOR_NAMES),
        help="client-execution engine; bit-identical results, different wall-clock",
    )
    group.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="worker count for thread/process executors (default: usable CPUs)",
    )
    group.add_argument(
        "--scenario",
        default=None,
        help="fleet scenario driving system dynamics (see `repro scenarios`)",
    )
    group.add_argument(
        "--transport",
        default="delta",
        choices=["delta", "full"],
        help="weight transport: slice/delta (default) or legacy full-state shipping",
    )
    group.add_argument(
        "--transport-codec",
        default="none",
        choices=["none", "fp16", "int8", "topk"],
        help="lossy uplink codec layered on the transport (default: none = exact)",
    )


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("run options")
    group.add_argument("--spec", type=Path, default=None, help="JSON ExperimentSpec (overrides setting flags)")
    group.add_argument("--rounds", type=int, default=None, help="override the number of federated rounds")
    group.add_argument("--output-dir", type=Path, default=Path("results"), help="where histories/summary are written")
    group.add_argument("--quiet", action="store_true", help="suppress per-round progress output")
    group.add_argument("--patience", type=int, default=None, help="early-stop after N evaluations without improvement")
    group.add_argument("--budget-seconds", type=float, default=None, help="stop each run after a wall-clock budget")
    group.add_argument("--stream-history", action="store_true", help="also stream per-round JSONL next to the history")
    group.add_argument(
        "--profile",
        action="store_true",
        help="collect repro.perf timers/counters per run; prints a summary and writes <algorithm>_profile.json",
    )
    group.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="PATH",
        help="write structured telemetry events (repro.obs) to this JSONL file; view with `repro tail`",
    )
    _add_store_flags(parser)


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("experiment store")
    group.add_argument(
        "--store",
        type=Path,
        default=None,
        help="RunStore directory: checkpoint every round + persist final histories",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="skip runs the store completed; continue interrupted ones from their last checkpoint",
    )
    group.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="checkpoint cadence in rounds (default: every round)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro`` argument parser (also used by the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AdaptiveFL reproduction: registry-driven federated-learning experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="train one algorithm end-to-end")
    run.add_argument("--algorithm", default=None, help="registered algorithm name (default: adaptivefl)")
    run.add_argument("--selection-strategy", default=None, help="AdaptiveFL strategy (rl-cs, rl-c, rl-s, random, greedy)")
    _add_setting_flags(run)
    _add_run_flags(run)
    run.set_defaults(handler=_cmd_run)

    compare = subparsers.add_parser("compare", help="run several algorithms on the identical experiment")
    compare.add_argument("--algorithms", nargs="*", default=None, help="names (default: every registered algorithm)")
    _add_setting_flags(compare)
    _add_run_flags(compare)
    compare.set_defaults(handler=_cmd_compare)

    algorithms = subparsers.add_parser("algorithms", help="list the algorithm registry")
    algorithms.set_defaults(handler=_cmd_algorithms)

    scenarios = subparsers.add_parser("scenarios", help="list the fleet-scenario registry")
    scenarios.add_argument("--names", action="store_true", help="print bare names only (scripting)")
    scenarios.set_defaults(handler=_cmd_scenarios)

    sweep = subparsers.add_parser("sweep", help="run a (algorithms × scenarios × seeds) grid into a store")
    sweep.add_argument("--algorithms", nargs="*", default=None, help="names (default: every registered algorithm)")
    sweep.add_argument("--selection-strategy", default=None, help="AdaptiveFL strategy applied across the grid")
    sweep.add_argument("--seeds", nargs="*", type=int, default=None, help="seeds to cross (default: --seed)")
    sweep.add_argument(
        "--scenarios",
        nargs="*",
        default=None,
        help="scenario names to cross; the literal 'none' means no scenario (default: --scenario)",
    )
    sweep.add_argument("--spec", type=Path, default=None, help="JSON SweepSpec (overrides the grid flags)")
    sweep.add_argument("--rounds", type=int, default=None, help="override the number of federated rounds")
    sweep.add_argument("--quiet", action="store_true", help="suppress per-cell progress output")
    _add_setting_flags(sweep)
    _add_store_flags(sweep)
    sweep.set_defaults(handler=_cmd_sweep, resume=None)
    sweep.add_argument(
        "--fresh",
        dest="resume",
        action="store_false",
        help="re-run every cell even when the store already completed it (default: resume)",
    )

    lint = subparsers.add_parser("lint", help="run reprolint, the determinism & invariant linter")
    lint.add_argument("paths", nargs="*", default=["src"], help="files or directories to lint (default: src)")
    lint.add_argument("--rules", default=None, help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--format", default="text", choices=["text", "json"], help="report format")
    lint.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: reprolint_baseline.json in the cwd when present)",
    )
    lint.add_argument("--no-baseline", action="store_true", help="ignore any baseline file")
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write every current finding to the baseline file and exit 0",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="also fail (exit 1) on stale baseline entries, not just new findings",
    )
    lint.add_argument("--output", type=Path, default=None, help="write the report to a file (atomic)")
    lint.add_argument("--list-rules", action="store_true", help="print the rule catalogue and exit")
    lint.set_defaults(handler=_cmd_lint)

    serve = subparsers.add_parser("serve", help="host the federation coordinator and train over networked clients")
    serve.add_argument("--algorithm", default=None, help="registered algorithm name (default: adaptivefl)")
    serve.add_argument("--algorithms", nargs="*", default=None, help="several names, run on the same client fleet")
    serve.add_argument("--selection-strategy", default=None, help="AdaptiveFL strategy (rl-cs, rl-c, rl-s, random, greedy)")
    service = serve.add_argument_group("federation service")
    service.add_argument("--host", default="127.0.0.1", help="interface to bind (default: loopback)")
    service.add_argument("--port", type=int, default=7733, help="TCP port; 0 binds an ephemeral port")
    service.add_argument(
        "--expect-clients", type=int, default=1, help="client quorum each round waits for before dispatching"
    )
    service.add_argument(
        "--connect-timeout", type=float, default=60.0, help="seconds to wait for the quorum (and mid-round rejoins)"
    )
    service.add_argument(
        "--straggler-timeout",
        type=float,
        default=60.0,
        help="seconds before an unanswered task is redispatched to another client; 0 disables",
    )
    service.add_argument("--heartbeat-interval", type=float, default=10.0, help="liveness probe cadence in seconds")
    service.add_argument(
        "--liveness-timeout", type=float, default=120.0, help="seconds of client silence before its work is requeued"
    )
    service.add_argument(
        "--status-port",
        type=int,
        default=None,
        help="bind the HTTP status endpoint (/metrics, /healthz, /events) on this port; 0 = ephemeral",
    )
    _add_setting_flags(serve)
    _add_run_flags(serve)
    serve.set_defaults(handler=_cmd_serve)

    client = subparsers.add_parser("client", help="run one networked federated worker")
    client.add_argument("--host", default="127.0.0.1", help="coordinator host")
    client.add_argument("--port", type=int, required=True, help="coordinator port")
    client.add_argument("--name", required=True, help="stable client identity (reconnects resume under it)")
    client.add_argument("--reconnect-attempts", type=int, default=10, help="lost-connection retries before giving up")
    client.add_argument("--backoff-base", type=float, default=0.2, help="first reconnect delay in seconds (doubles)")
    client.add_argument("--backoff-max", type=float, default=5.0, help="reconnect delay ceiling in seconds")
    client.add_argument(
        "--drop-after",
        type=int,
        default=None,
        help="failure injection (tests): close the connection once after computing N results, without uploading",
    )
    client.add_argument("--quiet", action="store_true", help="suppress connection log lines")
    client.add_argument(
        "--event-log",
        type=Path,
        default=None,
        metavar="PATH",
        help="write this worker's telemetry events (task_start/task_upload) to a JSONL file",
    )
    client.set_defaults(handler=_cmd_client)

    metrics = subparsers.add_parser("metrics", help="scrape a coordinator's Prometheus status endpoint")
    metrics.add_argument("--host", default="127.0.0.1", help="status endpoint host")
    metrics.add_argument("--port", type=int, required=True, help="status endpoint port (see `repro serve --status-port`)")
    metrics.add_argument(
        "--path",
        default="/metrics",
        choices=["/metrics", "/healthz", "/events"],
        help="endpoint route to fetch (default: /metrics)",
    )
    metrics.add_argument("--timeout", type=float, default=5.0, help="HTTP timeout in seconds")
    metrics.set_defaults(handler=_cmd_metrics)

    tail = subparsers.add_parser("tail", help="pretty-print a telemetry JSONL event log")
    tail.add_argument("path", type=Path, help="JSONL event log (from --telemetry / --event-log)")
    tail.add_argument("--follow", action="store_true", help="keep the file open and print events as they arrive")
    tail.add_argument("--limit", type=int, default=None, help="print only the last N existing events")
    tail.add_argument("--raw", action="store_true", help="print raw JSON lines instead of the pretty form")
    tail.set_defaults(handler=_cmd_tail)

    report = subparsers.add_parser("report", help="regenerate report.md/report.json from a store")
    report.add_argument("--store", type=Path, required=True, help="RunStore directory to read")
    report.add_argument(
        "--output-dir", type=Path, default=None, help="where to write the report (default: the store root)"
    )
    report.add_argument("--title", default="Experiment report", help="report heading")
    report.set_defaults(handler=_cmd_report)

    return parser


def _setting_from_args(args: argparse.Namespace) -> ExperimentSetting:
    distribution = args.distribution
    if distribution is None:
        distribution = "dirichlet" if args.alpha is not None else "iid"
    return ExperimentSetting(
        dataset=args.dataset,
        model=args.model,
        distribution=distribution,
        alpha=args.alpha,
        proportion=args.proportion,
        scale=args.scale,
        seed=args.seed,
        executor=args.executor,
        max_workers=args.max_workers,
        scenario=args.scenario,
        transport=args.transport,
        transport_codec=args.transport_codec,
    )


def _session_from_args(args: argparse.Namespace) -> tuple[ExperimentSession, ExperimentSpec]:
    """Resolve a session + the effective spec (from --spec or from flags)."""
    if args.spec is not None:
        conflicting = [
            flag
            for flag, value in [
                ("--algorithm", getattr(args, "algorithm", None)),
                ("--algorithms", getattr(args, "algorithms", None)),
                ("--selection-strategy", getattr(args, "selection_strategy", None)),
            ]
            if value
        ]
        if conflicting:
            raise ValueError(
                f"{' and '.join(conflicting)} cannot be combined with --spec; "
                "edit the spec file instead (--rounds may override it)"
            )
        spec = ExperimentSpec.load(args.spec)
        if args.rounds is not None:
            spec = ExperimentSpec.from_dict({**spec.to_dict(), "num_rounds": args.rounds})
        session = ExperimentSession.from_spec(spec)
    else:
        algorithms = getattr(args, "algorithms", None) or ()
        if getattr(args, "algorithm", None):
            algorithms = (args.algorithm,)
        spec = ExperimentSpec(
            setting=_setting_from_args(args),
            algorithms=tuple(algorithms),
            selection_strategy=getattr(args, "selection_strategy", None),
            num_rounds=args.rounds,
        )
        session = ExperimentSession.from_spec(spec)
    _attach_callbacks(session, args)
    return session, spec


def _attach_callbacks(session: ExperimentSession, args: argparse.Namespace) -> None:
    if getattr(args, "store", None) is not None:
        session.with_store(
            args.store,
            resume=bool(getattr(args, "resume", False)),
            checkpoint_every=getattr(args, "checkpoint_every", 1),
        )
    elif getattr(args, "resume", False):
        raise ValueError("--resume requires --store (there is nothing to resume from)")
    if getattr(args, "profile", False):
        session.with_profiling()
    if not args.quiet:
        session.with_callback(ProgressCallback())
    if args.patience is not None:
        patience = args.patience
        session.with_callback(lambda: EarlyStopping(patience=patience))
    if args.budget_seconds is not None:
        budget = args.budget_seconds
        session.with_callback(lambda: WallClockBudget(budget))
    if args.stream_history:
        output_dir = _output_dir(session, args)
        session.with_callback(_StreamerPerRun(output_dir))


class _StreamerPerRun(Callback):
    """Routes each run's rounds to ``<algorithm>_rounds.jsonl`` in the output dir."""

    def __init__(self, directory: Path):
        self.directory = directory
        self._streamers: dict[str, JsonHistoryStreamer] = {}

    def _streamer(self, algorithm) -> JsonHistoryStreamer:
        if algorithm.name not in self._streamers:
            self._streamers[algorithm.name] = JsonHistoryStreamer(
                self.directory / f"{algorithm.name}_rounds.jsonl"
            )
        return self._streamers[algorithm.name]

    def on_round_end(self, algorithm, record) -> None:
        """Route the round to the algorithm's own JSONL streamer."""
        self._streamer(algorithm).on_round_end(algorithm, record)


def _output_dir(session: ExperimentSession, args: argparse.Namespace) -> Path:
    if session.spec is not None and session.spec.output_dir:
        return Path(session.spec.output_dir)
    return args.output_dir


def _finish(session: ExperimentSession, spec: ExperimentSpec, args: argparse.Namespace) -> int:
    directory = _output_dir(session, args)
    written = session.save_results(directory)
    spec.save(directory / "spec.json")
    print(render_accuracy_table(session.results, title=f"results ({directory})"))
    if getattr(args, "profile", False):
        for label, result in session.results.items():
            if result.profile is not None:
                print()
                print(render_summary(result.profile, title=f"profile — {label}"))
    print("wrote:", ", ".join(str(path) for path in written))
    return 0


@contextlib.contextmanager
def _telemetry(args: argparse.Namespace, source: str) -> Iterator[None]:
    """Attach the process-wide JSONL telemetry sink for the handler's scope."""
    path = getattr(args, "telemetry", None)
    if path is None:
        yield
        return
    from repro.obs.events import configure_telemetry, shutdown_telemetry

    path.parent.mkdir(parents=True, exist_ok=True)
    configure_telemetry(jsonl_path=str(path), source=source)
    try:
        yield
    finally:
        shutdown_telemetry()


def _cmd_run(args: argparse.Namespace) -> int:
    session, spec = _session_from_args(args)
    names = spec.algorithms or ("adaptivefl",)
    validate_algorithm_names(names)
    with _telemetry(args, source="run"):
        for name in names:
            # an explicit --selection-strategy flag is passed through unfiltered
            # (requesting one for an algorithm that cannot honour it is an error,
            # not a no-op); a spec file's strategy applies only to algorithms that
            # accept one, matching `compare --spec` on the same file
            strategy = session.strategy_for(name) if args.spec is not None else spec.selection_strategy
            session.run(name, selection_strategy=strategy)
    return _finish(session, spec, args)


def _cmd_compare(args: argparse.Namespace) -> int:
    session, spec = _session_from_args(args)
    with _telemetry(args, source="compare"):
        session.run_spec()
    return _finish(session, spec, args)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.store.report import write_report
    from repro.store.sweep import SweepSpec, run_sweep

    if args.store is None:
        raise ValueError("repro sweep requires --store (the grid's durable home)")
    if args.spec is not None:
        conflicting = [
            flag
            for flag, value in [
                ("--algorithms", args.algorithms),
                ("--seeds", args.seeds),
                ("--scenarios", args.scenarios),
                ("--selection-strategy", args.selection_strategy),
            ]
            if value
        ]
        if conflicting:
            raise ValueError(
                f"{' and '.join(conflicting)} cannot be combined with --spec; "
                "edit the sweep file instead (--rounds may override it)"
            )
        sweep = SweepSpec.load(args.spec)
        if args.rounds is not None:
            base = ExperimentSpec.from_dict({**sweep.base.to_dict(), "num_rounds": args.rounds})
            sweep = SweepSpec.from_dict({**sweep.to_dict(), "base": base.to_dict()})
    else:
        scenarios: tuple[str | None, ...] = ()
        if args.scenarios is not None:
            scenarios = tuple(None if name == "none" else name for name in args.scenarios)
        sweep = SweepSpec(
            base=ExperimentSpec(
                setting=_setting_from_args(args),
                algorithms=tuple(args.algorithms or ()),
                selection_strategy=args.selection_strategy,
                num_rounds=args.rounds,
            ),
            seeds=tuple(args.seeds or ()),
            scenarios=scenarios,
        )

    def on_cell(cell, status):
        if not args.quiet:
            scenario = cell.scenario or "-"
            print(f"[sweep] {cell.algorithm} scenario={scenario} seed={cell.seed}: {status}")

    resume = True if args.resume is None else args.resume
    result = run_sweep(
        sweep,
        args.store,
        resume=resume,
        checkpoint_every=args.checkpoint_every,
        callbacks=None if args.quiet else [lambda: ProgressCallback()],
        on_cell=on_cell,
    )
    counts = result.counts()
    rows = [
        [cell.cell.algorithm, cell.cell.scenario or "-", str(cell.cell.seed), cell.status,
         f"{cell.result.full_accuracy * 100:.2f}", f"{cell.result.avg_accuracy * 100:.2f}"]
        for cell in result.cells
    ]
    print(format_table(["algorithm", "scenario", "seed", "status", "full (%)", "avg (%)"], rows))
    print(
        f"sweep: {counts['ran']} ran, {counts['resumed']} resumed, {counts['skipped']} skipped "
        f"({len(result.cells)} cells)"
    )
    written = write_report(args.store)
    print("wrote:", ", ".join(str(path) for path in written))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.executor import RemoteExecutor
    from repro.serve.options import configure_serve

    # the whole point of this command is the networked path
    args.executor = "remote"
    options = configure_serve(
        host=args.host,
        port=args.port,
        min_clients=args.expect_clients,
        connect_timeout=args.connect_timeout,
        straggler_timeout=args.straggler_timeout if args.straggler_timeout > 0 else None,
        heartbeat_interval=args.heartbeat_interval,
        liveness_timeout=args.liveness_timeout,
        status_port=args.status_port,
    )
    session, spec = _session_from_args(args)
    names = spec.algorithms or ("adaptivefl",)
    validate_algorithm_names(names)
    with _telemetry(args, source="server"):
        # one executor for every algorithm: clients stay connected across runs
        executor = RemoteExecutor(options=options)
        host, port = executor.start()
        print(f"repro-serve: listening on {host}:{port}", flush=True)
        status = executor.status_address
        if status is not None:
            print(f"repro-serve: status endpoint on http://{status[0]}:{status[1]}/metrics", flush=True)
        try:
            for name in names:
                strategy = session.strategy_for(name) if args.spec is not None else spec.selection_strategy
                session.run(name, selection_strategy=strategy, executor=executor)
            return _finish(session, spec, args)
        finally:
            executor.shutdown()


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.serve.client import ClientRunner

    return ClientRunner(
        args.host,
        args.port,
        args.name,
        reconnect_attempts=args.reconnect_attempts,
        backoff_base=args.backoff_base,
        backoff_max=args.backoff_max,
        drop_after=args.drop_after,
        quiet=args.quiet,
        event_log=str(args.event_log) if args.event_log is not None else None,
    ).run()


def _cmd_metrics(args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.request

    url = f"http://{args.host}:{args.port}{args.path}"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as response:  # noqa: S310 - plain HTTP status scrape
            body = response.read().decode("utf-8", errors="replace")
    except urllib.error.URLError as error:
        raise OSError(f"cannot reach {url}: {error.reason}") from error
    print(body, end="" if body.endswith("\n") else "\n")
    return 0


def _iter_jsonl_events(handle, raw: bool) -> "Iterator[str]":
    """Yield display lines for complete JSONL records read from ``handle``.

    Stops (seeking back) at a partial trailing line so a follow loop can
    retry it once the concurrent writer finishes the record.
    """
    import json

    from repro.obs.events import Event
    from repro.obs.sinks import format_event

    while True:
        position = handle.tell()
        line = handle.readline()
        if not line:
            return
        if not line.endswith("\n"):
            handle.seek(position)
            return
        text = line.strip()
        if not text:
            continue
        if raw:
            yield text
            continue
        try:
            yield format_event(Event.from_dict(json.loads(text)))
        except (ValueError, TypeError, KeyError):
            yield f"?? unparseable event line: {text}"


def _cmd_tail(args: argparse.Namespace) -> int:
    if not args.path.exists():
        raise OSError(f"no such event log: {args.path}")
    with args.path.open("r", encoding="utf-8") as handle:
        lines = list(_iter_jsonl_events(handle, args.raw))
        if args.limit is not None:
            lines = lines[-args.limit :]
        for line in lines:
            print(line, flush=True)
        if not args.follow:
            return 0
        try:
            while True:
                emitted = False
                for line in _iter_jsonl_events(handle, args.raw):
                    print(line, flush=True)
                    emitted = True
                if not emitted:
                    time.sleep(0.25)
        except KeyboardInterrupt:
            return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.store.report import generate_report

    bundle = generate_report(args.store, title=args.title)
    written = bundle.save(args.output_dir if args.output_dir is not None else args.store)
    print(bundle.markdown)
    print("wrote:", ", ".join(str(path) for path in written))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.sim.scenario import available_scenarios, get_scenario

    names = available_scenarios()
    if args.names:
        for name in names:
            print(name)
        return 0
    rows = []
    for name in names:
        spec = get_scenario(name)
        dynamics = []
        if spec.availability.kind != "always":
            dynamics.append(spec.availability.kind)
        if spec.dropout_rate > 0:
            dynamics.append(f"dropout {spec.dropout_rate:.0%}")
        if spec.network.server_concurrency is not None:
            dynamics.append(f"{spec.network.server_concurrency} transfer slots")
        if spec.battery is not None:
            dynamics.append("battery")
        if spec.has_deadline:
            deadline = (
                f"{spec.deadline_seconds:g}s"
                if spec.deadline_seconds is not None
                else f"{spec.deadline_factor:g}x median"
            )
            dynamics.append(f"deadline {deadline}")
        if spec.over_selection:
            dynamics.append(f"+{spec.over_selection} over-selection")
        rows.append(
            [
                name,
                str(len(spec.devices)),
                ", ".join(dynamics) if dynamics else "static",
                spec.description,
            ]
        )
    print(format_table(["scenario", "device types", "dynamics", "description"], rows))
    return 0


def _cmd_algorithms(args: argparse.Namespace) -> int:
    rows = []
    for name in available_algorithms():
        spec = get_algorithm(name)
        rows.append(
            [
                name,
                "yes" if spec.uses_pool_config else "no",
                "yes" if spec.uses_selection_strategy else "no",
                spec.description,
            ]
        )
    print(format_table(["algorithm", "pool config", "selection strategy", "description"], rows))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro`` and the ``repro`` console script."""
    args = build_parser().parse_args(argv)
    handler: Callable[[argparse.Namespace], int] = args.handler
    try:
        return handler(args)
    except (KeyError, ValueError, OSError) as error:
        # registry/config validation errors and unreadable spec files
        # (json.JSONDecodeError is a ValueError) become clean CLI errors
        print(f"error: {error}", file=sys.stderr)
        return 2
