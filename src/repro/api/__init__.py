"""``repro.api`` — the curated public surface of the reproduction.

This package is the single entry point applications should use:

* :mod:`repro.api.registry` — the algorithm registry: ``@register_algorithm``
  lets AdaptiveFL, the four baselines and any plugin self-describe the
  configs they accept; ``run_algorithm``/``run_comparison`` are pure
  registry lookups with no per-algorithm special cases.
* :mod:`repro.api.callbacks` — the ``on_round_start`` / ``on_round_end`` /
  ``on_evaluate`` / ``on_fit_end`` hook protocol threaded through
  :meth:`repro.core.fl_base.FederatedAlgorithm.run`, with shipped callbacks
  for progress logging, early stopping, wall-clock budgets and JSON
  history streaming.
* :mod:`repro.api.spec` — :class:`ExperimentSpec`, a JSON-serialisable
  description of a full experiment (setting + algorithms + run options).
* :mod:`repro.api.session` — :class:`ExperimentSession`, which prepares the
  data/partition/devices once and runs any number of algorithms on the
  identical snapshot (paired comparisons, N× faster than re-preparing).
* :mod:`repro.api.cli` — the ``python -m repro`` command line.

Attribute access is lazy (PEP 562) so ``import repro.api`` stays cheap and
submodules underneath (``repro.core.fl_base`` imports the callback
protocol) never create import cycles.
"""

from __future__ import annotations

import importlib
from typing import Any

_EXPORTS: dict[str, str] = {
    # registry
    "AlgorithmSpec": "repro.api.registry",
    "register_algorithm": "repro.api.registry",
    "unregister_algorithm": "repro.api.registry",
    "get_algorithm": "repro.api.registry",
    "available_algorithms": "repro.api.registry",
    "validate_algorithm_names": "repro.api.registry",
    # callbacks
    "Callback": "repro.api.callbacks",
    "CallbackList": "repro.api.callbacks",
    "ProgressCallback": "repro.api.callbacks",
    "EarlyStopping": "repro.api.callbacks",
    "WallClockBudget": "repro.api.callbacks",
    "JsonHistoryStreamer": "repro.api.callbacks",
    # spec / session
    "ExperimentSpec": "repro.api.spec",
    "ExperimentSession": "repro.api.session",
    # re-exported building blocks
    "ExperimentSetting": "repro.experiments.settings",
    "PreparedExperiment": "repro.experiments.settings",
    "prepare_experiment": "repro.experiments.settings",
    "AlgorithmResult": "repro.experiments.runner",
    "run_algorithm": "repro.experiments.runner",
    "run_comparison": "repro.experiments.runner",
    "FederatedConfig": "repro.core.config",
    "LocalTrainingConfig": "repro.core.config",
    "ModelPoolConfig": "repro.core.config",
    "AdaptiveFLConfig": "repro.core.config",
    "TrainingHistory": "repro.core.history",
    "RoundRecord": "repro.core.history",
    # experiment store (repro.store)
    "RunStore": "repro.store.runstore",
    "RunRecorder": "repro.store.runstore",
    "Checkpoint": "repro.store.checkpoint",
    "SweepSpec": "repro.store.sweep",
    "run_sweep": "repro.store.sweep",
    "generate_report": "repro.store.report",
    "write_report": "repro.store.report",
    # fleet simulation (repro.sim)
    "ScenarioSpec": "repro.sim.scenario",
    "register_scenario": "repro.sim.scenario",
    "unregister_scenario": "repro.sim.scenario",
    "get_scenario": "repro.sim.scenario",
    "available_scenarios": "repro.sim.scenario",
    "FleetSimulator": "repro.sim.fleet",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
