"""``ExperimentSpec``: a JSON-serialisable description of a full experiment.

A spec bundles the :class:`~repro.experiments.settings.ExperimentSetting`
with the run options (which algorithms, how many rounds, which selection
strategy) so an experiment can be saved to disk, reviewed, versioned and
re-run bit-identically — ``repro compare --spec spec.json`` on the CLI,
or :meth:`repro.api.session.ExperimentSession.from_spec` in code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.serialization import checked_payload
from repro.experiments.settings import ExperimentSetting

__all__ = ["ExperimentSpec"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Setting + run options; round-trips through ``to_dict``/``from_dict``."""

    setting: ExperimentSetting = field(default_factory=ExperimentSetting)
    #: algorithm names to run; empty means "every registered algorithm"
    algorithms: tuple[str, ...] = ()
    #: AdaptiveFL selection strategy (None = the paper's default "rl-cs")
    selection_strategy: str | None = None
    #: override of the scale's round count (None = use the scale preset)
    num_rounds: int | None = None
    #: where the CLI writes histories/summary (None = its --output-dir flag)
    output_dir: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        if not all(isinstance(name, str) and name for name in self.algorithms):
            raise ValueError("algorithms must be non-empty strings")
        if self.num_rounds is not None and self.num_rounds <= 0:
            raise ValueError("num_rounds must be positive when set")

    def to_dict(self) -> dict:
        """JSON-friendly representation; round-trips through :meth:`from_dict`."""
        return {
            "setting": self.setting.to_dict(),
            "algorithms": list(self.algorithms),
            "selection_strategy": self.selection_strategy,
            "num_rounds": self.num_rounds,
            "output_dir": self.output_dir,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        """Strict reconstruction of :meth:`to_dict` output (unknown keys raise)."""
        data = checked_payload(cls, payload)
        if "setting" in data:
            data["setting"] = ExperimentSetting.from_dict(data["setting"])
        return cls(**data)

    def save(self, path: str | Path) -> Path:
        """Write the spec as pretty-printed JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentSpec":
        """Read a spec back from JSON (strict: unknown keys raise)."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
