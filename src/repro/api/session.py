"""``ExperimentSession``: prepare once, run many algorithms, collect results.

The session is the stateful counterpart of the functional runner: it
lazily prepares the experiment (dataset synthesis, partitioning, device
profiles) exactly once and reuses the snapshot for every subsequent run,
so multi-algorithm comparisons and ablation sweeps are paired and avoid
N× re-preparation.  Callbacks attach builder-style and are materialised
fresh for every run when given as factories.

    session = (ExperimentSession(ExperimentSetting(model="simple_cnn"))
               .with_callback(ProgressCallback())
               .with_callback(lambda: EarlyStopping(patience=3)))
    session.compare(["heterofl", "adaptivefl"])
    session.save_results("results/")
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Callable, Iterable

from repro.api.callbacks import Callback
from repro.api.registry import available_algorithms, get_algorithm, validate_algorithm_names
from repro.api.spec import ExperimentSpec
from repro.devices.testbed import TestbedSimulator
from repro.experiments.runner import AlgorithmResult, run_algorithm
from repro.experiments.settings import ExperimentSetting, PreparedExperiment, prepare_experiment

__all__ = ["ExperimentSession"]


class ExperimentSession:
    """One prepared experiment, any number of algorithm runs on it."""

    def __init__(
        self,
        setting: ExperimentSetting | None = None,
        *,
        testbed: TestbedSimulator | None = None,
    ):
        self.setting = setting if setting is not None else ExperimentSetting()
        self.testbed = testbed
        self.spec: ExperimentSpec | None = None
        self.results: dict[str, AlgorithmResult] = {}
        self._callbacks: list[Callback | Callable[[], Callback]] = []
        self._prepared: PreparedExperiment | None = None
        self._profile = False
        self._store = None
        self._resume = False
        self._checkpoint_every = 1

    @classmethod
    def from_spec(cls, spec: ExperimentSpec | str | Path, **kwargs) -> "ExperimentSession":
        """Build a session from an :class:`ExperimentSpec` or a JSON file path."""
        if not isinstance(spec, ExperimentSpec):
            spec = ExperimentSpec.load(spec)
        session = cls(spec.setting, **kwargs)
        session.spec = spec
        return session

    # -- preparation ------------------------------------------------------------------
    @property
    def prepared(self) -> PreparedExperiment:
        """The prepared experiment, materialised on first use and cached."""
        if self._prepared is None:
            self._prepared = prepare_experiment(self.setting)
        return self._prepared

    # -- execution engine -------------------------------------------------------------
    def with_executor(self, executor: str, max_workers: int | None = None) -> "ExperimentSession":
        """Select the client-execution engine for every run of this session.

        ``executor`` is "serial" (default), "thread", "process" or
        "remote"; all of them produce bit-identical histories at a fixed
        seed, so this is purely a deployment/wall-clock knob.  Must be
        called before the first run (the executor is baked into the
        prepared experiment's federated config).
        """
        if self._prepared is not None:
            raise RuntimeError("with_executor must be called before the experiment is prepared")
        self.setting = replace(self.setting, executor=executor, max_workers=max_workers)
        if self.spec is not None:
            self.spec = replace(self.spec, setting=self.setting)
        return self

    # -- fleet scenario ---------------------------------------------------------------
    def with_scenario(self, scenario: str | None) -> "ExperimentSession":
        """Condition every run of this session on a registered fleet scenario.

        ``scenario`` is a :mod:`repro.sim` scenario name (``repro
        scenarios`` lists them) or ``None`` to turn simulation off.  Must
        be called before the first run: the scenario's device mix defines
        the prepared experiment's capacity profiles, and every algorithm
        run builds its own stateful fleet from it (batteries and
        availability churn never leak across runs, keeping comparisons
        paired).
        """
        if self._prepared is not None:
            raise RuntimeError("with_scenario must be called before the experiment is prepared")
        self.setting = replace(self.setting, scenario=scenario)
        if self.spec is not None:
            self.spec = replace(self.spec, setting=self.setting)
        return self

    # -- experiment store -------------------------------------------------------------
    def with_store(
        self,
        store,
        resume: bool = False,
        checkpoint_every: int = 1,
    ) -> "ExperimentSession":
        """Persist every subsequent run into a :class:`repro.store.RunStore`.

        ``store`` is a ready store or a directory path.  Each run writes a
        checkpoint every ``checkpoint_every`` rounds plus its final
        history, keyed by the run's canonical key.  With ``resume=True``
        a run whose key the store has already completed returns the
        stored result without training, and a partially checkpointed run
        restores its latest checkpoint and trains only the remaining
        rounds — bit-identical to the uninterrupted run.
        """
        from repro.store.runstore import RunStore

        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        self._store = store if isinstance(store, RunStore) else RunStore(store)
        self._resume = resume
        self._checkpoint_every = checkpoint_every
        return self

    @property
    def store(self):
        """The attached :class:`repro.store.RunStore` (None = not persisting)."""
        return self._store

    # -- profiling --------------------------------------------------------------------
    def with_profiling(self, enabled: bool = True) -> "ExperimentSession":
        """Collect :mod:`repro.perf` profiles (timers + transport counters)
        for every subsequent run; summaries land on
        :attr:`AlgorithmResult.profile` and in ``<label>_profile.json``."""
        self._profile = enabled
        return self

    # -- callbacks --------------------------------------------------------------------
    def with_callback(self, callback: Callback | Callable[[], Callback]) -> "ExperimentSession":
        """Attach a callback instance or a zero-arg factory (builder style).

        Factories are called once per run, so stateful callbacks such as
        :class:`~repro.api.callbacks.EarlyStopping` start fresh for every
        algorithm of a comparison.
        """
        self._callbacks.append(callback)
        return self

    # -- execution --------------------------------------------------------------------
    def run(
        self,
        algorithm: str,
        *,
        selection_strategy: str | None = None,
        num_rounds: int | None = None,
        callbacks: Iterable[Callback | Callable[[], Callback]] | None = None,
        resume: bool | None = None,
        executor: "object | None" = None,
    ) -> AlgorithmResult:
        """Run one registered algorithm on the shared prepared experiment.

        ``resume`` overrides the session-level resume policy set by
        :meth:`with_store` for this one run (it requires a store).
        ``executor`` injects a pre-built, caller-owned executor instance
        (e.g. a started :class:`~repro.serve.executor.RemoteExecutor`)
        that the run uses but never shuts down — unlike
        :meth:`with_executor`, which selects an executor *by name* for
        the algorithm to build and own.
        """
        validate_algorithm_names([algorithm])
        if resume is None:
            resume = self._resume
        if resume and self._store is None:
            raise ValueError("resume requires a store; call with_store(...) first")
        result = run_algorithm(
            algorithm,
            self.prepared,
            selection_strategy=selection_strategy,
            num_rounds=num_rounds if num_rounds is not None else self._spec_rounds(),
            testbed=self.testbed,
            callbacks=self._callbacks + list(callbacks or []),
            profile=self._profile,
            store=self._store,
            resume=resume,
            checkpoint_every=self._checkpoint_every,
            executor=executor,
        )
        self.results[result.algorithm] = result
        return result

    def compare(
        self,
        algorithms: Iterable[str] | None = None,
        *,
        num_rounds: int | None = None,
    ) -> dict[str, AlgorithmResult]:
        """Run several algorithms on the identical snapshot (paired comparison)."""
        names = validate_algorithm_names(self._resolve_algorithms(algorithms))
        return {name: self.run(name, num_rounds=num_rounds) for name in names}

    def run_spec(self) -> dict[str, AlgorithmResult]:
        """Execute the attached spec: its algorithms, rounds and strategy."""
        if self.spec is None:
            raise ValueError("session has no spec; construct it with ExperimentSession.from_spec")
        names = validate_algorithm_names(self._resolve_algorithms(self.spec.algorithms or None))
        return {
            name: self.run(name, selection_strategy=self.strategy_for(name))
            for name in names
        }

    # -- persistence ------------------------------------------------------------------
    def save_results(self, directory: str | Path) -> list[Path]:
        """Write one ``<label>_history.json`` per result plus ``summary.json``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        summary: dict[str, dict] = {}
        for label, result in self.results.items():
            safe = label.replace("/", "_")
            path = directory / f"{safe}_history.json"
            path.write_text(json.dumps(result.history.to_dict(), indent=2) + "\n", encoding="utf-8")
            written.append(path)
            if result.profile is not None:
                profile_path = directory / f"{safe}_profile.json"
                profile_path.write_text(json.dumps(result.profile, indent=2) + "\n", encoding="utf-8")
                written.append(profile_path)
            summary[label] = {
                "full_accuracy": result.full_accuracy,
                "avg_accuracy": result.avg_accuracy,
                "communication_waste": result.communication_waste,
                "rounds": len(result.history),
                "history_file": path.name,
            }
        summary_path = directory / "summary.json"
        summary_path.write_text(
            json.dumps({"setting": self.setting.to_dict(), "results": summary}, indent=2) + "\n",
            encoding="utf-8",
        )
        written.append(summary_path)
        return written

    # -- helpers ----------------------------------------------------------------------
    def _resolve_algorithms(self, algorithms: Iterable[str] | None) -> tuple[str, ...]:
        if algorithms is not None:
            return tuple(algorithms)
        if self.spec is not None and self.spec.algorithms:
            return self.spec.algorithms
        return available_algorithms()

    def _spec_rounds(self) -> int | None:
        return self.spec.num_rounds if self.spec is not None else None

    def strategy_for(self, name: str) -> str | None:
        """The spec's selection strategy, but only for algorithms that accept one."""
        if self.spec is None or self.spec.selection_strategy is None:
            return None
        return self.spec.selection_strategy if get_algorithm(name).uses_selection_strategy else None
