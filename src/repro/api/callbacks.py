"""Training-loop callbacks: the hook protocol and the shipped implementations.

:class:`Callback` defines the four hooks threaded through
:meth:`repro.core.fl_base.FederatedAlgorithm.run`:

* ``on_round_start(algorithm, round_index)`` — before ``run_round``,
* ``on_evaluate(algorithm, record)`` — after an evaluated round's record
  (accuracies filled in) has been appended to the history,
* ``on_round_end(algorithm, record)`` — after every round,
* ``on_checkpoint(algorithm, record)`` — last hook of every round, once
  the record is final (including the late evaluation an early stop
  triggers); the durable-state hook the experiment store's
  :class:`repro.store.RunRecorder` persists checkpoints from.  If a
  checkpoint callback itself requests a stop, the driver evaluates the
  record and *re-fires* ``on_checkpoint`` so durable state always saw
  the final record — it may therefore fire twice for one round, with
  the same round index (reprolint rule ``RPL008`` enforces this
  ordering statically),
* ``on_fit_end(algorithm, history)`` — once, when the loop exits (also on
  early stop).

A callback stops training by calling ``algorithm.request_stop(reason)``;
the loop finishes the current round and exits before the next one.  If
that final round was not scheduled for evaluation it is evaluated at exit
and its ``on_evaluate`` fires after ``on_round_end`` (the only deviation
from the order above), so histories always end with an evaluated record.
Shipped callbacks: :class:`ProgressCallback` (replacing the old
``progress: bool`` print), :class:`EarlyStopping`,
:class:`WallClockBudget` and :class:`JsonHistoryStreamer`.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, TextIO

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fl_base import FederatedAlgorithm
    from repro.core.history import RoundRecord, TrainingHistory

__all__ = [
    "Callback",
    "CallbackList",
    "ProgressCallback",
    "EarlyStopping",
    "WallClockBudget",
    "JsonHistoryStreamer",
]


class Callback:
    """Base class of every training callback; all hooks default to no-ops."""

    def on_round_start(self, algorithm: "FederatedAlgorithm", round_index: int) -> None:
        """Called before ``run_round(round_index)``."""

    def on_evaluate(self, algorithm: "FederatedAlgorithm", record: "RoundRecord") -> None:
        """Called after an evaluated round (record carries accuracies)."""

    def on_round_end(self, algorithm: "FederatedAlgorithm", record: "RoundRecord") -> None:
        """Called after every round, evaluated or not."""

    def on_checkpoint(self, algorithm: "FederatedAlgorithm", record: "RoundRecord") -> None:
        """Called as the last hook of every round, once the record is final.

        Unlike ``on_round_end`` this hook fires *after* the late evaluation
        an early stop can trigger, so the record it sees is exactly what
        the history keeps — the safe place to persist durable state
        (:class:`repro.store.RunRecorder` writes its checkpoints here).
        When a checkpoint callback requests a stop, the hook re-fires with
        the same (now evaluated) record; implementations must be
        idempotent per round index.
        """

    def on_fit_end(self, algorithm: "FederatedAlgorithm", history: "TrainingHistory") -> None:
        """Called once when the training loop exits."""


class CallbackList(Callback):
    """Dispatches every hook to an ordered collection of callbacks."""

    def __init__(self, callbacks: Iterable[Callback] | None = None):
        self.callbacks: list[Callback] = list(callbacks or [])

    def append(self, callback: Callback) -> None:
        """Add one callback to the end of the dispatch order."""
        self.callbacks.append(callback)

    def __len__(self) -> int:
        return len(self.callbacks)

    def on_round_start(self, algorithm: "FederatedAlgorithm", round_index: int) -> None:
        """Dispatch ``on_round_start`` to every callback, in order."""
        for callback in self.callbacks:
            callback.on_round_start(algorithm, round_index)

    def on_evaluate(self, algorithm: "FederatedAlgorithm", record: "RoundRecord") -> None:
        """Dispatch ``on_evaluate`` to every callback, in order."""
        for callback in self.callbacks:
            callback.on_evaluate(algorithm, record)

    def on_round_end(self, algorithm: "FederatedAlgorithm", record: "RoundRecord") -> None:
        """Dispatch ``on_round_end`` to every callback, in order."""
        for callback in self.callbacks:
            callback.on_round_end(algorithm, record)

    def on_checkpoint(self, algorithm: "FederatedAlgorithm", record: "RoundRecord") -> None:
        """Dispatch ``on_checkpoint`` to every callback, in order."""
        for callback in self.callbacks:
            callback.on_checkpoint(algorithm, record)

    def on_fit_end(self, algorithm: "FederatedAlgorithm", history: "TrainingHistory") -> None:
        """Dispatch ``on_fit_end`` to every callback, in order."""
        for callback in self.callbacks:
            callback.on_fit_end(algorithm, history)


class ProgressCallback(Callback):
    """Per-round console logging (the old ``progress: bool`` print, as a hook)."""

    def __init__(self, stream: TextIO | None = None, every: int = 1):
        if every <= 0:
            raise ValueError("every must be positive")
        self.stream = stream
        self.every = every

    def on_round_end(self, algorithm: "FederatedAlgorithm", record: "RoundRecord") -> None:
        """Print the round line (every ``every``-th round)."""
        if (record.round_index + 1) % self.every != 0:
            return
        total = algorithm.planned_rounds
        accuracy = f"{record.full_accuracy:.3f}" if record.full_accuracy is not None else "-"
        loss = f"{record.train_loss:.3f}" if record.train_loss is not None else "-"
        print(
            f"[{algorithm.name}] round {record.round_index + 1}/{total if total else '?'} "
            f"loss={loss} full_acc={accuracy}",
            file=self.stream or sys.stdout,
        )

    def on_fit_end(self, algorithm: "FederatedAlgorithm", history: "TrainingHistory") -> None:
        """Print the early-stop reason, if the run stopped early."""
        if algorithm.stop_reason is not None:
            print(f"[{algorithm.name}] stopped early: {algorithm.stop_reason}", file=self.stream or sys.stdout)


class EarlyStopping(Callback):
    """Stop when the monitored accuracy stops improving.

    ``monitor`` is ``"full"`` or ``"avg"``; the counter advances once per
    *evaluation* (not per round), so ``patience=3`` means three consecutive
    evaluations without an improvement larger than ``min_delta``.
    """

    def __init__(self, monitor: str = "full", patience: int = 3, min_delta: float = 0.0):
        if monitor not in {"full", "avg"}:
            raise ValueError("monitor must be 'full' or 'avg'")
        if patience <= 0:
            raise ValueError("patience must be positive")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = min_delta
        self.best: float | None = None
        self.stale_evaluations = 0

    def on_evaluate(self, algorithm: "FederatedAlgorithm", record: "RoundRecord") -> None:
        """Track the monitored accuracy; request a stop when it stalls."""
        value = record.full_accuracy if self.monitor == "full" else record.avg_accuracy
        if value is None:
            return
        if self.best is None or value > self.best + self.min_delta:
            self.best = value
            self.stale_evaluations = 0
            return
        self.stale_evaluations += 1
        if self.stale_evaluations >= self.patience:
            algorithm.request_stop(
                f"early stopping: no {self.monitor} improvement > {self.min_delta} "
                f"in {self.patience} evaluations (best {self.best:.4f})"
            )

    def on_fit_end(self, algorithm: "FederatedAlgorithm", history: "TrainingHistory") -> None:
        """Reset so a reused instance judges each run (e.g. of a comparison) afresh."""
        self.best = None
        self.stale_evaluations = 0


class WallClockBudget(Callback):
    """Stop after a wall-clock budget; the current round always completes.

    ``clock`` is injectable for tests (defaults to :func:`time.monotonic`).
    """

    def __init__(self, budget_seconds: float, clock: Callable[[], float] = time.monotonic):
        if budget_seconds <= 0:
            raise ValueError("budget_seconds must be positive")
        self.budget_seconds = budget_seconds
        self.clock = clock
        self.started_at: float | None = None

    def on_round_start(self, algorithm: "FederatedAlgorithm", round_index: int) -> None:
        """Start the budget clock on the first round."""
        if self.started_at is None:
            self.started_at = self.clock()

    def on_round_end(self, algorithm: "FederatedAlgorithm", record: "RoundRecord") -> None:
        """Request a stop once the elapsed wall-clock exceeds the budget."""
        if self.started_at is None:
            return
        elapsed = self.clock() - self.started_at
        if elapsed >= self.budget_seconds:
            algorithm.request_stop(
                f"wall-clock budget exhausted ({elapsed:.1f}s >= {self.budget_seconds:.1f}s)"
            )

    def on_fit_end(self, algorithm: "FederatedAlgorithm", history: "TrainingHistory") -> None:
        """Reset so a reused instance grants each run its own budget."""
        self.started_at = None


class JsonHistoryStreamer(Callback):
    """Stream one JSON line per round to a file (tail-able during long runs).

    The file is truncated at the first round of a run; each line is the
    round record's :meth:`~repro.core.history.RoundRecord.to_dict` plus the
    algorithm name.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._started = False

    def on_round_end(self, algorithm: "FederatedAlgorithm", record: "RoundRecord") -> None:
        """Append the round record as one JSON line (truncating on round one)."""
        mode = "a" if self._started else "w"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, mode, encoding="utf-8") as stream:
            payload = {"algorithm": algorithm.name, **record.to_dict()}
            stream.write(json.dumps(payload) + "\n")
        self._started = True
