"""Simulated real test-bed (paper §4.5, Table 5 and Figure 6).

The paper's test-bed mixes 4 Raspberry Pi 4B, 10 Jetson Nano and 3 Jetson
Xavier AGX clients plus a workstation server, trains MobileNetV2 on Widar
and reports accuracy against wall-clock time.  Without the physical
hardware, this module models each device's training throughput,
communication bandwidth and memory ceiling and turns a round of federated
training into elapsed seconds: a round costs the maximum over its
participants of (download + local compute + upload), mirroring the
synchronous FL protocol the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.profiles import DeviceClass, DeviceProfile

__all__ = [
    "TestbedDeviceSpec",
    "TESTBED_DEVICE_SPECS",
    "TestbedSimulator",
    "DEFAULT_CAPACITY_FRACTIONS",
    "split_round_seconds",
]

#: bytes per parameter (float32 on the wire)
BYTES_PER_PARAM = 4
#: backward pass costs roughly twice the forward pass
TRAIN_FLOP_MULTIPLIER = 3.0


def split_round_seconds(
    bandwidth_mbps: float,
    flops_per_second: float,
    params_down: int,
    params_up: int,
    flops_per_sample: int,
    num_samples: int,
    local_epochs: int,
) -> tuple[float, float]:
    """(communication, training) seconds of one client's synchronous round.

    The single closed-form clock of the paper's §4.5 evaluation.  Both the
    legacy :class:`TestbedSimulator` and the static path of
    :class:`repro.sim.fleet.FleetSimulator` compute through this function,
    which is what makes their ``paper_testbed`` parity structural rather
    than a convention.
    """
    bytes_total = (params_down + params_up) * BYTES_PER_PARAM
    communication = bytes_total * 8 / (bandwidth_mbps * 1e6)
    total_flops = TRAIN_FLOP_MULTIPLIER * flops_per_sample * num_samples * local_epochs
    return communication, total_flops / flops_per_second


@dataclass(frozen=True)
class TestbedDeviceSpec:
    """Latency/capacity model of one physical device type.

    ``flops_per_second`` is effective training throughput (forward+backward
    MACs per second), ``bandwidth_mbps`` the link to the server and
    ``memory_gb`` the ceiling that limits trainable model size.
    """

    name: str
    device_class: str
    flops_per_second: float
    bandwidth_mbps: float
    memory_gb: float
    count: int

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0 or self.bandwidth_mbps <= 0 or self.memory_gb <= 0:
            raise ValueError("device spec values must be positive")
        if self.count <= 0:
            raise ValueError("device count must be positive")


#: capacity fraction of the full model each device class can train
#: (shared with the fleet simulator's profile construction)
DEFAULT_CAPACITY_FRACTIONS: dict[str, float] = {"weak": 0.30, "medium": 0.55, "strong": 1.0}

#: Table 5 of the paper, with throughput figures representative of the
#: listed hardware (effective sustained training throughput, not peak).
TESTBED_DEVICE_SPECS: tuple[TestbedDeviceSpec, ...] = (
    TestbedDeviceSpec("raspberry_pi_4b", "weak", flops_per_second=6.0e8, bandwidth_mbps=40.0, memory_gb=2.0, count=4),
    TestbedDeviceSpec("jetson_nano", "medium", flops_per_second=6.0e9, bandwidth_mbps=80.0, memory_gb=8.0, count=10),
    TestbedDeviceSpec("jetson_xavier_agx", "strong", flops_per_second=4.0e10, bandwidth_mbps=200.0, memory_gb=32.0, count=3),
)


class TestbedSimulator:
    """Wall-clock model of the paper's 17-device test-bed."""

    #: not a pytest test class despite the name
    __test__ = False

    #: bytes per parameter (kept as class attributes for compatibility)
    BYTES_PER_PARAM = BYTES_PER_PARAM
    #: backward pass costs roughly twice the forward pass
    TRAIN_FLOP_MULTIPLIER = TRAIN_FLOP_MULTIPLIER

    def __init__(
        self,
        specs: tuple[TestbedDeviceSpec, ...] = TESTBED_DEVICE_SPECS,
        capacity_fractions: dict[str, float] | None = None,
        seed: int = 0,
    ):
        self.specs = tuple(specs)
        self.capacity_fractions = capacity_fractions or dict(DEFAULT_CAPACITY_FRACTIONS)
        self.seed = seed
        self._device_specs: list[TestbedDeviceSpec] = []
        for spec in self.specs:
            self._device_specs.extend([spec] * spec.count)

    @property
    def num_devices(self) -> int:
        return len(self._device_specs)

    def device_spec(self, client_id: int) -> TestbedDeviceSpec:
        """The hardware spec backing one client."""
        return self._device_specs[client_id]

    def build_profiles(self, rng: np.random.Generator | None = None) -> list[DeviceProfile]:
        """Device profiles (weak/medium/strong) matching the test-bed mix."""
        order = np.arange(self.num_devices)
        if rng is not None:
            order = rng.permutation(self.num_devices)
        profiles = []
        for client_id, spec_index in enumerate(order):
            spec = self._device_specs[spec_index]
            device_class = DeviceClass(
                name=spec.device_class,
                capacity_fraction=self.capacity_fractions[spec.device_class],
                compute_speed=spec.flops_per_second / self.specs[-1].flops_per_second,
                memory_gb=spec.memory_gb,
            )
            profiles.append(DeviceProfile(client_id=client_id, device_class=device_class))
        self._profile_spec_order = [self._device_specs[i] for i in order]
        return profiles

    def _spec_for_profile(self, client_id: int) -> TestbedDeviceSpec:
        order = getattr(self, "_profile_spec_order", None)
        if order is None:
            return self._device_specs[client_id]
        return order[client_id]

    # -- timing -------------------------------------------------------------------
    def communication_time(self, client_id: int, params_down: int, params_up: int) -> float:
        """Seconds to download the dispatched model and upload the trained one."""
        spec = self._spec_for_profile(client_id)
        communication, _ = split_round_seconds(
            spec.bandwidth_mbps, spec.flops_per_second, params_down, params_up, 0, 0, 0
        )
        return communication

    def training_time(self, client_id: int, flops_per_sample: int, num_samples: int, local_epochs: int) -> float:
        """Seconds of local training for one round."""
        spec = self._spec_for_profile(client_id)
        _, training = split_round_seconds(
            spec.bandwidth_mbps, spec.flops_per_second, 0, 0, flops_per_sample, num_samples, local_epochs
        )
        return training

    def client_round_time(
        self,
        client_id: int,
        params_down: int,
        params_up: int,
        flops_per_sample: int,
        num_samples: int,
        local_epochs: int,
    ) -> float:
        """End-to-end time one client spends in a round."""
        return self.communication_time(client_id, params_down, params_up) + self.training_time(
            client_id, flops_per_sample, num_samples, local_epochs
        )

    def round_time(self, client_times: list[float]) -> float:
        """Synchronous-round duration: the slowest selected client."""
        if not client_times:
            return 0.0
        return float(max(client_times))
