"""Static device capacity classes and client-to-class assignment.

The paper's simulation uses three device classes — weak devices can only
train small (S-level) models, medium devices can train medium or small
models, and strong devices can train any model — mixed in a configurable
proportion (4:3:3 by default, swept in Table 3).  Capacities are expressed
as a fraction of the full global model's parameter count so the same
classes work for every architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DeviceClass",
    "DeviceProfile",
    "DEFAULT_DEVICE_CLASSES",
    "parse_proportion",
    "assign_device_classes",
    "build_device_profiles",
]


@dataclass(frozen=True)
class DeviceClass:
    """A capacity class of AIoT devices.

    ``capacity_fraction`` bounds the largest model (as a fraction of the
    full global model's parameters) the device can train;
    ``compute_speed`` is a relative throughput used by time-based
    simulations (1.0 = workstation-class).
    """

    name: str
    capacity_fraction: float
    compute_speed: float = 1.0
    memory_gb: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.capacity_fraction:
            raise ValueError("capacity_fraction must be positive")
        if self.compute_speed <= 0:
            raise ValueError("compute_speed must be positive")


#: Default classes: weak devices fit the S-level models (≤ ~0.25× the full
#: model), medium devices fit the M-level models (≤ ~0.5×), strong devices
#: fit everything.  The fractions sit halfway between the level sizes of
#: Table 1 so the fine-grained (I-adjusted) variants discriminate devices.
DEFAULT_DEVICE_CLASSES: dict[str, DeviceClass] = {
    "weak": DeviceClass("weak", capacity_fraction=0.30, compute_speed=0.12, memory_gb=2.0),
    "medium": DeviceClass("medium", capacity_fraction=0.55, compute_speed=0.35, memory_gb=8.0),
    "strong": DeviceClass("strong", capacity_fraction=1.00, compute_speed=1.0, memory_gb=32.0),
}


@dataclass(frozen=True)
class DeviceProfile:
    """One client's static device profile."""

    client_id: int
    device_class: DeviceClass

    @property
    def class_name(self) -> str:
        return self.device_class.name

    def nominal_capacity(self, full_model_params: int) -> float:
        """Largest parameter count this device can nominally train."""
        return self.device_class.capacity_fraction * full_model_params


def parse_proportion(proportion: str | tuple[float, float, float]) -> tuple[float, float, float]:
    """Parse a weak:medium:strong mix such as ``"4:3:3"`` into fractions."""
    if isinstance(proportion, str):
        parts = [float(piece) for piece in proportion.split(":")]
    else:
        parts = [float(piece) for piece in proportion]
    if len(parts) != 3:
        raise ValueError("proportion needs exactly three entries (weak:medium:strong)")
    if any(part < 0 for part in parts) or sum(parts) <= 0:
        raise ValueError("proportion entries must be non-negative and not all zero")
    total = sum(parts)
    return tuple(part / total for part in parts)  # type: ignore[return-value]


def assign_device_classes(
    num_clients: int,
    proportion: str | tuple[float, float, float] = "4:3:3",
    rng: np.random.Generator | None = None,
    classes: dict[str, DeviceClass] | None = None,
) -> list[DeviceClass]:
    """Assign a device class to every client following the given proportion.

    Counts are apportioned deterministically (largest remainder) and the
    class order is shuffled with ``rng`` so class membership is not
    correlated with client id.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    classes = classes if classes is not None else DEFAULT_DEVICE_CLASSES
    weak_frac, medium_frac, strong_frac = parse_proportion(proportion)
    fractions = {"weak": weak_frac, "medium": medium_frac, "strong": strong_frac}

    exact = {name: fraction * num_clients for name, fraction in fractions.items()}
    counts = {name: int(np.floor(value)) for name, value in exact.items()}
    remainder = num_clients - sum(counts.values())
    by_fraction = sorted(exact, key=lambda name: exact[name] - counts[name], reverse=True)
    for name in by_fraction[:remainder]:
        counts[name] += 1

    assigned: list[DeviceClass] = []
    for name in ("weak", "medium", "strong"):
        assigned.extend([classes[name]] * counts[name])
    if rng is not None:
        order = rng.permutation(len(assigned))
        assigned = [assigned[index] for index in order]
    return assigned


def build_device_profiles(
    num_clients: int,
    proportion: str | tuple[float, float, float] = "4:3:3",
    rng: np.random.Generator | None = None,
    classes: dict[str, DeviceClass] | None = None,
) -> list[DeviceProfile]:
    """Create one :class:`DeviceProfile` per client."""
    assigned = assign_device_classes(num_clients, proportion, rng, classes)
    return [DeviceProfile(client_id=index, device_class=cls) for index, cls in enumerate(assigned)]
