"""Dynamic available-resource models.

The paper motivates AdaptiveFL with "uncertain operating environments"
whose available resources change on the fly.  :class:`ResourceModel`
produces, for every (client, round) pair, the capacity actually available
for local training: the device's nominal class capacity scaled by a
truncated-Gaussian fluctuation.  The draw is keyed on (seed, client,
round) so it is reproducible and independent of evaluation order.
Conceptually this is device-side information the real server never
observes; in the simulation the value feeds the simulated device's
resource-aware pruning — both when the client trains and when AdaptiveFL's
planning phase predicts that same pruning outcome to update its RL tables
before training fans out (see ``AdaptiveFL.run_round``).  No algorithm may
use it to steer client *selection*.
"""

from __future__ import annotations

import numpy as np

from repro.devices.profiles import DeviceProfile

__all__ = ["ResourceModel", "StaticResourceModel"]


class ResourceModel:
    """Per-round available capacity with multiplicative uncertainty."""

    def __init__(
        self,
        profiles: list[DeviceProfile],
        full_model_params: int,
        uncertainty: float = 0.1,
        floor_fraction: float = 0.5,
        ceiling_fraction: float = 1.1,
        seed: int = 0,
    ):
        if full_model_params <= 0:
            raise ValueError("full_model_params must be positive")
        if uncertainty < 0:
            raise ValueError("uncertainty must be non-negative")
        if not 0 < floor_fraction <= ceiling_fraction:
            raise ValueError("need 0 < floor_fraction <= ceiling_fraction")
        self.profiles = list(profiles)
        self.full_model_params = int(full_model_params)
        self.uncertainty = uncertainty
        self.floor_fraction = floor_fraction
        self.ceiling_fraction = ceiling_fraction
        self.seed = seed

    @property
    def num_clients(self) -> int:
        return len(self.profiles)

    def nominal_capacity(self, client_id: int) -> float:
        """Capacity of the client's device class without fluctuation."""
        return self.profiles[client_id].nominal_capacity(self.full_model_params)

    def _fluctuation(self, client_id: int, round_index: int) -> float:
        if self.uncertainty == 0:
            return 1.0
        rng = np.random.default_rng((self.seed, client_id, round_index))
        draw = 1.0 + self.uncertainty * rng.standard_normal()
        return float(np.clip(draw, self.floor_fraction, self.ceiling_fraction))

    def available_capacity(self, client_id: int, round_index: int) -> float:
        """Parameter budget available to ``client_id`` during ``round_index``."""
        if not 0 <= client_id < self.num_clients:
            raise IndexError(f"client_id {client_id} out of range")
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        return self.nominal_capacity(client_id) * self._fluctuation(client_id, round_index)

    def capacity_matrix(self, round_index: int) -> np.ndarray:
        """Available capacity of every client for one round (testing aid)."""
        return np.array([self.available_capacity(c, round_index) for c in range(self.num_clients)])


class StaticResourceModel(ResourceModel):
    """A :class:`ResourceModel` without fluctuation (ablation / unit tests)."""

    def __init__(self, profiles: list[DeviceProfile], full_model_params: int):
        super().__init__(profiles, full_model_params, uncertainty=0.0)
