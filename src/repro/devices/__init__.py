"""Device heterogeneity substrate.

Models the three aspects of AIoT device heterogeneity the paper evaluates
against:

* static capacity classes (weak / medium / strong devices and their mixing
  proportions, §4.1 "Device Heterogeneity Settings"),
* dynamic resource uncertainty (available capacity fluctuating from round
  to round, motivating AdaptiveFL's on-device adaptive pruning),
* the real test-bed of §4.5 (Raspberry Pi 4B / Jetson Nano / Jetson Xavier
  AGX), reproduced here as a latency + memory model driving a wall-clock
  simulation.
"""

from repro.devices.profiles import (
    DEFAULT_DEVICE_CLASSES,
    DeviceClass,
    DeviceProfile,
    assign_device_classes,
    build_device_profiles,
    parse_proportion,
)
from repro.devices.resources import ResourceModel, StaticResourceModel
from repro.devices.testbed import TESTBED_DEVICE_SPECS, TestbedDeviceSpec, TestbedSimulator

__all__ = [
    "DeviceClass",
    "DeviceProfile",
    "DEFAULT_DEVICE_CLASSES",
    "assign_device_classes",
    "build_device_profiles",
    "parse_proportion",
    "ResourceModel",
    "StaticResourceModel",
    "TestbedDeviceSpec",
    "TESTBED_DEVICE_SPECS",
    "TestbedSimulator",
]
