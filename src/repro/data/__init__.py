"""Federated data substrate: synthetic datasets, partitioners and loaders.

The paper evaluates on CIFAR-10, CIFAR-100, FEMNIST and Widar.  This
environment has no network access, so the package provides *synthetic*
generators with matched tensor shapes, class counts and federated
structure (Dirichlet non-IID for CIFAR, natural per-writer non-IID for
FEMNIST, per-user non-IID for Widar).  See DESIGN.md §2 for the
substitution rationale.
"""

from repro.data.datasets import (
    Dataset,
    SyntheticTaskConfig,
    make_cifar10_like,
    make_cifar100_like,
    make_femnist_like,
    make_widar_like,
    synthesize_classification_task,
)
from repro.data.loader import DataLoader
from repro.data.partition import (
    ClientPartition,
    dirichlet_partition,
    iid_partition,
    natural_partition,
    partition_dataset,
)
from repro.data.transforms import normalize, add_gaussian_noise, random_crop_shift

__all__ = [
    "Dataset",
    "SyntheticTaskConfig",
    "synthesize_classification_task",
    "make_cifar10_like",
    "make_cifar100_like",
    "make_femnist_like",
    "make_widar_like",
    "DataLoader",
    "ClientPartition",
    "iid_partition",
    "dirichlet_partition",
    "natural_partition",
    "partition_dataset",
    "normalize",
    "add_gaussian_noise",
    "random_crop_shift",
]
