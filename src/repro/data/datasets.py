"""Synthetic federated image-classification datasets.

Each generator produces a class-conditional mixture task: every class owns
a handful of smooth spatial "prototype" patterns (low-frequency random
fields), and samples are noisy views of a prototype.  The difficulty is
controlled by the number of clusters per class, the within-class noise and
the label-noise rate, so models of different capacity — and FL methods
with different aggregation quality — separate in accuracy the same way
they do on the real datasets.

Generators mirror the datasets of the paper:

* :func:`make_cifar10_like` — 3-channel, 10 classes (CIFAR-10 stand-in),
* :func:`make_cifar100_like` — 3-channel, 100 classes (CIFAR-100 stand-in),
* :func:`make_femnist_like` — 1-channel, 62 classes with per-writer styles
  (FEMNIST stand-in, naturally non-IID),
* :func:`make_widar_like` — 1-channel, 22 gesture classes with per-user
  styles (Widar CSI stand-in for the test-bed experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.nn.dtype import resolve_dtype

__all__ = [
    "Dataset",
    "SyntheticTaskConfig",
    "synthesize_classification_task",
    "make_cifar10_like",
    "make_cifar100_like",
    "make_femnist_like",
    "make_widar_like",
]


class Dataset:
    """An in-memory classification dataset (NCHW images + integer labels).

    ``groups`` optionally carries a per-sample group identifier (writer or
    user id) used by the natural non-IID partitioner.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray, num_classes: int, groups: np.ndarray | None = None):
        images = np.asarray(images, dtype=resolve_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        if images.ndim != 4:
            raise ValueError(f"images must be NCHW, got shape {images.shape}")
        if labels.shape != (images.shape[0],):
            raise ValueError("labels must be a vector aligned with images")
        if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
            raise ValueError("labels out of range")
        if groups is not None:
            groups = np.asarray(groups, dtype=np.int64)
            if groups.shape != labels.shape:
                raise ValueError("groups must align with labels")
        self.images = images
        self.labels = labels
        self.num_classes = int(num_classes)
        self.groups = groups

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def input_shape(self) -> tuple[int, int, int]:
        return tuple(self.images.shape[1:])

    def subset(self, indices: np.ndarray) -> "Dataset":
        """New dataset restricted to ``indices`` (copy-on-slice)."""
        indices = np.asarray(indices, dtype=np.int64)
        groups = self.groups[indices] if self.groups is not None else None
        return Dataset(self.images[indices], self.labels[indices], self.num_classes, groups)

    def class_counts(self) -> np.ndarray:
        """Histogram of labels over the ``num_classes`` classes."""
        return np.bincount(self.labels, minlength=self.num_classes)


@dataclass(frozen=True)
class SyntheticTaskConfig:
    """Parameters of one synthetic classification task."""

    num_classes: int
    input_shape: tuple[int, int, int]
    train_samples: int
    test_samples: int
    clusters_per_class: int = 3
    prototype_scale: float = 1.0
    noise_std: float = 0.6
    label_noise: float = 0.02
    smoothness: int = 4
    seed: int = 0
    #: number of style groups (writers/users); 0 disables style structure
    num_groups: int = 0
    group_style_std: float = 0.35

    def __post_init__(self) -> None:
        if self.num_classes <= 1:
            raise ValueError("num_classes must be at least 2")
        if self.train_samples <= 0 or self.test_samples <= 0:
            raise ValueError("sample counts must be positive")
        if not 0.0 <= self.label_noise < 0.5:
            raise ValueError("label_noise must be in [0, 0.5)")
        if self.clusters_per_class <= 0:
            raise ValueError("clusters_per_class must be positive")
        if self.smoothness <= 0:
            raise ValueError("smoothness must be positive")


def _smooth_field(rng: np.random.Generator, shape: tuple[int, int, int], smoothness: int) -> np.ndarray:
    """A spatially smooth random pattern (coarse noise upsampled)."""
    channels, height, width = shape
    coarse_h = max(1, -(-height // smoothness))
    coarse_w = max(1, -(-width // smoothness))
    coarse = rng.normal(size=(channels, coarse_h, coarse_w))
    up = np.kron(coarse, np.ones((1, smoothness, smoothness)))
    return up[:, :height, :width]


def _generate_prototypes(rng: np.random.Generator, config: SyntheticTaskConfig) -> np.ndarray:
    """Prototype bank of shape (classes, clusters, C, H, W)."""
    bank = np.empty((config.num_classes, config.clusters_per_class, *config.input_shape))
    for cls in range(config.num_classes):
        for cluster in range(config.clusters_per_class):
            bank[cls, cluster] = config.prototype_scale * _smooth_field(rng, config.input_shape, config.smoothness)
    return bank


def _generate_group_styles(rng: np.random.Generator, config: SyntheticTaskConfig) -> np.ndarray | None:
    """Per-group additive style fields, or None when groups are disabled."""
    if config.num_groups <= 0:
        return None
    styles = np.empty((config.num_groups, *config.input_shape))
    for group in range(config.num_groups):
        styles[group] = config.group_style_std * _smooth_field(rng, config.input_shape, config.smoothness)
    return styles


def _sample_split(
    rng: np.random.Generator,
    config: SyntheticTaskConfig,
    prototypes: np.ndarray,
    styles: np.ndarray | None,
    count: int,
) -> Dataset:
    labels = rng.integers(0, config.num_classes, size=count)
    clusters = rng.integers(0, config.clusters_per_class, size=count)
    groups = rng.integers(0, config.num_groups, size=count) if styles is not None else None

    images = prototypes[labels, clusters].copy()
    if styles is not None:
        images += styles[groups]
    images += config.noise_std * rng.normal(size=images.shape)

    if config.label_noise > 0:
        flip = rng.random(count) < config.label_noise
        noisy = rng.integers(0, config.num_classes, size=count)
        labels = np.where(flip, noisy, labels)
    return Dataset(images, labels, config.num_classes, groups)


def synthesize_classification_task(config: SyntheticTaskConfig) -> tuple[Dataset, Dataset]:
    """Generate a (train, test) pair from one task configuration.

    Train and test are drawn from the same prototype bank (and the same
    group styles) so test accuracy measures genuine generalisation over the
    noise, not memorisation of distinct distributions.
    """
    rng = np.random.default_rng(config.seed)
    prototypes = _generate_prototypes(rng, config)
    styles = _generate_group_styles(rng, config)
    train = _sample_split(rng, config, prototypes, styles, config.train_samples)
    test = _sample_split(rng, config, prototypes, styles, config.test_samples)
    return train, test


def make_cifar10_like(
    train_samples: int = 50_000,
    test_samples: int = 10_000,
    image_size: int = 32,
    seed: int = 0,
    **overrides,
) -> tuple[Dataset, Dataset]:
    """CIFAR-10 stand-in: 3-channel colour images, 10 classes."""
    config = SyntheticTaskConfig(
        num_classes=10,
        input_shape=(3, image_size, image_size),
        train_samples=train_samples,
        test_samples=test_samples,
        clusters_per_class=3,
        noise_std=0.7,
        label_noise=0.02,
        seed=seed,
    )
    config = replace(config, **overrides)
    return synthesize_classification_task(config)


def make_cifar100_like(
    train_samples: int = 50_000,
    test_samples: int = 10_000,
    image_size: int = 32,
    seed: int = 0,
    **overrides,
) -> tuple[Dataset, Dataset]:
    """CIFAR-100 stand-in: 3-channel colour images, 100 classes (harder task)."""
    config = SyntheticTaskConfig(
        num_classes=100,
        input_shape=(3, image_size, image_size),
        train_samples=train_samples,
        test_samples=test_samples,
        clusters_per_class=2,
        noise_std=0.9,
        label_noise=0.02,
        seed=seed,
    )
    config = replace(config, **overrides)
    return synthesize_classification_task(config)


def make_femnist_like(
    num_writers: int = 180,
    train_samples: int = 40_000,
    test_samples: int = 8_000,
    image_size: int = 28,
    num_classes: int = 62,
    seed: int = 0,
    **overrides,
) -> tuple[Dataset, Dataset]:
    """FEMNIST stand-in: grayscale characters with per-writer style shifts.

    The per-writer additive style plus the writer-grouped partitioner
    reproduces FEMNIST's "naturally non-IID" federated structure.
    """
    config = SyntheticTaskConfig(
        num_classes=num_classes,
        input_shape=(1, image_size, image_size),
        train_samples=train_samples,
        test_samples=test_samples,
        clusters_per_class=2,
        noise_std=0.6,
        label_noise=0.01,
        num_groups=num_writers,
        group_style_std=0.5,
        seed=seed,
    )
    config = replace(config, **overrides)
    return synthesize_classification_task(config)


def make_widar_like(
    num_users: int = 17,
    train_samples: int = 8_000,
    test_samples: int = 2_000,
    image_size: int = 32,
    num_classes: int = 22,
    seed: int = 0,
    **overrides,
) -> tuple[Dataset, Dataset]:
    """Widar stand-in: single-channel CSI "spectrograms", 22 gesture classes.

    Used by the simulated real-test-bed experiment (Figure 6); the per-user
    styles make the federated partition naturally non-IID, as in FedAIoT.
    """
    config = SyntheticTaskConfig(
        num_classes=num_classes,
        input_shape=(1, image_size, image_size),
        train_samples=train_samples,
        test_samples=test_samples,
        clusters_per_class=2,
        noise_std=0.8,
        label_noise=0.02,
        num_groups=num_users,
        group_style_std=0.45,
        seed=seed,
    )
    config = replace(config, **overrides)
    return synthesize_classification_task(config)
