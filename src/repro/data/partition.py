"""Federated partitioning of a dataset across clients.

Implements the three partition schemes used in the paper's evaluation:

* IID — samples are shuffled and dealt evenly,
* Dirichlet non-IID — per-class sample proportions across clients are drawn
  from Dir(α); smaller α means more heterogeneity (the paper uses α ∈
  {0.6, 0.3}),
* natural — samples are grouped by their generator group id (FEMNIST
  writers, Widar users), one or more groups per client.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset

__all__ = [
    "ClientPartition",
    "iid_partition",
    "dirichlet_partition",
    "natural_partition",
    "partition_dataset",
]


@dataclass
class ClientPartition:
    """Index sets assigning every training sample to exactly one client."""

    client_indices: list[np.ndarray]

    def __post_init__(self) -> None:
        if not self.client_indices:
            raise ValueError("partition needs at least one client")
        self.client_indices = [np.asarray(idx, dtype=np.int64) for idx in self.client_indices]

    @property
    def num_clients(self) -> int:
        return len(self.client_indices)

    def sizes(self) -> list[int]:
        """Number of samples held by each client."""
        return [int(idx.size) for idx in self.client_indices]

    def client_dataset(self, dataset: Dataset, client: int) -> Dataset:
        """Materialise the local dataset of one client."""
        return dataset.subset(self.client_indices[client])

    def label_distribution(self, dataset: Dataset) -> np.ndarray:
        """Per-client class histograms, shape (clients, classes)."""
        table = np.zeros((self.num_clients, dataset.num_classes), dtype=np.int64)
        for client, indices in enumerate(self.client_indices):
            table[client] = np.bincount(dataset.labels[indices], minlength=dataset.num_classes)
        return table

    def validate(self, dataset: Dataset, require_disjoint: bool = True) -> None:
        """Check all indices are in range and (optionally) disjoint."""
        seen = np.zeros(len(dataset), dtype=bool)
        for indices in self.client_indices:
            if indices.size and (indices.min() < 0 or indices.max() >= len(dataset)):
                raise ValueError("partition index out of range")
            if require_disjoint and seen[indices].any():
                raise ValueError("partition assigns a sample to multiple clients")
            seen[indices] = True


def iid_partition(dataset: Dataset, num_clients: int, rng: np.random.Generator) -> ClientPartition:
    """Shuffle the dataset and deal samples evenly to ``num_clients``."""
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    order = rng.permutation(len(dataset))
    return ClientPartition([np.sort(chunk) for chunk in np.array_split(order, num_clients)])


def dirichlet_partition(
    dataset: Dataset,
    num_clients: int,
    alpha: float,
    rng: np.random.Generator,
    min_samples_per_client: int = 2,
    max_retries: int = 50,
) -> ClientPartition:
    """Label-skewed partition with per-class Dirichlet(α) client proportions.

    Retries the draw until every client holds at least
    ``min_samples_per_client`` samples so that local training is always
    possible (standard practice in heterogeneous-FL implementations).
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    labels = dataset.labels
    for _ in range(max_retries):
        buckets: list[list[np.ndarray]] = [[] for _ in range(num_clients)]
        for cls in range(dataset.num_classes):
            class_indices = np.flatnonzero(labels == cls)
            if class_indices.size == 0:
                continue
            rng.shuffle(class_indices)
            proportions = rng.dirichlet(np.full(num_clients, alpha))
            cuts = (np.cumsum(proportions)[:-1] * class_indices.size).astype(np.int64)
            for client, chunk in enumerate(np.split(class_indices, cuts)):
                buckets[client].append(chunk)
        assignments = [
            np.sort(np.concatenate(chunks)) if chunks else np.empty(0, dtype=np.int64) for chunks in buckets
        ]
        if min(idx.size for idx in assignments) >= min_samples_per_client:
            return ClientPartition(assignments)
    raise RuntimeError(
        f"could not draw a Dirichlet(alpha={alpha}) partition giving every one of the "
        f"{num_clients} clients at least {min_samples_per_client} samples"
    )


def natural_partition(dataset: Dataset, num_clients: int, rng: np.random.Generator) -> ClientPartition:
    """Group-by-writer/user partition for naturally non-IID datasets.

    Each generator group is assigned wholly to one client; groups are
    spread round-robin after a random shuffle, so ``num_clients`` may be
    smaller than or equal to the number of groups.
    """
    if dataset.groups is None:
        raise ValueError("dataset has no group ids; use iid_partition or dirichlet_partition")
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    unique_groups = np.unique(dataset.groups)
    if num_clients > unique_groups.size:
        raise ValueError(
            f"cannot spread {unique_groups.size} natural groups over {num_clients} clients"
        )
    shuffled = unique_groups.copy()
    rng.shuffle(shuffled)
    buckets: list[list[np.ndarray]] = [[] for _ in range(num_clients)]
    for position, group in enumerate(shuffled):
        buckets[position % num_clients].append(np.flatnonzero(dataset.groups == group))
    return ClientPartition([np.sort(np.concatenate(chunks)) for chunks in buckets])


def partition_dataset(
    dataset: Dataset,
    num_clients: int,
    scheme: str,
    rng: np.random.Generator,
    alpha: float | None = None,
) -> ClientPartition:
    """Dispatch on a scheme name: ``"iid"``, ``"dirichlet"`` or ``"natural"``."""
    if scheme == "iid":
        return iid_partition(dataset, num_clients, rng)
    if scheme == "dirichlet":
        if alpha is None:
            raise ValueError("dirichlet partitioning requires alpha")
        return dirichlet_partition(dataset, num_clients, alpha, rng)
    if scheme == "natural":
        return natural_partition(dataset, num_clients, rng)
    raise ValueError(f"unknown partition scheme {scheme!r}")
