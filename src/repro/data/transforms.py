"""Simple input transforms (normalisation and light augmentation)."""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import resolve_dtype

__all__ = ["normalize", "add_gaussian_noise", "random_crop_shift"]


def normalize(images: np.ndarray, mean: float | None = None, std: float | None = None) -> np.ndarray:
    """Standardise images to zero mean / unit variance (or given statistics)."""
    images = np.asarray(images, dtype=resolve_dtype())
    mean = float(images.mean()) if mean is None else mean
    std = float(images.std()) if std is None else std
    if std <= 0:
        raise ValueError("std must be positive")
    return (images - mean) / std


def add_gaussian_noise(images: np.ndarray, std: float, rng: np.random.Generator) -> np.ndarray:
    """Additive Gaussian noise augmentation."""
    if std < 0:
        raise ValueError("std must be non-negative")
    if std == 0:
        return images.copy()
    # the float64 noise draw must not promote a float32 image stack
    return (images + std * rng.normal(size=images.shape)).astype(images.dtype, copy=False)


def random_crop_shift(images: np.ndarray, max_shift: int, rng: np.random.Generator) -> np.ndarray:
    """Random spatial shift with zero padding (cheap crop-style augmentation)."""
    if max_shift < 0:
        raise ValueError("max_shift must be non-negative")
    if max_shift == 0:
        return images.copy()
    n, c, h, w = images.shape
    out = np.zeros_like(images)
    shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
    for index in range(n):
        dy, dx = int(shifts[index, 0]), int(shifts[index, 1])
        src_y = slice(max(0, -dy), min(h, h - dy))
        src_x = slice(max(0, -dx), min(w, w - dx))
        dst_y = slice(max(0, dy), min(h, h + dy))
        dst_x = slice(max(0, dx), min(w, w + dx))
        out[index, :, dst_y, dst_x] = images[index, :, src_y, src_x]
    return out
