"""Mini-batch iteration over in-memory datasets."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.datasets import Dataset

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate a :class:`Dataset` in shuffled (or ordered) mini-batches.

    The paper's local-training setup uses batch size 50; the loader keeps
    the final short batch (``drop_last=False``) so small clients still see
    all of their data.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 50,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: np.random.Generator | None = None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        count = len(self.dataset)
        order = self._rng.permutation(count) if self.shuffle else np.arange(count)
        limit = count - (count % self.batch_size) if self.drop_last else count
        for start in range(0, limit, self.batch_size):
            batch = order[start : start + self.batch_size]
            if batch.size == 0:
                continue
            yield self.dataset.images[batch], self.dataset.labels[batch]
