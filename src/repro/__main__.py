"""``python -m repro`` — delegate to the :mod:`repro.api.cli` entry point."""

from repro.api.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
