"""Heterogeneous model aggregation (Algorithm 2 of the paper).

Because every submodel keeps prefix blocks of the global tensors, the
aggregation reduces to element-wise weighted averaging with per-element
coverage bookkeeping: an element of the global model is replaced by the
data-size-weighted mean of the uploads that contain it, and keeps its old
value if no upload covers it (Algorithm 2, line 14).

Aggregation is a per-round hot path, so the heavy lifting lives in
:class:`HeterogeneousAggregator`, which owns reusable accumulation
buffers (weighted sums, per-element weight totals, coverage masks and a
scatter scratch) sized to the global state and zeroed — never
reallocated — every round, plus a cache of the prefix-slice regions per
upload shape.  The module-level :func:`aggregate_heterogeneous` keeps
the historical one-shot API on top of a throwaway aggregator.

All arithmetic preserves the dtype of the global state: a ``float32``
training stack aggregates in ``float32`` end-to-end (no silent
``float64`` promotion), while tests that feed ``float64`` states keep
double precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "ClientUpdate",
    "HeterogeneousAggregator",
    "aggregate_heterogeneous",
    "fedavg_aggregate",
]


@dataclass
class ClientUpdate:
    """One uploaded submodel: its state dict and the client's data size."""

    state: Mapping[str, np.ndarray]
    num_samples: int

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")


class HeterogeneousAggregator:
    """Reusable-buffer engine for prefix-overlap weighted averaging.

    One instance serves one global-state *signature* (names, shapes,
    dtypes) — exactly the lifetime of a federated algorithm, which owns
    one.  Buffers are allocated on first use and reused across rounds;
    a change of shape or dtype for a name transparently reallocates.
    """

    def __init__(self) -> None:
        # name -> (accumulator, weight_sum, scratch, coverage mask)
        self._buffers: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
        # (name, upload shape) -> prefix-slice region
        self._regions: dict[tuple[str, tuple[int, ...]], tuple[slice, ...]] = {}
        # open streaming round: the global state being aggregated into, or None
        self._round_state: dict[str, np.ndarray] | None = None

    def _buffers_for(self, name: str, reference: np.ndarray):
        cached = self._buffers.get(name)
        if cached is None or cached[0].shape != reference.shape or cached[0].dtype != reference.dtype:
            cached = (
                np.zeros_like(reference),
                np.zeros_like(reference),
                np.empty_like(reference),
                np.zeros(reference.shape, dtype=bool),
            )
            self._buffers[name] = cached
        else:
            cached[0].fill(0)
            cached[1].fill(0)
        return cached

    def region_for(self, name: str, full_shape: tuple[int, ...], upload_shape: tuple[int, ...]) -> tuple[slice, ...]:
        """The (cached) prefix region an upload of ``upload_shape`` covers."""
        key = (name, upload_shape)
        region = self._regions.get(key)
        if region is None:
            if len(upload_shape) != len(full_shape) or any(
                extent > full for extent, full in zip(upload_shape, full_shape)
            ):
                raise ValueError(
                    f"upload for {name!r} with shape {upload_shape} is not a prefix of {full_shape}"
                )
            region = tuple(slice(0, extent) for extent in upload_shape)
            self._regions[key] = region
        return region

    # -- streaming rounds ------------------------------------------------------------
    def begin_round(self, global_state: Mapping[str, np.ndarray]) -> None:
        """Open a streaming round: zero the accumulation buffers.

        The memory-bounded entry point for fleet-scale rounds: feed
        uploads one at a time with :meth:`add` (each can be decoded,
        accumulated and dropped before the next exists) and close with
        :meth:`finalize`.  Peak RSS holds one upload plus the reused
        buffers — never all client deltas at once.
        """
        if self._round_state is not None:
            raise RuntimeError("begin_round called while a streaming round is already open")
        state = {name: np.asarray(value) for name, value in global_state.items()}
        for name, old_value in state.items():
            self._buffers_for(name, old_value)
        self._round_state = state

    def add(self, update: ClientUpdate) -> None:
        """Accumulate one upload into the open round's partial sums.

        Per (name, element) the accumulation order over uploads equals
        the call order — the same order the one-shot :meth:`aggregate`
        walks them in — so streaming is bit-identical to one-shot.
        """
        if self._round_state is None:
            raise RuntimeError("add called with no open round (call begin_round first)")
        weight = float(update.num_samples)
        for name, old_value in self._round_state.items():
            tensor = update.state.get(name)
            if tensor is None:
                continue
            tensor = np.asarray(tensor)
            region = self.region_for(name, old_value.shape, tensor.shape)
            accumulator, weight_sum, scratch, _ = self._buffers[name]
            # weighted accumulation without per-update temporaries
            target = scratch[region]
            np.multiply(tensor, weight, out=target, casting="unsafe")
            accumulator[region] += target
            weight_sum[region] += weight

    def finalize(self) -> dict[str, np.ndarray]:
        """Close the open round and return the merged global state.

        Elements not covered by any upload keep their previous value; a
        round with zero uploads returns a copy of the old state.
        """
        if self._round_state is None:
            raise RuntimeError("finalize called with no open round (call begin_round first)")
        state, self._round_state = self._round_state, None
        new_state: dict[str, np.ndarray] = {}
        for name, old_value in state.items():
            accumulator, weight_sum, _, covered = self._buffers[name]
            np.greater(weight_sum, 0, out=covered)
            merged = np.array(old_value, copy=True)
            np.divide(accumulator, weight_sum, out=merged, where=covered)
            new_state[name] = merged
        return new_state

    def abort_round(self) -> None:
        """Discard an open round (error paths); a no-op when none is open."""
        self._round_state = None

    def aggregate(
        self,
        global_state: Mapping[str, np.ndarray],
        updates: Iterable[ClientUpdate],
    ) -> dict[str, np.ndarray]:
        """Aggregate heterogeneous submodel uploads into a new global state.

        Every uploaded tensor must be a prefix block of the corresponding
        global tensor (same number of axes, each extent no larger).
        Elements not covered by any upload keep their previous value.
        ``updates`` may be any iterable — a generator streams uploads
        through the reused buffers without ever holding them all.
        """
        self.begin_round(global_state)
        try:
            for update in updates:
                self.add(update)
        except BaseException:
            self.abort_round()
            raise
        return self.finalize()


def aggregate_heterogeneous(
    global_state: Mapping[str, np.ndarray],
    updates: Sequence[ClientUpdate],
) -> dict[str, np.ndarray]:
    """One-shot aggregation (see :class:`HeterogeneousAggregator`).

    Algorithms hold a long-lived aggregator to reuse its buffers across
    rounds; this function exists for tests and ad-hoc callers.
    """
    return HeterogeneousAggregator().aggregate(global_state, updates)


def fedavg_aggregate(updates: Sequence[ClientUpdate]) -> dict[str, np.ndarray]:
    """Classic FedAvg over homogeneous (same-shape) uploads."""
    if not updates:
        raise ValueError("fedavg_aggregate needs at least one update")
    total = float(sum(update.num_samples for update in updates))
    reference = updates[0].state
    merged: dict[str, np.ndarray] = {}
    for name, value in reference.items():
        merged[name] = np.zeros_like(np.asarray(value))
    for update in updates:
        weight = update.num_samples / total
        for name, value in update.state.items():
            tensor = np.asarray(value)
            if tensor.shape != merged[name].shape:
                raise ValueError(
                    f"fedavg_aggregate requires homogeneous shapes; {name!r} differs "
                    f"({tensor.shape} vs {merged[name].shape})"
                )
            merged[name] += weight * tensor
    return merged
