"""Heterogeneous model aggregation (Algorithm 2 of the paper).

Because every submodel keeps prefix blocks of the global tensors, the
aggregation reduces to element-wise weighted averaging with per-element
coverage bookkeeping: an element of the global model is replaced by the
data-size-weighted mean of the uploads that contain it, and keeps its old
value if no upload covers it (Algorithm 2, line 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = ["ClientUpdate", "aggregate_heterogeneous", "fedavg_aggregate"]


@dataclass
class ClientUpdate:
    """One uploaded submodel: its state dict and the client's data size."""

    state: Mapping[str, np.ndarray]
    num_samples: int

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")


def _accumulate(
    target: np.ndarray,
    weight_sum: np.ndarray,
    update: np.ndarray,
    weight: float,
) -> None:
    """Add a prefix-shaped update into the accumulators in place."""
    region = tuple(slice(0, extent) for extent in update.shape)
    target[region] += update * weight
    weight_sum[region] += weight


def aggregate_heterogeneous(
    global_state: Mapping[str, np.ndarray],
    updates: Sequence[ClientUpdate],
) -> dict[str, np.ndarray]:
    """Aggregate heterogeneous submodel uploads into a new global state.

    Every uploaded tensor must be a prefix block of the corresponding
    global tensor (same number of axes, each extent no larger).  Elements
    not covered by any upload keep their previous global value.
    """
    if not updates:
        return {name: np.array(value, copy=True) for name, value in global_state.items()}

    new_state: dict[str, np.ndarray] = {}
    for name, old_value in global_state.items():
        old_value = np.asarray(old_value, dtype=np.float64)
        accumulator = np.zeros_like(old_value)
        weight_sum = np.zeros_like(old_value)
        for update in updates:
            if name not in update.state:
                continue
            tensor = np.asarray(update.state[name], dtype=np.float64)
            if tensor.ndim != old_value.ndim or any(
                extent > full for extent, full in zip(tensor.shape, old_value.shape)
            ):
                raise ValueError(
                    f"upload for {name!r} with shape {tensor.shape} is not a prefix of {old_value.shape}"
                )
            _accumulate(accumulator, weight_sum, tensor, float(update.num_samples))
        covered = weight_sum > 0
        merged = np.array(old_value, copy=True)
        merged[covered] = accumulator[covered] / weight_sum[covered]
        new_state[name] = merged
    return new_state


def fedavg_aggregate(updates: Sequence[ClientUpdate]) -> dict[str, np.ndarray]:
    """Classic FedAvg over homogeneous (same-shape) uploads."""
    if not updates:
        raise ValueError("fedavg_aggregate needs at least one update")
    total = float(sum(update.num_samples for update in updates))
    reference = updates[0].state
    merged: dict[str, np.ndarray] = {}
    for name, value in reference.items():
        merged[name] = np.zeros_like(np.asarray(value, dtype=np.float64))
    for update in updates:
        weight = update.num_samples / total
        for name, value in update.state.items():
            tensor = np.asarray(value, dtype=np.float64)
            if tensor.shape != merged[name].shape:
                raise ValueError(
                    f"fedavg_aggregate requires homogeneous shapes; {name!r} differs "
                    f"({tensor.shape} vs {merged[name].shape})"
                )
            merged[name] += weight * tensor
    return merged
