"""Heterogeneous model aggregation (Algorithm 2 of the paper).

Because every submodel keeps prefix blocks of the global tensors, the
aggregation reduces to element-wise weighted averaging with per-element
coverage bookkeeping: an element of the global model is replaced by the
data-size-weighted mean of the uploads that contain it, and keeps its old
value if no upload covers it (Algorithm 2, line 14).

Aggregation is a per-round hot path, so the heavy lifting lives in
:class:`HeterogeneousAggregator`, which owns reusable accumulation
buffers (weighted sums, per-element weight totals, coverage masks and a
scatter scratch) sized to the global state and zeroed — never
reallocated — every round, plus a cache of the prefix-slice regions per
upload shape.  The module-level :func:`aggregate_heterogeneous` keeps
the historical one-shot API on top of a throwaway aggregator.

All arithmetic preserves the dtype of the global state: a ``float32``
training stack aggregates in ``float32`` end-to-end (no silent
``float64`` promotion), while tests that feed ``float64`` states keep
double precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "ClientUpdate",
    "HeterogeneousAggregator",
    "aggregate_heterogeneous",
    "fedavg_aggregate",
]


@dataclass
class ClientUpdate:
    """One uploaded submodel: its state dict and the client's data size."""

    state: Mapping[str, np.ndarray]
    num_samples: int

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")


class HeterogeneousAggregator:
    """Reusable-buffer engine for prefix-overlap weighted averaging.

    One instance serves one global-state *signature* (names, shapes,
    dtypes) — exactly the lifetime of a federated algorithm, which owns
    one.  Buffers are allocated on first use and reused across rounds;
    a change of shape or dtype for a name transparently reallocates.
    """

    def __init__(self) -> None:
        # name -> (accumulator, weight_sum, scratch, coverage mask)
        self._buffers: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
        # (name, upload shape) -> prefix-slice region
        self._regions: dict[tuple[str, tuple[int, ...]], tuple[slice, ...]] = {}

    def _buffers_for(self, name: str, reference: np.ndarray):
        cached = self._buffers.get(name)
        if cached is None or cached[0].shape != reference.shape or cached[0].dtype != reference.dtype:
            cached = (
                np.zeros_like(reference),
                np.zeros_like(reference),
                np.empty_like(reference),
                np.zeros(reference.shape, dtype=bool),
            )
            self._buffers[name] = cached
        else:
            cached[0].fill(0)
            cached[1].fill(0)
        return cached

    def region_for(self, name: str, full_shape: tuple[int, ...], upload_shape: tuple[int, ...]) -> tuple[slice, ...]:
        """The (cached) prefix region an upload of ``upload_shape`` covers."""
        key = (name, upload_shape)
        region = self._regions.get(key)
        if region is None:
            if len(upload_shape) != len(full_shape) or any(
                extent > full for extent, full in zip(upload_shape, full_shape)
            ):
                raise ValueError(
                    f"upload for {name!r} with shape {upload_shape} is not a prefix of {full_shape}"
                )
            region = tuple(slice(0, extent) for extent in upload_shape)
            self._regions[key] = region
        return region

    def aggregate(
        self,
        global_state: Mapping[str, np.ndarray],
        updates: Sequence[ClientUpdate],
    ) -> dict[str, np.ndarray]:
        """Aggregate heterogeneous submodel uploads into a new global state.

        Every uploaded tensor must be a prefix block of the corresponding
        global tensor (same number of axes, each extent no larger).
        Elements not covered by any upload keep their previous value.
        """
        if not updates:
            return {name: np.array(value, copy=True) for name, value in global_state.items()}

        new_state: dict[str, np.ndarray] = {}
        for name, old_value in global_state.items():
            old_value = np.asarray(old_value)
            accumulator, weight_sum, scratch, covered = self._buffers_for(name, old_value)
            for update in updates:
                tensor = update.state.get(name)
                if tensor is None:
                    continue
                tensor = np.asarray(tensor)
                region = self.region_for(name, old_value.shape, tensor.shape)
                weight = float(update.num_samples)
                # weighted accumulation without per-update temporaries
                target = scratch[region]
                np.multiply(tensor, weight, out=target, casting="unsafe")
                accumulator[region] += target
                weight_sum[region] += weight
            np.greater(weight_sum, 0, out=covered)
            merged = np.array(old_value, copy=True)
            np.divide(accumulator, weight_sum, out=merged, where=covered)
            new_state[name] = merged
        return new_state


def aggregate_heterogeneous(
    global_state: Mapping[str, np.ndarray],
    updates: Sequence[ClientUpdate],
) -> dict[str, np.ndarray]:
    """One-shot aggregation (see :class:`HeterogeneousAggregator`).

    Algorithms hold a long-lived aggregator to reuse its buffers across
    rounds; this function exists for tests and ad-hoc callers.
    """
    return HeterogeneousAggregator().aggregate(global_state, updates)


def fedavg_aggregate(updates: Sequence[ClientUpdate]) -> dict[str, np.ndarray]:
    """Classic FedAvg over homogeneous (same-shape) uploads."""
    if not updates:
        raise ValueError("fedavg_aggregate needs at least one update")
    total = float(sum(update.num_samples for update in updates))
    reference = updates[0].state
    merged: dict[str, np.ndarray] = {}
    for name, value in reference.items():
        merged[name] = np.zeros_like(np.asarray(value))
    for update in updates:
        weight = update.num_samples / total
        for name, value in update.state.items():
            tensor = np.asarray(value)
            if tensor.shape != merged[name].shape:
                raise ValueError(
                    f"fedavg_aggregate requires homogeneous shapes; {name!r} differs "
                    f"({tensor.shape} vs {merged[name].shape})"
                )
            merged[name] += weight * tensor
    return merged
