"""Local training of a (sub)model on one client's data (Algorithm 1, LocalTrain).

The same routine serves AdaptiveFL and every baseline: it builds the
network for the requested channel configuration, loads the dispatched
weights, runs the paper's local SGD schedule and returns the trained state
dict together with the client's data size (used as the aggregation
weight).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.config import LocalTrainingConfig
from repro.data.datasets import Dataset
from repro.data.loader import DataLoader
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models.spec import SlimmableArchitecture
from repro.nn.optim import SGD

__all__ = ["LocalTrainingResult", "train_local_model"]


@dataclass
class LocalTrainingResult:
    """Output of one client's local training pass."""

    state: dict[str, np.ndarray]
    num_samples: int
    mean_loss: float
    num_steps: int


def train_local_model(
    architecture: SlimmableArchitecture,
    group_sizes: Mapping[str, int],
    initial_state: Mapping[str, np.ndarray],
    dataset: Dataset,
    config: LocalTrainingConfig,
    rng: np.random.Generator,
) -> LocalTrainingResult:
    """Run the paper's local-training schedule on one client.

    ``initial_state`` must already match ``group_sizes`` (the caller slices
    the global model first — that separation keeps the data path identical
    to a real deployment, where only the pruned weights travel to the
    device).
    """
    if len(dataset) == 0:
        raise ValueError("client dataset is empty")
    model = architecture.build(group_sizes, rng=np.random.default_rng(int(rng.integers(0, 2**31 - 1))))
    model.load_state_dict({name: np.asarray(value) for name, value in initial_state.items()})
    model.train()

    optimizer = SGD(
        model.parameters(),
        lr=config.learning_rate,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    loss_fn = CrossEntropyLoss()
    loader = DataLoader(dataset, batch_size=config.batch_size, shuffle=True, rng=rng)

    total_loss = 0.0
    steps = 0
    for _ in range(config.local_epochs):
        for batch_index, (images, labels) in enumerate(loader):
            if config.max_batches_per_epoch is not None and batch_index >= config.max_batches_per_epoch:
                break
            optimizer.zero_grad()
            logits = model(images)
            loss = loss_fn(logits, labels)
            model.backward(loss_fn.backward())
            optimizer.step()
            total_loss += loss
            steps += 1
    mean_loss = total_loss / steps if steps else float("nan")
    return LocalTrainingResult(
        state=model.state_dict(),
        num_samples=len(dataset),
        mean_loss=mean_loss,
        num_steps=steps,
    )
