"""RL-based client selection (paper §3.3 and Algorithm 1, lines 12-26).

The server never observes device resources.  Instead it maintains two
tables indexed by (model, client):

* the **curiosity table** ``T_c`` (3 levels × clients) counts how often a
  client has been involved with each model *level*; its MBIE-EB bonus
  ``1/sqrt(T_c)`` spreads exploration across clients,
* the **resource table** ``T_r`` ((2p+1) models × clients) scores how
  successfully a client trains each pool entry, updated from the
  ⟨dispatched, returned⟩ pair of every round.

The final reward ``min(cap, R_s) · R_c`` (cap = 0.5 in the paper) turns
into a selection probability by normalising over the still-unselected
clients of the round.
"""

from __future__ import annotations

import numpy as np

from repro.core.model_pool import LEVELS, ModelPool, SubmodelConfig
from repro.sim.cohorts import DEFAULT_COHORT_SIZE, cohort_counts, nth_masked_index

__all__ = ["RLClientSelector", "StreamingRLClientSelector"]


class RLClientSelector:
    """Curiosity- and resource-driven client selection."""

    def __init__(
        self,
        pool: ModelPool,
        num_clients: int,
        strategy: str = "rl-cs",
        resource_reward_cap: float = 0.5,
    ):
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        valid = {"rl-cs", "rl-c", "rl-s", "random"}
        if strategy not in valid:
            raise ValueError(f"strategy must be one of {sorted(valid)}, got {strategy!r}")
        if not 0.0 < resource_reward_cap <= 1.0:
            raise ValueError("resource_reward_cap must be in (0, 1]")
        self.pool = pool
        self.num_clients = num_clients
        self.strategy = strategy
        self.resource_reward_cap = resource_reward_cap
        self.models_per_level = pool.config.models_per_level
        # Algorithm 1, lines 1-2: both tables start at one.
        self.curiosity_table = np.ones((len(LEVELS), num_clients), dtype=np.float64)
        self.resource_table = np.ones((len(pool), num_clients), dtype=np.float64)

    # -- rewards -------------------------------------------------------------------
    def _level_ranks(self, level: str) -> list[int]:
        """Pool ranks belonging to one size level."""
        return [cfg.rank for cfg in self.pool if cfg.level == level]

    def resource_reward(self, model: SubmodelConfig, client: int) -> float:
        """Paper's ``R_s``: success mass of the model's level, cumulated upward."""
        column = self.resource_table[:, client]
        total = float(column.sum())
        if total <= 0:
            return 0.0
        numerator = 0.0
        for rank in self._level_ranks(model.level):
            numerator += float(column[rank:].sum())
        return numerator / (self.models_per_level * total)

    def curiosity_reward(self, model: SubmodelConfig, client: int) -> float:
        """Paper's ``R_c``: MBIE-EB bonus ``1/sqrt(T_c[type(m)][c])``."""
        level_index = self.pool.level_index(model.level)
        count = self.curiosity_table[level_index, client]
        return float(1.0 / np.sqrt(max(count, 1e-12)))

    def combined_reward(self, model: SubmodelConfig, client: int) -> float:
        """Strategy-dependent final reward for one (model, client) pair."""
        if self.strategy == "random":
            return 1.0
        if self.strategy == "rl-c":
            return self.curiosity_reward(model, client)
        if self.strategy == "rl-s":
            return self.resource_reward(model, client)
        capped = min(self.resource_reward_cap, self.resource_reward(model, client))
        return capped * self.curiosity_reward(model, client)

    def selection_probabilities(self, model: SubmodelConfig, allowed: list[int]) -> np.ndarray:
        """Normalised selection probabilities over the ``allowed`` clients."""
        if not allowed:
            raise ValueError("no clients available for selection")
        rewards = np.array([self.combined_reward(model, client) for client in allowed], dtype=np.float64)
        rewards = np.clip(rewards, 0.0, None)
        total = rewards.sum()
        if total <= 0:
            return np.full(len(allowed), 1.0 / len(allowed))
        return rewards / total

    # -- selection -----------------------------------------------------------------
    def select(
        self,
        model: SubmodelConfig,
        rng: np.random.Generator,
        excluded: set[int] | None = None,
    ) -> int:
        """Sample a client for ``model`` (Algorithm 1, ClientSel).

        ``excluded`` holds clients already chosen in the current round so a
        client trains at most one model per round.
        """
        excluded = excluded or set()
        allowed = [client for client in range(self.num_clients) if client not in excluded]
        if not allowed:
            raise ValueError("every client is already selected this round")
        probabilities = self.selection_probabilities(model, allowed)
        choice = rng.choice(len(allowed), p=probabilities)
        return int(allowed[choice])

    # -- table updates --------------------------------------------------------------
    def update(self, sent: SubmodelConfig, returned: SubmodelConfig, client: int) -> None:
        """Apply Algorithm 1, lines 12-26, after a client's round finishes."""
        if not 0 <= client < self.num_clients:
            raise IndexError(f"client {client} out of range")
        if returned.num_params > sent.num_params:
            raise ValueError("a device cannot return a larger model than it received")

        # Lines 12-13: curiosity counts for the dispatched and returned levels.
        self.curiosity_table[self.pool.level_index(sent.level), client] += 1
        self.curiosity_table[self.pool.level_index(returned.level), client] += 1

        max_rank = len(self.pool) - 1
        if sent.rank == returned.rank:
            # Lines 15-18: the client handled the model unchanged, so every
            # model at least as large gains confidence; the full model gains
            # the extra p-1 bonus of line 18.
            self.resource_table[sent.rank : max_rank + 1, client] += 1.0
            self.resource_table[max_rank, client] += self.models_per_level - 1
        else:
            # Lines 20-25: the client had to prune, so the returned size is
            # strongly reinforced and larger sizes are progressively
            # penalised (floored at zero).
            self.resource_table[returned.rank, client] += self.models_per_level
            penalty = 0.0
            for rank in range(returned.rank, max_rank + 1):
                self.resource_table[rank, client] = max(self.resource_table[rank, client] - penalty, 0.0)
                penalty += 1.0

    # -- checkpointing ---------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copies of both tables, keyed for the experiment store's checkpoints.

        The tables are the selector's *only* mutable state — strategy and
        reward cap are construction-time configuration — so restoring them
        with :meth:`load_state_dict` resumes selection bit-identically.
        """
        return {
            "curiosity_table": self.curiosity_table.copy(),
            "resource_table": self.resource_table.copy(),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` output (shape-checked, bit-exact)."""
        for name in ("curiosity_table", "resource_table"):
            if name not in state:
                raise ValueError(f"selector state is missing {name!r}")
            table = np.asarray(state[name], dtype=np.float64)
            current = getattr(self, name)
            if table.shape != current.shape:
                raise ValueError(
                    f"{name} shape {table.shape} does not match the selector's {current.shape}; "
                    "the checkpoint belongs to a different pool/fleet configuration"
                )
        self.curiosity_table = np.array(state["curiosity_table"], dtype=np.float64)
        self.resource_table = np.array(state["resource_table"], dtype=np.float64)

    # -- introspection ---------------------------------------------------------------
    def snapshot(self) -> dict[str, np.ndarray]:
        """Copies of both tables (for logging, tests and ablation plots)."""
        return {
            "curiosity": self.curiosity_table.copy(),
            "resource": self.resource_table.copy(),
        }


class StreamingRLClientSelector:
    """The same RL selection policy with O(selected) memory and bookkeeping.

    The dense :class:`RLClientSelector` holds ``(3 + 2p+1) × num_clients``
    tables and walks every client per selection — fine for dozens of
    devices, infeasible for 10⁶.  This selector keeps a column *only* for
    clients that have ever been updated (the selected set); every
    untouched client implicitly holds the all-ones initial column, so its
    reward is a single shared value per model.  Selection then splits
    into two tiers: exact per-client rewards over the touched clients,
    plus ``untouched_count × default_reward`` mass resolved by rank
    lookup into the availability mask (cohort-sharded, never
    materialising the population).

    Reward arithmetic is copied operation-for-operation from the dense
    selector, so for identical update histories the two produce identical
    probabilities — the equivalence the test suite pins.  The list-based
    :meth:`select` draws exactly like the dense selector (bit-identical
    small-N drop-in); :meth:`select_from_mask` is the streaming draw for
    large fleets and uses its own (equally deterministic) draw scheme.
    """

    def __init__(
        self,
        pool: ModelPool,
        num_clients: int,
        strategy: str = "rl-cs",
        resource_reward_cap: float = 0.5,
        cohort_size: int = DEFAULT_COHORT_SIZE,
    ):
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        valid = {"rl-cs", "rl-c", "rl-s", "random"}
        if strategy not in valid:
            raise ValueError(f"strategy must be one of {sorted(valid)}, got {strategy!r}")
        if not 0.0 < resource_reward_cap <= 1.0:
            raise ValueError("resource_reward_cap must be in (0, 1]")
        if cohort_size <= 0:
            raise ValueError("cohort_size must be positive")
        self.pool = pool
        self.num_clients = num_clients
        self.strategy = strategy
        self.resource_reward_cap = resource_reward_cap
        self.cohort_size = cohort_size
        self.models_per_level = pool.config.models_per_level
        # Algorithm 1, lines 1-2: every client starts at all-ones; only
        # clients that get updated ever materialise a column.
        self._curiosity_columns: dict[int, np.ndarray] = {}
        self._resource_columns: dict[int, np.ndarray] = {}
        self._default_curiosity = np.ones(len(LEVELS), dtype=np.float64)
        self._default_resource = np.ones(len(pool), dtype=np.float64)
        self._touched_sorted: list[int] | None = []
        self._level_rank_cache: dict[str, list[int]] = {}

    # -- sparse columns --------------------------------------------------------------
    @property
    def num_touched(self) -> int:
        """How many clients hold materialised columns (the selected set)."""
        return len(self._resource_columns)

    def _touched_ids(self) -> list[int]:
        """Touched client ids in ascending order (cached until growth)."""
        if self._touched_sorted is None:
            self._touched_sorted = sorted(self._resource_columns)
        return self._touched_sorted

    def _columns_for(self, client: int) -> tuple[np.ndarray, np.ndarray]:
        """The (curiosity, resource) columns a client currently holds."""
        return (
            self._curiosity_columns.get(client, self._default_curiosity),
            self._resource_columns.get(client, self._default_resource),
        )

    def _materialise(self, client: int) -> tuple[np.ndarray, np.ndarray]:
        """Get-or-create writable columns for one client."""
        curiosity = self._curiosity_columns.get(client)
        if curiosity is None:
            curiosity = self._curiosity_columns[client] = self._default_curiosity.copy()
            self._resource_columns[client] = self._default_resource.copy()
            self._touched_sorted = None
        return curiosity, self._resource_columns[client]

    # -- rewards (operation-for-operation the dense selector's math) -----------------
    def _level_ranks(self, level: str) -> list[int]:
        """Pool ranks belonging to one size level."""
        ranks = self._level_rank_cache.get(level)
        if ranks is None:
            ranks = self._level_rank_cache[level] = [cfg.rank for cfg in self.pool if cfg.level == level]
        return ranks

    def _resource_reward_column(self, model: SubmodelConfig, column: np.ndarray) -> float:
        total = float(column.sum())
        if total <= 0:
            return 0.0
        numerator = 0.0
        for rank in self._level_ranks(model.level):
            numerator += float(column[rank:].sum())
        return numerator / (self.models_per_level * total)

    def _curiosity_reward_column(self, model: SubmodelConfig, column: np.ndarray) -> float:
        level_index = self.pool.level_index(model.level)
        count = column[level_index]
        return float(1.0 / np.sqrt(max(count, 1e-12)))

    def resource_reward(self, model: SubmodelConfig, client: int) -> float:
        """Paper's ``R_s``: success mass of the model's level, cumulated upward."""
        return self._resource_reward_column(model, self._columns_for(client)[1])

    def curiosity_reward(self, model: SubmodelConfig, client: int) -> float:
        """Paper's ``R_c``: MBIE-EB bonus ``1/sqrt(T_c[type(m)][c])``."""
        return self._curiosity_reward_column(model, self._columns_for(client)[0])

    def combined_reward(self, model: SubmodelConfig, client: int) -> float:
        """Strategy-dependent final reward for one (model, client) pair."""
        curiosity, resource = self._columns_for(client)
        return self._combined_reward_columns(model, curiosity, resource)

    def _combined_reward_columns(
        self, model: SubmodelConfig, curiosity: np.ndarray, resource: np.ndarray
    ) -> float:
        if self.strategy == "random":
            return 1.0
        if self.strategy == "rl-c":
            return self._curiosity_reward_column(model, curiosity)
        if self.strategy == "rl-s":
            return self._resource_reward_column(model, resource)
        capped = min(self.resource_reward_cap, self._resource_reward_column(model, resource))
        return capped * self._curiosity_reward_column(model, curiosity)

    def default_reward(self, model: SubmodelConfig) -> float:
        """The shared reward every untouched (all-ones) client holds for ``model``."""
        return self._combined_reward_columns(model, self._default_curiosity, self._default_resource)

    def selection_probabilities(self, model: SubmodelConfig, allowed: list[int]) -> np.ndarray:
        """Normalised selection probabilities over the ``allowed`` clients."""
        if not allowed:
            raise ValueError("no clients available for selection")
        rewards = np.array([self.combined_reward(model, client) for client in allowed], dtype=np.float64)
        rewards = np.clip(rewards, 0.0, None)
        total = rewards.sum()
        if total <= 0:
            return np.full(len(allowed), 1.0 / len(allowed))
        return rewards / total

    # -- selection -------------------------------------------------------------------
    def select(
        self,
        model: SubmodelConfig,
        rng: np.random.Generator,
        excluded: set[int] | None = None,
    ) -> int:
        """Dense-compatible selection over an explicit allowed list.

        Walks ``range(num_clients)`` like the dense selector and consumes
        the generator identically, so small-N runs are bit-identical
        drop-ins.  Large fleets use :meth:`select_from_mask` instead.
        """
        excluded = excluded or set()
        allowed = [client for client in range(self.num_clients) if client not in excluded]
        if not allowed:
            raise ValueError("every client is already selected this round")
        probabilities = self.selection_probabilities(model, allowed)
        choice = rng.choice(len(allowed), p=probabilities)
        return int(allowed[choice])

    def select_from_mask(
        self,
        model: SubmodelConfig,
        rng: np.random.Generator,
        allowed_mask: np.ndarray,
    ) -> int:
        """Streaming selection: sample one client from a boolean mask.

        Two-tier sampling over the same distribution
        :meth:`selection_probabilities` defines: exact rewards for the
        touched clients in the mask, one shared default-reward mass for
        the untouched remainder, resolved to a client id by rank lookup
        (cohort-sharded).  O(touched · pool) reward work plus one
        vectorised pass over the mask — never a per-client Python loop
        over the population.  ``allowed_mask`` is not mutated.
        """
        allowed_mask = np.asarray(allowed_mask, dtype=bool)
        if allowed_mask.shape != (self.num_clients,):
            raise ValueError(
                f"allowed_mask has shape {allowed_mask.shape}, expected ({self.num_clients},)"
            )
        allowed_total = int(allowed_mask.sum())
        if allowed_total == 0:
            raise ValueError("every client is already selected this round")
        touched = [client for client in self._touched_ids() if allowed_mask[client]]
        rewards = np.clip(
            np.array([self.combined_reward(model, client) for client in touched], dtype=np.float64),
            0.0,
            None,
        )
        untouched_total = allowed_total - len(touched)
        default = max(0.0, self.default_reward(model))
        total_mass = float(rewards.sum()) + untouched_total * default
        if total_mass <= 0:
            # degenerate rewards: uniform over the allowed mask
            return self._nth_allowed(allowed_mask, int(rng.integers(0, allowed_total)))
        threshold = float(rng.random()) * total_mass
        accumulated = 0.0
        for client, reward in zip(touched, rewards):
            accumulated += float(reward)
            if threshold < accumulated:
                return client
        if untouched_total == 0 or default <= 0.0:
            return touched[-1]  # float-edge fallback: the mass ended mid-walk
        rank = min(int((threshold - accumulated) / default), untouched_total - 1)
        return self._nth_untouched(allowed_mask, touched, rank)

    def _nth_allowed(self, mask: np.ndarray, rank: int) -> int:
        """The ``rank``-th set bit of ``mask``, found cohort by cohort."""
        counts = cohort_counts(mask, self.cohort_size)
        offsets = np.cumsum(counts)
        cohort = int(np.searchsorted(offsets, rank, side="right"))
        before = int(offsets[cohort - 1]) if cohort > 0 else 0
        base = cohort * self.cohort_size
        return base + nth_masked_index(mask[base : base + self.cohort_size], rank - before)

    def _nth_untouched(self, allowed_mask: np.ndarray, touched: list[int], rank: int) -> int:
        """The ``rank``-th allowed client that holds no materialised column."""
        mask = allowed_mask.copy()
        if touched:
            mask[np.asarray(touched, dtype=np.int64)] = False
        return self._nth_allowed(mask, rank)

    # -- table updates ---------------------------------------------------------------
    def update(self, sent: SubmodelConfig, returned: SubmodelConfig, client: int) -> None:
        """Apply Algorithm 1, lines 12-26, after a client's round finishes."""
        if not 0 <= client < self.num_clients:
            raise IndexError(f"client {client} out of range")
        if returned.num_params > sent.num_params:
            raise ValueError("a device cannot return a larger model than it received")
        curiosity, resource = self._materialise(client)

        # Lines 12-13: curiosity counts for the dispatched and returned levels.
        curiosity[self.pool.level_index(sent.level)] += 1
        curiosity[self.pool.level_index(returned.level)] += 1

        max_rank = len(self.pool) - 1
        if sent.rank == returned.rank:
            # Lines 15-18: the client handled the model unchanged, so every
            # model at least as large gains confidence; the full model gains
            # the extra p-1 bonus of line 18.
            resource[sent.rank : max_rank + 1] += 1.0
            resource[max_rank] += self.models_per_level - 1
        else:
            # Lines 20-25: the client had to prune, so the returned size is
            # strongly reinforced and larger sizes are progressively
            # penalised (floored at zero).
            resource[returned.rank] += self.models_per_level
            penalty = 0.0
            for rank in range(returned.rank, max_rank + 1):
                resource[rank] = max(resource[rank] - penalty, 0.0)
                penalty += 1.0

    # -- checkpointing ---------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """The touched columns only, keyed for the experiment store.

        ``client_ids`` lists the touched clients in ascending order;
        ``curiosity_columns``/``resource_columns`` stack their columns in
        that order.  Untouched clients are implicit (all-ones), which is
        what keeps checkpoints O(selected) at fleet scale.
        """
        ids = self._touched_ids()
        if ids:
            curiosity = np.stack([self._curiosity_columns[c] for c in ids], axis=1)
            resource = np.stack([self._resource_columns[c] for c in ids], axis=1)
        else:
            curiosity = np.zeros((len(LEVELS), 0), dtype=np.float64)
            resource = np.zeros((len(self.pool), 0), dtype=np.float64)
        return {
            "client_ids": np.asarray(ids, dtype=np.int64),
            "curiosity_columns": curiosity,
            "resource_columns": resource,
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` output (shape-checked, bit-exact)."""
        for name in ("client_ids", "curiosity_columns", "resource_columns"):
            if name not in state:
                raise ValueError(f"selector state is missing {name!r}")
        ids = np.asarray(state["client_ids"], dtype=np.int64)
        curiosity = np.asarray(state["curiosity_columns"], dtype=np.float64)
        resource = np.asarray(state["resource_columns"], dtype=np.float64)
        if curiosity.shape != (len(LEVELS), ids.size) or resource.shape != (len(self.pool), ids.size):
            raise ValueError(
                f"selector column shapes {curiosity.shape}/{resource.shape} do not match "
                f"{ids.size} client ids for this pool; the checkpoint belongs to a "
                "different pool configuration"
            )
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_clients):
            raise ValueError("selector state references clients outside this fleet")
        self._curiosity_columns = {int(c): curiosity[:, i].copy() for i, c in enumerate(ids)}
        self._resource_columns = {int(c): resource[:, i].copy() for i, c in enumerate(ids)}
        self._touched_sorted = None

    # -- introspection ---------------------------------------------------------------
    def snapshot(self) -> dict[str, np.ndarray]:
        """Dense table views rebuilt from the sparse columns (tests, plots).

        Equal to the dense selector's :meth:`RLClientSelector.snapshot`
        after an identical update history; only call at small N.
        """
        curiosity = np.ones((len(LEVELS), self.num_clients), dtype=np.float64)
        resource = np.ones((len(self.pool), self.num_clients), dtype=np.float64)
        for client, column in self._curiosity_columns.items():
            curiosity[:, client] = column
        for client, column in self._resource_columns.items():
            resource[:, client] = column
        return {"curiosity": curiosity, "resource": resource}
