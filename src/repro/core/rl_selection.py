"""RL-based client selection (paper §3.3 and Algorithm 1, lines 12-26).

The server never observes device resources.  Instead it maintains two
tables indexed by (model, client):

* the **curiosity table** ``T_c`` (3 levels × clients) counts how often a
  client has been involved with each model *level*; its MBIE-EB bonus
  ``1/sqrt(T_c)`` spreads exploration across clients,
* the **resource table** ``T_r`` ((2p+1) models × clients) scores how
  successfully a client trains each pool entry, updated from the
  ⟨dispatched, returned⟩ pair of every round.

The final reward ``min(cap, R_s) · R_c`` (cap = 0.5 in the paper) turns
into a selection probability by normalising over the still-unselected
clients of the round.
"""

from __future__ import annotations

import numpy as np

from repro.core.model_pool import LEVELS, ModelPool, SubmodelConfig

__all__ = ["RLClientSelector"]


class RLClientSelector:
    """Curiosity- and resource-driven client selection."""

    def __init__(
        self,
        pool: ModelPool,
        num_clients: int,
        strategy: str = "rl-cs",
        resource_reward_cap: float = 0.5,
    ):
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        valid = {"rl-cs", "rl-c", "rl-s", "random"}
        if strategy not in valid:
            raise ValueError(f"strategy must be one of {sorted(valid)}, got {strategy!r}")
        if not 0.0 < resource_reward_cap <= 1.0:
            raise ValueError("resource_reward_cap must be in (0, 1]")
        self.pool = pool
        self.num_clients = num_clients
        self.strategy = strategy
        self.resource_reward_cap = resource_reward_cap
        self.models_per_level = pool.config.models_per_level
        # Algorithm 1, lines 1-2: both tables start at one.
        self.curiosity_table = np.ones((len(LEVELS), num_clients), dtype=np.float64)
        self.resource_table = np.ones((len(pool), num_clients), dtype=np.float64)

    # -- rewards -------------------------------------------------------------------
    def _level_ranks(self, level: str) -> list[int]:
        """Pool ranks belonging to one size level."""
        return [cfg.rank for cfg in self.pool if cfg.level == level]

    def resource_reward(self, model: SubmodelConfig, client: int) -> float:
        """Paper's ``R_s``: success mass of the model's level, cumulated upward."""
        column = self.resource_table[:, client]
        total = float(column.sum())
        if total <= 0:
            return 0.0
        numerator = 0.0
        for rank in self._level_ranks(model.level):
            numerator += float(column[rank:].sum())
        return numerator / (self.models_per_level * total)

    def curiosity_reward(self, model: SubmodelConfig, client: int) -> float:
        """Paper's ``R_c``: MBIE-EB bonus ``1/sqrt(T_c[type(m)][c])``."""
        level_index = self.pool.level_index(model.level)
        count = self.curiosity_table[level_index, client]
        return float(1.0 / np.sqrt(max(count, 1e-12)))

    def combined_reward(self, model: SubmodelConfig, client: int) -> float:
        """Strategy-dependent final reward for one (model, client) pair."""
        if self.strategy == "random":
            return 1.0
        if self.strategy == "rl-c":
            return self.curiosity_reward(model, client)
        if self.strategy == "rl-s":
            return self.resource_reward(model, client)
        capped = min(self.resource_reward_cap, self.resource_reward(model, client))
        return capped * self.curiosity_reward(model, client)

    def selection_probabilities(self, model: SubmodelConfig, allowed: list[int]) -> np.ndarray:
        """Normalised selection probabilities over the ``allowed`` clients."""
        if not allowed:
            raise ValueError("no clients available for selection")
        rewards = np.array([self.combined_reward(model, client) for client in allowed], dtype=np.float64)
        rewards = np.clip(rewards, 0.0, None)
        total = rewards.sum()
        if total <= 0:
            return np.full(len(allowed), 1.0 / len(allowed))
        return rewards / total

    # -- selection -----------------------------------------------------------------
    def select(
        self,
        model: SubmodelConfig,
        rng: np.random.Generator,
        excluded: set[int] | None = None,
    ) -> int:
        """Sample a client for ``model`` (Algorithm 1, ClientSel).

        ``excluded`` holds clients already chosen in the current round so a
        client trains at most one model per round.
        """
        excluded = excluded or set()
        allowed = [client for client in range(self.num_clients) if client not in excluded]
        if not allowed:
            raise ValueError("every client is already selected this round")
        probabilities = self.selection_probabilities(model, allowed)
        choice = rng.choice(len(allowed), p=probabilities)
        return int(allowed[choice])

    # -- table updates --------------------------------------------------------------
    def update(self, sent: SubmodelConfig, returned: SubmodelConfig, client: int) -> None:
        """Apply Algorithm 1, lines 12-26, after a client's round finishes."""
        if not 0 <= client < self.num_clients:
            raise IndexError(f"client {client} out of range")
        if returned.num_params > sent.num_params:
            raise ValueError("a device cannot return a larger model than it received")

        # Lines 12-13: curiosity counts for the dispatched and returned levels.
        self.curiosity_table[self.pool.level_index(sent.level), client] += 1
        self.curiosity_table[self.pool.level_index(returned.level), client] += 1

        max_rank = len(self.pool) - 1
        if sent.rank == returned.rank:
            # Lines 15-18: the client handled the model unchanged, so every
            # model at least as large gains confidence; the full model gains
            # the extra p-1 bonus of line 18.
            self.resource_table[sent.rank : max_rank + 1, client] += 1.0
            self.resource_table[max_rank, client] += self.models_per_level - 1
        else:
            # Lines 20-25: the client had to prune, so the returned size is
            # strongly reinforced and larger sizes are progressively
            # penalised (floored at zero).
            self.resource_table[returned.rank, client] += self.models_per_level
            penalty = 0.0
            for rank in range(returned.rank, max_rank + 1):
                self.resource_table[rank, client] = max(self.resource_table[rank, client] - penalty, 0.0)
                penalty += 1.0

    # -- checkpointing ---------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copies of both tables, keyed for the experiment store's checkpoints.

        The tables are the selector's *only* mutable state — strategy and
        reward cap are construction-time configuration — so restoring them
        with :meth:`load_state_dict` resumes selection bit-identically.
        """
        return {
            "curiosity_table": self.curiosity_table.copy(),
            "resource_table": self.resource_table.copy(),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` output (shape-checked, bit-exact)."""
        for name in ("curiosity_table", "resource_table"):
            if name not in state:
                raise ValueError(f"selector state is missing {name!r}")
            table = np.asarray(state[name], dtype=np.float64)
            current = getattr(self, name)
            if table.shape != current.shape:
                raise ValueError(
                    f"{name} shape {table.shape} does not match the selector's {current.shape}; "
                    "the checkpoint belongs to a different pool/fleet configuration"
                )
        self.curiosity_table = np.array(state["curiosity_table"], dtype=np.float64)
        self.resource_table = np.array(state["resource_table"], dtype=np.float64)

    # -- introspection ---------------------------------------------------------------
    def snapshot(self) -> dict[str, np.ndarray]:
        """Copies of both tables (for logging, tests and ablation plots)."""
        return {
            "curiosity": self.curiosity_table.copy(),
            "resource": self.resource_table.copy(),
        }
