"""Round-by-round training history shared by AdaptiveFL and the baselines.

Both :class:`RoundRecord` and :class:`TrainingHistory` serialise with
``to_dict()`` and reconstruct with ``from_dict()`` (strict: unknown keys
raise), so histories round-trip losslessly through JSON — the experiment
runner, the CLI and the benchmark artifacts all rely on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.serialization import checked_payload

__all__ = ["RoundRecord", "TrainingHistory"]


@dataclass
class RoundRecord:
    """Everything recorded about one federated round."""

    round_index: int
    #: accuracy of the full global model (the paper's "full")
    full_accuracy: float | None = None
    #: per-level-head accuracy {"S": ..., "M": ..., "L": ...}
    level_accuracies: dict[str, float] = field(default_factory=dict)
    #: mean of the level-head accuracies (the paper's "avg")
    avg_accuracy: float | None = None
    train_loss: float | None = None
    communication_waste: float | None = None
    dispatched: list[str] = field(default_factory=list)
    returned: list[str] = field(default_factory=list)
    selected_clients: list[int] = field(default_factory=list)
    wall_clock_seconds: float | None = None
    # -- fleet-simulation fields (populated when a scenario is active) ----------------
    #: per-selected-client upload-complete seconds; None = never returned
    arrival_seconds: list[float | None] = field(default_factory=list)
    #: selected clients whose update missed aggregation (dropout or deadline)
    dropped_clients: list[int] = field(default_factory=list)
    #: the synchronous-round deadline applied (None = no deadline)
    deadline_seconds: float | None = None
    #: total bytes the server sent to / received from the fleet this round
    bytes_down: int | None = None
    bytes_up: int | None = None

    def to_dict(self) -> dict:
        """JSON-friendly representation; round-trips through :meth:`from_dict`."""
        return {
            "round": self.round_index,
            "full_accuracy": self.full_accuracy,
            "avg_accuracy": self.avg_accuracy,
            "level_accuracies": self.level_accuracies,
            "train_loss": self.train_loss,
            "communication_waste": self.communication_waste,
            "wall_clock_seconds": self.wall_clock_seconds,
            "dispatched": self.dispatched,
            "returned": self.returned,
            "selected_clients": self.selected_clients,
            "arrival_seconds": self.arrival_seconds,
            "dropped_clients": self.dropped_clients,
            "deadline_seconds": self.deadline_seconds,
            "bytes_down": self.bytes_down,
            "bytes_up": self.bytes_up,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RoundRecord":
        """Strict reconstruction (the ``round`` key maps to ``round_index``)."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"RoundRecord payload must be a mapping, got {type(payload).__name__}")
        data = dict(payload)
        if "round" in data:
            if "round_index" in data:
                raise ValueError("RoundRecord payload sets both 'round' and 'round_index'")
            data["round_index"] = data.pop("round")
        data = checked_payload(cls, data)
        for name, caster in (("selected_clients", int), ("dropped_clients", int), ("dispatched", str), ("returned", str)):
            if name in data:
                if not isinstance(data[name], (list, tuple)):
                    raise ValueError(f"{name} must be a list")
                data[name] = [caster(item) for item in data[name]]
        if "arrival_seconds" in data:
            if not isinstance(data["arrival_seconds"], (list, tuple)):
                raise ValueError("arrival_seconds must be a list")
            data["arrival_seconds"] = [None if item is None else float(item) for item in data["arrival_seconds"]]
        return cls(**data)

    @property
    def aggregated_clients(self) -> list[int]:
        """The selected clients whose updates actually joined aggregation."""
        dropped = set(self.dropped_clients)
        return [client for client in self.selected_clients if client not in dropped]


class TrainingHistory:
    """Append-only collection of :class:`RoundRecord` with convenience views."""

    def __init__(self, algorithm: str):
        self.algorithm = algorithm
        self.records: list[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        if self.records and record.round_index <= self.records[-1].round_index:
            raise ValueError("round indices must be strictly increasing")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- series views -----------------------------------------------------------------
    def evaluated_records(self) -> list[RoundRecord]:
        """Records that carry an evaluation (full accuracy is present)."""
        return [record for record in self.records if record.full_accuracy is not None]

    def accuracy_curve(self, kind: str = "full") -> tuple[list[int], list[float]]:
        """(rounds, accuracies) series; ``kind`` is ``"full"`` or ``"avg"``."""
        if kind not in {"full", "avg"}:
            raise ValueError("kind must be 'full' or 'avg'")
        rounds, values = [], []
        for record in self.evaluated_records():
            value = record.full_accuracy if kind == "full" else record.avg_accuracy
            if value is None:
                continue
            rounds.append(record.round_index)
            values.append(value)
        return rounds, values

    def time_curve(self, kind: str = "full") -> tuple[list[float], list[float]]:
        """(cumulative seconds, accuracies); requires wall-clock records."""
        rounds, values = [], []
        elapsed = 0.0
        for record in self.records:
            elapsed += record.wall_clock_seconds or 0.0
            value = record.full_accuracy if kind == "full" else record.avg_accuracy
            if value is None:
                continue
            rounds.append(elapsed)
            values.append(value)
        return rounds, values

    def elapsed_seconds(self) -> float:
        """Total simulated wall-clock over all rounds (0.0 without a clock)."""
        return float(sum(record.wall_clock_seconds or 0.0 for record in self.records))

    def final_accuracy(self, kind: str = "full") -> float:
        """Best evaluated accuracy over training (the paper reports best test accuracy)."""
        _, values = self.accuracy_curve(kind)
        if not values:
            raise ValueError("history has no evaluated rounds")
        return max(values)

    def mean_communication_waste(self) -> float:
        """Average communication-waste rate across rounds that recorded it."""
        rates = [record.communication_waste for record in self.records if record.communication_waste is not None]
        if not rates:
            raise ValueError("history has no communication-waste records")
        return float(sum(rates) / len(rates))

    def total_dropped(self) -> int:
        """Dispatched-but-not-aggregated client slots over the whole run."""
        return sum(len(record.dropped_clients) for record in self.records)

    def summary(self) -> dict:
        """Headline metrics of the run as a JSON-friendly dict.

        Used by the experiment store's report generator and by
        ``ExperimentSession.save_results``: best full/avg accuracies (None
        when nothing was evaluated), the mean communication-waste rate
        (None when never recorded), round count, simulated elapsed seconds
        and the total dropped-client slots.
        """
        try:
            full = self.final_accuracy("full")
        except ValueError:
            full = None
        try:
            avg = self.final_accuracy("avg")
        except ValueError:
            avg = None
        try:
            waste = self.mean_communication_waste()
        except ValueError:
            waste = None
        return {
            "rounds": len(self.records),
            "full_accuracy": full,
            "avg_accuracy": avg,
            "communication_waste": waste,
            "elapsed_seconds": self.elapsed_seconds(),
            "total_dropped": self.total_dropped(),
        }

    def to_dict(self) -> dict:
        """JSON-friendly representation (used by the experiment runner and CLI)."""
        return {
            "algorithm": self.algorithm,
            "rounds": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TrainingHistory":
        """Strict reconstruction of :meth:`to_dict` output (unknown keys raise)."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"TrainingHistory payload must be a mapping, got {type(payload).__name__}")
        unknown = sorted(set(payload) - {"algorithm", "rounds"})
        if unknown:
            raise ValueError(f"TrainingHistory does not accept key(s) {', '.join(map(repr, unknown))}")
        if "algorithm" not in payload or "rounds" not in payload:
            raise ValueError("TrainingHistory payload needs 'algorithm' and 'rounds'")
        if not isinstance(payload["rounds"], (list, tuple)):
            raise ValueError("rounds must be a list of round records")
        history = cls(str(payload["algorithm"]))
        for round_payload in payload["rounds"]:
            history.append(RoundRecord.from_dict(round_payload))
        return history
