"""Round-by-round training history shared by AdaptiveFL and the baselines."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoundRecord", "TrainingHistory"]


@dataclass
class RoundRecord:
    """Everything recorded about one federated round."""

    round_index: int
    #: accuracy of the full global model (the paper's "full")
    full_accuracy: float | None = None
    #: per-level-head accuracy {"S": ..., "M": ..., "L": ...}
    level_accuracies: dict[str, float] = field(default_factory=dict)
    #: mean of the level-head accuracies (the paper's "avg")
    avg_accuracy: float | None = None
    train_loss: float | None = None
    communication_waste: float | None = None
    dispatched: list[str] = field(default_factory=list)
    returned: list[str] = field(default_factory=list)
    selected_clients: list[int] = field(default_factory=list)
    wall_clock_seconds: float | None = None

    def to_dict(self) -> dict:
        """JSON-friendly summary (the fields the paper's tables/figures use)."""
        return {
            "round": self.round_index,
            "full_accuracy": self.full_accuracy,
            "avg_accuracy": self.avg_accuracy,
            "level_accuracies": self.level_accuracies,
            "train_loss": self.train_loss,
            "communication_waste": self.communication_waste,
            "wall_clock_seconds": self.wall_clock_seconds,
        }


class TrainingHistory:
    """Append-only collection of :class:`RoundRecord` with convenience views."""

    def __init__(self, algorithm: str):
        self.algorithm = algorithm
        self.records: list[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        if self.records and record.round_index <= self.records[-1].round_index:
            raise ValueError("round indices must be strictly increasing")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- series views -----------------------------------------------------------------
    def evaluated_records(self) -> list[RoundRecord]:
        """Records that carry an evaluation (full accuracy is present)."""
        return [record for record in self.records if record.full_accuracy is not None]

    def accuracy_curve(self, kind: str = "full") -> tuple[list[int], list[float]]:
        """(rounds, accuracies) series; ``kind`` is ``"full"`` or ``"avg"``."""
        if kind not in {"full", "avg"}:
            raise ValueError("kind must be 'full' or 'avg'")
        rounds, values = [], []
        for record in self.evaluated_records():
            value = record.full_accuracy if kind == "full" else record.avg_accuracy
            if value is None:
                continue
            rounds.append(record.round_index)
            values.append(value)
        return rounds, values

    def time_curve(self, kind: str = "full") -> tuple[list[float], list[float]]:
        """(cumulative seconds, accuracies); requires wall-clock records."""
        rounds, values = [], []
        elapsed = 0.0
        for record in self.records:
            elapsed += record.wall_clock_seconds or 0.0
            value = record.full_accuracy if kind == "full" else record.avg_accuracy
            if value is None:
                continue
            rounds.append(elapsed)
            values.append(value)
        return rounds, values

    def final_accuracy(self, kind: str = "full") -> float:
        """Best evaluated accuracy over training (the paper reports best test accuracy)."""
        _, values = self.accuracy_curve(kind)
        if not values:
            raise ValueError("history has no evaluated rounds")
        return max(values)

    def mean_communication_waste(self) -> float:
        """Average communication-waste rate across rounds that recorded it."""
        rates = [record.communication_waste for record in self.records if record.communication_waste is not None]
        if not rates:
            raise ValueError("history has no communication-waste records")
        return float(sum(rates) / len(rates))

    def to_dict(self) -> dict:
        """JSON-friendly representation (used by the experiment runner and CLI)."""
        return {
            "algorithm": self.algorithm,
            "rounds": [record.to_dict() for record in self.records],
        }
