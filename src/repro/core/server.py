"""The AdaptiveFL cloud server (paper §3, Algorithm 1).

Each round the server:

1. splits the global model into the heterogeneous model pool (Step 1),
2. randomly draws one pool entry per participant slot (Step 2, RandomSel),
3. selects a client for each drawn model with the RL strategy (Step 3),
4. lets the selected devices adaptively prune and train (Steps 4-5),
5. updates the curiosity and resource tables from the ⟨dispatched,
   returned⟩ pairs (Algorithm 1, lines 12-26),
6. aggregates every upload into the new global model (Step 6, Algorithm 2).

The ``selection_strategy`` knob reproduces the ablation variants of §4.4:
``"rl-cs"`` (the paper's AdaptiveFL), ``"rl-c"``, ``"rl-s"``, ``"random"``
and ``"greedy"`` (always dispatch the full model to randomly chosen
clients).
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_algorithm
from repro.core.aggregation import ClientUpdate, aggregate_heterogeneous
from repro.core.client import ClientRoundResult
from repro.core.config import AdaptiveFLConfig
from repro.core.fl_base import FederatedAlgorithm
from repro.core.history import RoundRecord
from repro.core.metrics import communication_waste_rate
from repro.core.model_pool import SubmodelConfig
from repro.core.pruning import extract_submodel_state, resource_aware_prune
from repro.core.rl_selection import RLClientSelector
from repro.engine.tasks import LocalRoundTask

__all__ = ["AdaptiveFL"]


@register_algorithm(
    "adaptivefl",
    description="AdaptiveFL: fine-grained width-wise pruning + RL client selection (the paper)",
    uses_algorithm_config=True,
    uses_selection_strategy=True,
    order=50,
)
class AdaptiveFL(FederatedAlgorithm):
    """The paper's algorithm: fine-grained pruning + RL client selection."""

    name = "adaptivefl"

    def __init__(self, *args, algorithm_config: AdaptiveFLConfig | None = None, **kwargs):
        self.algorithm_config = algorithm_config or AdaptiveFLConfig()
        kwargs.setdefault("federated_config", self.algorithm_config.federated)
        kwargs.setdefault("local_config", self.algorithm_config.local)
        kwargs.setdefault("pool_config", self.algorithm_config.pool)
        super().__init__(*args, **kwargs)
        self.strategy = self.algorithm_config.selection_strategy
        selector_strategy = "random" if self.strategy == "greedy" else self.strategy
        self.selector = RLClientSelector(
            pool=self.pool,
            num_clients=self.num_clients,
            strategy=selector_strategy,
            resource_reward_cap=self.algorithm_config.resource_reward_cap,
        )

    # -- Algorithm 1 -----------------------------------------------------------------------
    def _draw_model(self, rng: np.random.Generator) -> SubmodelConfig:
        """Step 2 (RandomSel): uniform draw from the pool, or L1 under "greedy"."""
        if self.strategy == "greedy":
            return self.pool.full_config
        index = int(rng.integers(0, len(self.pool)))
        return self.pool.by_rank(index)

    def run_round(self, round_index: int) -> RoundRecord:
        """One round: plan serially (Algorithm 1's control flow), train in parallel.

        The round splits into two phases.  The **planning** phase walks the
        participant slots in order — draw a pool entry, select a client,
        update the RL tables — exactly as the sequential protocol dictates:
        later slots must see earlier slots' table updates.  Those updates
        need only the ⟨dispatched, returned⟩ pair (Algorithm 1, lines
        12-26), and the returned size is the deterministic outcome of
        resource-aware pruning under the capacity the server's resource
        model already simulates, so the whole control flow resolves before
        any training happens.  The **execution** phase then fans the
        independent local rounds out through the executor; per-client RNG
        streams make the result bit-identical to the historical fully
        sequential implementation for every executor choice.
        """
        rng = self.round_rng(round_index)
        selected: set[int] = set()
        tasks: list[LocalRoundTask] = []
        planned_returns: list[SubmodelConfig] = []

        participants = min(self.federated_config.clients_per_round, self.num_clients)
        for _ in range(participants):
            dispatched = self._draw_model(rng)
            client_id = self.selector.select(dispatched, rng, excluded=selected)
            selected.add(client_id)

            capacity = self.client_capacity(client_id, round_index)
            planned_return = resource_aware_prune(self.pool, dispatched, capacity)
            self.selector.update(dispatched, planned_return, client_id)
            planned_returns.append(planned_return)
            tasks.append(
                LocalRoundTask(
                    client=self.clients[client_id],
                    pool=self.pool,
                    dispatched=dispatched,
                    dispatched_state=extract_submodel_state(self.global_state, self.pool, dispatched),
                    available_capacity=capacity,
                    rng_stream=self.client_stream(round_index, client_id),
                )
            )

        results: list[ClientRoundResult] = self.execute_client_tasks(tasks)
        for result, planned_return in zip(results, planned_returns):
            if result.returned.name != planned_return.name:  # pragma: no cover - invariant
                raise RuntimeError(
                    f"client {result.client_id} returned {result.returned.name} but the "
                    f"resource plan predicted {planned_return.name}"
                )

        updates = [ClientUpdate(result.state, result.num_samples) for result in results]
        self.global_state = aggregate_heterogeneous(self.global_state, updates)

        sent_sizes = [result.dispatched.num_params for result in results]
        back_sizes = [result.returned.num_params for result in results]
        record = RoundRecord(
            round_index=round_index,
            train_loss=float(np.mean([result.mean_loss for result in results])) if results else None,
            communication_waste=communication_waste_rate(sent_sizes, back_sizes),
            dispatched=[result.dispatched.name for result in results],
            returned=[result.returned.name for result in results],
            selected_clients=[result.client_id for result in results],
        )
        record.wall_clock_seconds = self.simulate_round_time(
            round_index, record.selected_clients, record.dispatched, record.returned
        )
        return record
