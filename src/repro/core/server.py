"""The AdaptiveFL cloud server (paper §3, Algorithm 1).

Each round the server:

1. splits the global model into the heterogeneous model pool (Step 1),
2. randomly draws one pool entry per participant slot (Step 2, RandomSel),
3. selects a client for each drawn model with the RL strategy (Step 3),
4. lets the selected devices adaptively prune and train (Steps 4-5),
5. updates the curiosity and resource tables from the ⟨dispatched,
   returned⟩ pairs (Algorithm 1, lines 12-26),
6. aggregates every upload into the new global model (Step 6, Algorithm 2).

The ``selection_strategy`` knob reproduces the ablation variants of §4.4:
``"rl-cs"`` (the paper's AdaptiveFL), ``"rl-c"``, ``"rl-s"``, ``"random"``
and ``"greedy"`` (always dispatch the full model to randomly chosen
clients).
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_algorithm
from repro.core.aggregation import ClientUpdate, aggregate_heterogeneous
from repro.core.client import ClientRoundResult
from repro.core.config import AdaptiveFLConfig
from repro.core.fl_base import FederatedAlgorithm
from repro.core.history import RoundRecord
from repro.core.metrics import communication_waste_rate
from repro.core.model_pool import SubmodelConfig
from repro.core.pruning import extract_submodel_state
from repro.core.rl_selection import RLClientSelector

__all__ = ["AdaptiveFL"]


@register_algorithm(
    "adaptivefl",
    description="AdaptiveFL: fine-grained width-wise pruning + RL client selection (the paper)",
    uses_algorithm_config=True,
    uses_selection_strategy=True,
    order=50,
)
class AdaptiveFL(FederatedAlgorithm):
    """The paper's algorithm: fine-grained pruning + RL client selection."""

    name = "adaptivefl"

    def __init__(self, *args, algorithm_config: AdaptiveFLConfig | None = None, **kwargs):
        self.algorithm_config = algorithm_config or AdaptiveFLConfig()
        kwargs.setdefault("federated_config", self.algorithm_config.federated)
        kwargs.setdefault("local_config", self.algorithm_config.local)
        kwargs.setdefault("pool_config", self.algorithm_config.pool)
        super().__init__(*args, **kwargs)
        self.strategy = self.algorithm_config.selection_strategy
        selector_strategy = "random" if self.strategy == "greedy" else self.strategy
        self.selector = RLClientSelector(
            pool=self.pool,
            num_clients=self.num_clients,
            strategy=selector_strategy,
            resource_reward_cap=self.algorithm_config.resource_reward_cap,
        )

    # -- Algorithm 1 -----------------------------------------------------------------------
    def _draw_model(self, rng: np.random.Generator) -> SubmodelConfig:
        """Step 2 (RandomSel): uniform draw from the pool, or L1 under "greedy"."""
        if self.strategy == "greedy":
            return self.pool.full_config
        index = int(rng.integers(0, len(self.pool)))
        return self.pool.by_rank(index)

    def run_round(self, round_index: int) -> RoundRecord:
        rng = self.round_rng(round_index)
        selected: set[int] = set()
        results: list[ClientRoundResult] = []

        participants = min(self.federated_config.clients_per_round, self.num_clients)
        for _ in range(participants):
            dispatched = self._draw_model(rng)
            client_id = self.selector.select(dispatched, rng, excluded=selected)
            selected.add(client_id)

            dispatched_state = extract_submodel_state(self.global_state, self.pool, dispatched)
            capacity = self.client_capacity(client_id, round_index)
            result = self.clients[client_id].local_round(
                pool=self.pool,
                dispatched=dispatched,
                dispatched_state=dispatched_state,
                available_capacity=capacity,
                rng=np.random.default_rng((self.seed, round_index, client_id)),
            )
            results.append(result)
            self.selector.update(result.dispatched, result.returned, client_id)

        updates = [ClientUpdate(result.state, result.num_samples) for result in results]
        self.global_state = aggregate_heterogeneous(self.global_state, updates)

        sent_sizes = [result.dispatched.num_params for result in results]
        back_sizes = [result.returned.num_params for result in results]
        record = RoundRecord(
            round_index=round_index,
            train_loss=float(np.mean([result.mean_loss for result in results])) if results else None,
            communication_waste=communication_waste_rate(sent_sizes, back_sizes),
            dispatched=[result.dispatched.name for result in results],
            returned=[result.returned.name for result in results],
            selected_clients=[result.client_id for result in results],
        )
        record.wall_clock_seconds = self.simulate_round_time(
            round_index, record.selected_clients, record.dispatched, record.returned
        )
        return record
