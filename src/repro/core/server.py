"""The AdaptiveFL cloud server (paper §3, Algorithm 1).

Each round the server:

1. splits the global model into the heterogeneous model pool (Step 1),
2. randomly draws one pool entry per participant slot (Step 2, RandomSel),
3. selects a client for each drawn model with the RL strategy (Step 3),
4. lets the selected devices adaptively prune and train (Steps 4-5),
5. updates the curiosity and resource tables from the ⟨dispatched,
   returned⟩ pairs (Algorithm 1, lines 12-26),
6. aggregates every upload into the new global model (Step 6, Algorithm 2).

The ``selection_strategy`` knob reproduces the ablation variants of §4.4:
``"rl-cs"`` (the paper's AdaptiveFL), ``"rl-c"``, ``"rl-s"``, ``"random"``
and ``"greedy"`` (always dispatch the full model to randomly chosen
clients).
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_algorithm
from repro.core.aggregation import ClientUpdate
from repro.core.client import ClientRoundResult
from repro.core.config import AdaptiveFLConfig
from repro.core.fl_base import FederatedAlgorithm
from repro.core.history import RoundRecord
from repro.core.metrics import communication_waste_rate
from repro.core.model_pool import SubmodelConfig
from repro.core.pruning import extract_submodel_state, resource_aware_prune
from repro.core.rl_selection import RLClientSelector, StreamingRLClientSelector
from repro.engine.tasks import LocalRoundTask
from repro.sim.cohorts import STREAMING_SELECTION_THRESHOLD

__all__ = ["AdaptiveFL"]


@register_algorithm(
    "adaptivefl",
    description="AdaptiveFL: fine-grained width-wise pruning + RL client selection (the paper)",
    uses_algorithm_config=True,
    uses_selection_strategy=True,
    order=50,
)
class AdaptiveFL(FederatedAlgorithm):
    """The paper's algorithm: fine-grained pruning + RL client selection."""

    name = "adaptivefl"

    def __init__(self, *args, algorithm_config: AdaptiveFLConfig | None = None, **kwargs):
        self.algorithm_config = algorithm_config or AdaptiveFLConfig()
        kwargs.setdefault("federated_config", self.algorithm_config.federated)
        kwargs.setdefault("local_config", self.algorithm_config.local)
        kwargs.setdefault("pool_config", self.algorithm_config.pool)
        super().__init__(*args, **kwargs)
        self.strategy = self.algorithm_config.selection_strategy
        selector_strategy = "random" if self.strategy == "greedy" else self.strategy
        # "auto" keeps the historical dense tables (bit-identical traces) below
        # the streaming threshold and switches to O(selected) sparse tables +
        # mask-based selection at fleet scale
        backend = self.algorithm_config.selector_backend
        if backend == "auto":
            backend = "streaming" if self.num_clients >= STREAMING_SELECTION_THRESHOLD else "dense"
        self.selector_backend = backend
        selector_cls = StreamingRLClientSelector if backend == "streaming" else RLClientSelector
        self.selector = selector_cls(
            pool=self.pool,
            num_clients=self.num_clients,
            strategy=selector_strategy,
            resource_reward_cap=self.algorithm_config.resource_reward_cap,
        )

    # -- checkpointing ---------------------------------------------------------------------
    def _collect_extra_state(self, arrays, state) -> None:
        """Checkpoint the RL selection tables alongside the weights.

        The curiosity and resource tables are the only AdaptiveFL state
        beyond the shared base; persisting them is what lets a resumed run
        select clients exactly as the uninterrupted run would have.
        """
        for key, table in self.selector.state_dict().items():
            arrays[f"rl/{key}"] = table

    def _apply_extra_state(self, arrays, state) -> None:
        """Restore the RL tables captured by ``_collect_extra_state``.

        The dense backend persists ``rl/curiosity_table`` + ``rl/resource_table``;
        the streaming backend persists ``rl/client_ids`` + the touched columns.
        Each backend restores its own format and rejects the other with a
        pointer at ``selector_backend``, so a mismatch fails loudly instead of
        silently resetting the tables.
        """
        if isinstance(self.selector, StreamingRLClientSelector):
            required = ("rl/client_ids", "rl/curiosity_columns", "rl/resource_columns")
        else:
            required = ("rl/curiosity_table", "rl/resource_table")
        missing = [key for key in required if key not in arrays]
        if missing:
            raise ValueError(
                f"checkpoint is missing AdaptiveFL RL state: {', '.join(missing)} "
                f"(was it written with a different selector_backend than "
                f"{self.selector_backend!r}?)"
            )
        self.selector.load_state_dict(
            {key.removeprefix("rl/"): arrays[key] for key in required}
        )

    # -- Algorithm 1 -----------------------------------------------------------------------
    def _draw_model(self, rng: np.random.Generator) -> SubmodelConfig:
        """Step 2 (RandomSel): uniform draw from the pool, or L1 under "greedy"."""
        if self.strategy == "greedy":
            return self.pool.full_config
        index = int(rng.integers(0, len(self.pool)))
        return self.pool.by_rank(index)

    def run_round(self, round_index: int) -> RoundRecord:
        """One round: plan serially (Algorithm 1's control flow), train in parallel.

        The round splits into two phases.  The **planning** phase walks the
        participant slots in order — draw a pool entry, select a client,
        update the RL tables — exactly as the sequential protocol dictates:
        later slots must see earlier slots' table updates.  Those updates
        need only the ⟨dispatched, returned⟩ pair (Algorithm 1, lines
        12-26), and the returned size is the deterministic outcome of
        resource-aware pruning under the capacity the server's resource
        model already simulates, so the whole control flow resolves before
        any training happens.  The **execution** phase then fans the
        independent local rounds out through the executor; per-client RNG
        streams make the result bit-identical to the historical fully
        sequential implementation for every executor choice.
        """
        rng = self.round_rng(round_index)
        streaming = isinstance(self.selector, StreamingRLClientSelector)
        allowed_mask: np.ndarray | None = None
        excluded: set[int] = set()
        if streaming:
            # mask-based planning: never materialise per-client python objects
            # for the whole fleet — availability arrives as a boolean array and
            # selected clients are cleared bit by bit
            allowed_mask = self.selectable_mask(round_index)
            if allowed_mask is None:
                allowed_mask = np.ones(self.num_clients, dtype=bool)
            else:
                allowed_mask = allowed_mask.copy()
            participants = min(self.dispatch_count(), int(np.count_nonzero(allowed_mask)))
        else:
            available = self.selectable_clients(round_index)
            # unavailable clients are folded into the selector's exclusion set, so
            # the RL machinery runs unchanged over the reachable fleet
            excluded = set() if available is None else set(range(self.num_clients)) - set(available)
            participants = (
                self.dispatch_count()
                if available is None
                else min(self.dispatch_count(), len(available))
            )

        selected: list[int] = []
        capacities: list[float] = []
        dispatched_configs: list[SubmodelConfig] = []
        planned_returns: list[SubmodelConfig] = []
        for _ in range(participants):
            dispatched = self._draw_model(rng)
            if streaming:
                assert allowed_mask is not None
                client_id = self.selector.select_from_mask(dispatched, rng, allowed_mask)
                allowed_mask[client_id] = False
            else:
                client_id = self.selector.select(dispatched, rng, excluded=excluded)
                excluded.add(client_id)
            selected.append(client_id)

            capacity = self.client_capacity(client_id, round_index)
            planned_return = resource_aware_prune(self.pool, dispatched, capacity)
            self.selector.update(dispatched, planned_return, client_id)
            capacities.append(capacity)
            dispatched_configs.append(dispatched)
            planned_returns.append(planned_return)

        dispatched_names = [config.name for config in dispatched_configs]
        returned_names = [config.name for config in planned_returns]
        outcome = self.plan_round_outcome(round_index, selected, dispatched_names, returned_names)
        keep = list(outcome.aggregated_positions()) if outcome is not None else list(range(participants))

        # slice/delta transport: publish the global state once; each task
        # carries only a handle plus the *planned-return* configuration, so
        # the worker cuts exactly the slice the device trains.  Legacy
        # "full" transport ships the dispatched slice inside the task.
        handle = self.publish_state(self.global_state)
        tasks = [
            LocalRoundTask(
                client=self.dispatch_client(selected[i]),
                pool=self.pool,
                dispatched=dispatched_configs[i],
                dispatched_state=(
                    handle
                    if handle is not None
                    else extract_submodel_state(self.global_state, self.pool, dispatched_configs[i])
                ),
                available_capacity=capacities[i],
                rng_stream=self.client_stream(round_index, selected[i]),
                planned_return=planned_returns[i] if handle is not None else None,
                delta_upload=handle is not None,
                codec=self._codec,
                codec_residual=self.codec_residual_for(
                    selected[i], self.pool.group_sizes(planned_returns[i])
                ),
                trace=self.task_trace(),
            )
            for i in keep
        ]
        for i in keep:
            # modeled downlink: the slice the device trains (delta mode)
            # or the dispatched slice it receives (full mode)
            config = planned_returns[i] if handle is not None else dispatched_configs[i]
            self.count_downlink(num_params=config.num_params)
        with self.profiler.scope("round.training"):
            results: list[ClientRoundResult] = self.execute_client_tasks(tasks)
        for i, result in zip(keep, results):
            if result.returned.name != planned_returns[i].name:  # pragma: no cover - invariant
                raise RuntimeError(
                    f"client {result.client_id} returned {result.returned.name} but the "
                    f"resource plan predicted {planned_returns[i].name}"
                )

        if results:
            # generator, not a list: each decoded full-size update exists only
            # while the aggregator folds it into the reused partial-sum
            # buffers, so peak memory holds one delta instead of all of them
            updates = (
                ClientUpdate(
                    self.decode_result_state(
                        result.state, self.pool.group_sizes(result.returned), self.global_state
                    ),
                    result.num_samples,
                )
                for result in results
            )
            self.global_state = self.aggregate(updates)

        # waste counts every dispatch: a dropped/late client's downlinked model
        # returns nothing, which is exactly the waste the paper's §4.4 rate measures
        aggregated = set(keep)
        sent_sizes = [config.num_params for config in dispatched_configs]
        back_sizes = [
            planned_returns[i].num_params if i in aggregated else 0 for i in range(participants)
        ]
        record = RoundRecord(
            round_index=round_index,
            train_loss=float(np.mean([result.mean_loss for result in results])) if results else None,
            communication_waste=communication_waste_rate(sent_sizes, back_sizes) if selected else None,
            dispatched=dispatched_names,
            returned=returned_names,
            selected_clients=selected,
        )
        return self.finalize_round(record, outcome)
