"""AdaptiveFL core: the paper's contribution.

* :mod:`repro.core.pruning` — fine-grained width-wise model pruning,
* :mod:`repro.core.model_pool` — the heterogeneous model pool (S/M/L × p),
* :mod:`repro.core.rl_selection` — RL-based client selection,
* :mod:`repro.core.aggregation` — heterogeneous model aggregation,
* :mod:`repro.core.server` — the AdaptiveFL training loop,
* :mod:`repro.core.fl_base` — shared federated scaffolding reused by the
  baselines.
"""

from repro.core.aggregation import ClientUpdate, aggregate_heterogeneous, fedavg_aggregate
from repro.core.client import ClientRoundResult, SimulatedClient
from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig, ModelPoolConfig
from repro.core.fl_base import FederatedAlgorithm
from repro.core.history import RoundRecord, TrainingHistory
from repro.core.local_training import LocalTrainingResult, train_local_model
from repro.core.metrics import communication_waste_rate, evaluate_model, evaluate_state
from repro.core.model_pool import LEVELS, ModelPool, SubmodelConfig
from repro.core.pruning import (
    build_submodel,
    extract_submodel_state,
    resource_aware_prune,
    slice_state_dict,
    slice_tensor,
)
from repro.core.rl_selection import RLClientSelector
from repro.core.server import AdaptiveFL

__all__ = [
    "AdaptiveFL",
    "AdaptiveFLConfig",
    "FederatedConfig",
    "LocalTrainingConfig",
    "ModelPoolConfig",
    "FederatedAlgorithm",
    "ModelPool",
    "SubmodelConfig",
    "LEVELS",
    "RLClientSelector",
    "ClientUpdate",
    "aggregate_heterogeneous",
    "fedavg_aggregate",
    "ClientRoundResult",
    "SimulatedClient",
    "LocalTrainingResult",
    "train_local_model",
    "TrainingHistory",
    "RoundRecord",
    "evaluate_model",
    "evaluate_state",
    "communication_waste_rate",
    "slice_tensor",
    "slice_state_dict",
    "extract_submodel_state",
    "build_submodel",
    "resource_aware_prune",
]
