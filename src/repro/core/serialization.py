"""Helpers for strict ``to_dict``/``from_dict`` round-trips of config dataclasses.

Every configuration dataclass in the repository serialises to plain
JSON-compatible dicts and reconstructs from them with *strict* key
checking: unknown keys raise :class:`ValueError` (catching typos in spec
files early) and value validation is delegated to the dataclass's own
``__post_init__``.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, Mapping

__all__ = ["checked_payload", "coerce_int_tuple"]


def checked_payload(cls: type, payload: Any) -> dict:
    """Validate that ``payload`` is a mapping whose keys all belong to ``cls``.

    Returns a plain-dict copy safe to splat into the dataclass constructor.
    """
    if not is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    if not isinstance(payload, Mapping):
        raise ValueError(f"{cls.__name__} payload must be a mapping, got {type(payload).__name__}")
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ValueError(
            f"{cls.__name__} does not accept key(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )
    return dict(payload)


def coerce_int_tuple(value: Any, *, field_name: str) -> tuple[int, ...]:
    """Coerce a JSON list (or tuple) of whole numbers to a tuple of ints.

    Fractional values are rejected rather than truncated — a spec file
    saying ``7.9`` meant something other than ``7``.
    """
    if not isinstance(value, (list, tuple)):
        raise ValueError(f"{field_name} must be a list of integers, got {type(value).__name__}")
    items = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, (int, float)) or float(item) != int(item):
            raise ValueError(f"{field_name} entries must be whole numbers, got {item!r}")
        items.append(int(item))
    return tuple(items)
