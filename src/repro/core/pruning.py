"""Fine-grained width-wise model pruning (paper §3.2).

Two operations:

* **Server-side splitting** — slice the global state dict into a submodel
  state dict for a (``r_w``, ``I``) configuration (:func:`slice_state_dict`
  / :func:`extract_submodel_state`).  Submodels keep the *first*
  ``round(d_k · r_w)`` channels of every pruned layer, so their parameters
  are prefix blocks of the global tensors.
* **Device-side resource-aware pruning** — given the submodel a device
  received and its currently available resource budget Γ, choose the
  largest reachable configuration not exceeding Γ
  (:func:`resource_aware_prune`), implementing the paper's
  ``argmax size(prune(W; r_w, I)) s.t. size ≤ Γ, I ≥ τ``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.model_pool import ModelPool, SubmodelConfig
from repro.nn.models.spec import ParamSpec, SlimmableArchitecture

__all__ = [
    "slice_tensor",
    "slice_state_dict",
    "extract_submodel_state",
    "build_submodel",
    "resource_aware_prune",
]


def slice_tensor(tensor: np.ndarray, spec: ParamSpec, group_sizes: Mapping[str, int]) -> np.ndarray:
    """Prefix-slice one tensor according to its parameter spec.

    Axis 0 is cut to the out-group size and axis 1 (if tied to a group) to
    the in-group size times ``in_repeat``; remaining axes (conv kernels)
    are untouched.
    """
    result = tensor
    if spec.out_group is not None:
        keep = group_sizes[spec.out_group]
        if keep > tensor.shape[0]:
            raise ValueError(
                f"cannot keep {keep} output channels of {spec.name!r} with shape {tensor.shape}"
            )
        result = result[:keep]
    if spec.in_group is not None and tensor.ndim > 1:
        keep = group_sizes[spec.in_group] * spec.in_repeat
        if keep > tensor.shape[1]:
            raise ValueError(
                f"cannot keep {keep} input channels of {spec.name!r} with shape {tensor.shape}"
            )
        result = result[:, :keep]
    return np.ascontiguousarray(result)


def slice_state_dict(
    state: Mapping[str, np.ndarray],
    architecture: SlimmableArchitecture,
    group_sizes: Mapping[str, int],
) -> dict[str, np.ndarray]:
    """Slice a full state dict down to a submodel's channel configuration."""
    architecture.validate_group_sizes(group_sizes)
    sliced: dict[str, np.ndarray] = {}
    for spec in architecture.param_specs():
        if spec.name not in state:
            raise KeyError(f"state dict is missing {spec.name!r}")
        sliced[spec.name] = slice_tensor(np.asarray(state[spec.name]), spec, group_sizes)
    return sliced


def extract_submodel_state(
    state: Mapping[str, np.ndarray],
    pool: ModelPool,
    config: SubmodelConfig,
) -> dict[str, np.ndarray]:
    """Slice the global state dict for one model-pool entry."""
    return slice_state_dict(state, pool.architecture, pool.group_sizes(config))


def build_submodel(
    pool: ModelPool,
    config: SubmodelConfig,
    state: Mapping[str, np.ndarray] | None = None,
    rng: np.random.Generator | None = None,
):
    """Instantiate the network of a pool entry, optionally loading weights.

    ``state`` may be either the *global* state dict (it is sliced first) or
    an already-sliced submodel state dict.
    """
    group_sizes = pool.group_sizes(config)
    model = pool.architecture.build(group_sizes, rng=rng)
    if state is not None:
        expected = model.state_dict()
        already_sliced = all(
            np.asarray(state[name]).shape == value.shape for name, value in expected.items()
        )
        if already_sliced:
            candidate = {name: np.asarray(state[name]) for name in expected}
        else:
            candidate = slice_state_dict(state, pool.architecture, group_sizes)
        model.load_state_dict(candidate)
    return model


def resource_aware_prune(
    pool: ModelPool,
    received: SubmodelConfig,
    available_capacity: float,
) -> SubmodelConfig:
    """Choose the configuration a device actually trains (paper §3.2).

    Among the pool entries reachable by pruning the received model, return
    the one with the largest parameter count that still fits the device's
    available capacity Γ.  If even the smallest reachable entry exceeds Γ,
    that smallest entry is returned (training proceeds with the smallest
    model rather than failing, mirroring the paper's goal of never wasting
    a dispatched model).
    """
    if available_capacity <= 0:
        raise ValueError("available_capacity must be positive")
    if received.num_params <= available_capacity:
        # No pruning needed: the device trains exactly what it received.
        return received
    candidates = pool.prunable_to(received)
    if not candidates:
        raise RuntimeError(f"no pool entry is reachable from {received.name}")
    fitting = [cfg for cfg in candidates if cfg.num_params <= available_capacity]
    if fitting:
        return max(fitting, key=lambda cfg: cfg.num_params)
    return min(candidates, key=lambda cfg: cfg.num_params)
