"""The simulated AIoT device (client) side of AdaptiveFL.

A client receives a dispatched submodel, measures its *currently
available* resources, adaptively prunes the received model if needed
(paper §3.2, "Available Resource-Aware Pruning"), trains it on local data
and uploads the result.  The server never sees the client's resources —
only the returned model's size, which is what the RL tables learn from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import LocalTrainingConfig
from repro.core.local_training import LocalTrainingResult, train_local_model
from repro.core.model_pool import ModelPool, SubmodelConfig
from repro.core.pruning import resource_aware_prune, slice_state_dict
from repro.data.datasets import Dataset
from repro.devices.profiles import DeviceProfile
from repro.engine.transport import StateHandle

__all__ = ["ClientRoundResult", "SimulatedClient"]


@dataclass
class ClientRoundResult:
    """What a client reports back to the server after one round."""

    client_id: int
    dispatched: SubmodelConfig
    returned: SubmodelConfig
    state: dict[str, np.ndarray]
    num_samples: int
    mean_loss: float
    locally_pruned: bool


class SimulatedClient:
    """One AIoT device participating in federated training.

    ``dataset`` may be a published transport handle
    (:class:`~repro.engine.transport.StateHandle`): it resolves lazily —
    against the per-worker cache when the client was pickled to a worker
    process, or to the in-process reference otherwise — so dispatching a
    client never re-ships its local data.
    """

    def __init__(
        self,
        client_id: int,
        dataset: "Dataset | StateHandle",
        profile: DeviceProfile,
        local_config: LocalTrainingConfig,
    ):
        if not isinstance(dataset, StateHandle) and len(dataset) == 0:
            raise ValueError(f"client {client_id} has no local data")
        self.client_id = client_id
        self._dataset = dataset
        self.profile = profile
        self.local_config = local_config

    @property
    def dataset(self) -> Dataset:
        if isinstance(self._dataset, StateHandle):
            self._dataset = self._dataset.load()
            if len(self._dataset) == 0:
                raise ValueError(f"client {self.client_id} has no local data")
        return self._dataset

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def adapt_model(
        self,
        pool: ModelPool,
        dispatched: SubmodelConfig,
        dispatched_state: dict[str, np.ndarray],
        available_capacity: float,
    ) -> tuple[SubmodelConfig, dict[str, np.ndarray]]:
        """Prune the received model to fit the available resources.

        Returns the configuration actually trained and the corresponding
        weights (a further prefix slice of the dispatched weights when
        pruning happened).
        """
        target = resource_aware_prune(pool, dispatched, available_capacity)
        if target.name == dispatched.name:
            return dispatched, dispatched_state
        sliced = slice_state_dict(dispatched_state, pool.architecture, pool.group_sizes(target))
        return target, sliced

    def local_round(
        self,
        pool: ModelPool,
        dispatched: SubmodelConfig,
        dispatched_state: dict[str, np.ndarray],
        available_capacity: float,
        rng: np.random.Generator,
    ) -> ClientRoundResult:
        """Receive a model, adapt it, train it and return the upload."""
        trained_config, initial_state = self.adapt_model(pool, dispatched, dispatched_state, available_capacity)
        result: LocalTrainingResult = train_local_model(
            architecture=pool.architecture,
            group_sizes=pool.group_sizes(trained_config),
            initial_state=initial_state,
            dataset=self.dataset,
            config=self.local_config,
            rng=rng,
        )
        return ClientRoundResult(
            client_id=self.client_id,
            dispatched=dispatched,
            returned=trained_config,
            state=result.state,
            num_samples=result.num_samples,
            mean_loss=result.mean_loss,
            locally_pruned=trained_config.name != dispatched.name,
        )
