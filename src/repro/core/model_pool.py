"""The heterogeneous model pool (Step 1 of every AdaptiveFL round).

The cloud server splits the full global model into ``2p + 1`` submodels at
three size levels.  Each submodel is identified by its level (S/M/L) and a
rank within the level, and is fully described by its width ratio ``r_w``
and starting pruning layer ``I`` — Table 1 of the paper for VGG16 with
``p = 3``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ModelPoolConfig
from repro.nn.models.spec import SlimmableArchitecture

__all__ = ["SubmodelConfig", "ModelPool", "LEVELS"]

#: size levels, smallest first
LEVELS: tuple[str, ...] = ("S", "M", "L")


@dataclass(frozen=True)
class SubmodelConfig:
    """One entry of the model pool.

    ``rank`` orders the pool from the smallest submodel (rank 0) to the
    unpruned global model (rank ``2p``); ``level_rank`` is the paper's
    subscript within a level (1 = largest of its level).
    """

    name: str
    level: str
    level_rank: int
    rank: int
    width_ratio: float
    start_layer: int | None
    num_params: int

    @property
    def is_full(self) -> bool:
        return self.width_ratio >= 1.0

    def __post_init__(self) -> None:
        if self.level not in LEVELS:
            raise ValueError(f"level must be one of {LEVELS}, got {self.level!r}")
        if not 0.0 < self.width_ratio <= 1.0:
            raise ValueError("width_ratio must be in (0, 1]")
        if self.num_params <= 0:
            raise ValueError("num_params must be positive")


class ModelPool:
    """All submodel configurations the server can dispatch.

    The pool is ordered by parameter count (ascending), mirroring the
    paper's ``R = {m_Sp, ..., m_S1, m_Mp, ..., m_M1, m_L1}``.
    """

    def __init__(self, architecture: SlimmableArchitecture, config: ModelPoolConfig):
        self.architecture = architecture
        self.config = config
        max_layer = architecture.num_prunable_layers()
        if max(config.start_layers) >= max_layer:
            raise ValueError(
                f"start layers {config.start_layers} must be smaller than the number of "
                f"prunable layers ({max_layer}) of {architecture.name!r}"
            )
        self._configs = self._build_configs()
        self._by_name = {cfg.name: cfg for cfg in self._configs}

    def _build_configs(self) -> list[SubmodelConfig]:
        configs: list[SubmodelConfig] = []
        p = self.config.models_per_level
        for level in ("S", "M"):
            ratio = self.config.level_width_ratios[level]
            for level_rank, start_layer in enumerate(self.config.start_layers, start=1):
                sizes = self.architecture.group_sizes_for(ratio, start_layer)
                configs.append(
                    SubmodelConfig(
                        name=f"{level}{level_rank}",
                        level=level,
                        level_rank=level_rank,
                        rank=-1,
                        width_ratio=ratio,
                        start_layer=start_layer,
                        num_params=self.architecture.parameter_count(sizes),
                    )
                )
        configs.append(
            SubmodelConfig(
                name="L1",
                level="L",
                level_rank=1,
                rank=-1,
                width_ratio=1.0,
                start_layer=None,
                num_params=self.architecture.parameter_count(),
            )
        )
        configs.sort(key=lambda cfg: cfg.num_params)
        ranked = [
            SubmodelConfig(
                name=cfg.name,
                level=cfg.level,
                level_rank=cfg.level_rank,
                rank=rank,
                width_ratio=cfg.width_ratio,
                start_layer=cfg.start_layer,
                num_params=cfg.num_params,
            )
            for rank, cfg in enumerate(configs)
        ]
        expected = 2 * p + 1
        if len(ranked) != expected:
            raise RuntimeError(f"expected {expected} pool entries, built {len(ranked)}")
        return ranked

    # -- access -------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._configs)

    def __iter__(self):
        return iter(self._configs)

    @property
    def configs(self) -> list[SubmodelConfig]:
        return list(self._configs)

    @property
    def full_config(self) -> SubmodelConfig:
        return self._configs[-1]

    def by_name(self, name: str) -> SubmodelConfig:
        """Look up a pool entry such as ``"S2"`` or ``"L1"``."""
        if name not in self._by_name:
            raise KeyError(f"unknown submodel {name!r}; pool has {sorted(self._by_name)}")
        return self._by_name[name]

    def by_rank(self, rank: int) -> SubmodelConfig:
        """Look up a pool entry by its size rank (0 = smallest)."""
        return self._configs[rank]

    def level_heads(self) -> dict[str, SubmodelConfig]:
        """The largest submodel of each level (S1, M1, L1) — used for the
        per-level "avg" evaluation of Table 2."""
        heads: dict[str, SubmodelConfig] = {}
        for cfg in self._configs:
            if cfg.level_rank == 1:
                heads[cfg.level] = cfg
        return heads

    def group_sizes(self, config: SubmodelConfig) -> dict[str, int]:
        """Channel-group sizes of one pool entry."""
        return self.architecture.group_sizes_for(config.width_ratio, config.start_layer)

    def size_of(self, config: SubmodelConfig) -> int:
        """Parameter count of one pool entry."""
        return config.num_params

    def level_index(self, level: str) -> int:
        """Index of a level in the curiosity table (0 = S, 1 = M, 2 = L)."""
        return LEVELS.index(level)

    def fits_within(self, inner: SubmodelConfig, outer: SubmodelConfig) -> bool:
        """True when ``inner`` keeps no more channels than ``outer`` in every group.

        A device that received ``outer`` can only return submodels that fit
        within it, because local pruning can drop channels but never
        recreate ones the dispatched model did not carry.
        """
        inner_sizes = self.group_sizes(inner)
        outer_sizes = self.group_sizes(outer)
        return all(inner_sizes[name] <= outer_sizes[name] for name in inner_sizes)

    def prunable_to(self, received: SubmodelConfig) -> list[SubmodelConfig]:
        """Pool entries a device can reach by pruning ``received`` (incl. itself)."""
        return [cfg for cfg in self._configs if self.fits_within(cfg, received)]
