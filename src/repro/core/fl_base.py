"""Shared federated-training scaffolding for AdaptiveFL and the baselines.

Every algorithm in this repository follows the same synchronous FL
protocol: select participants, dispatch weights, train locally, aggregate,
evaluate.  :class:`FederatedAlgorithm` implements the common machinery
(client construction, per-round and per-client RNG streams, the parallel
client-execution engine, evaluation of the global model and of the
per-level heads, history bookkeeping, optional wall-clock simulation);
subclasses implement :meth:`run_round` and dispatch their per-client work
through :meth:`run_local_training` / :meth:`execute_client_tasks`, which
fan out across the configured :class:`~repro.engine.base.Executor`
(``federated_config.executor``) with bit-identical results for every
executor choice.  When a :mod:`repro.sim` scenario is active
(``federated_config.scenario`` or the ``scenario=`` argument), rounds are
conditioned on the fleet's simulated dynamics: :meth:`dispatch_count`
adds the scenario's over-selection margin, :meth:`selectable_clients`
restricts selection to reachable devices, :meth:`plan_round_outcome`
simulates arrivals/dropouts/deadlines before training fans out, and
:meth:`finalize_round` — the single shared hook every ``run_round``
returns through — records wall-clock, arrivals, drops and bytes on the
:class:`~repro.core.history.RoundRecord`.  :meth:`run` drives the
:class:`repro.api.callbacks.Callback` hook protocol (round start/end,
evaluation, fit end) and honours :meth:`request_stop` for early stopping.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.api.callbacks import Callback, CallbackList, ProgressCallback
from repro.core.aggregation import ClientUpdate, HeterogeneousAggregator
from repro.core.config import FederatedConfig, LocalTrainingConfig, ModelPoolConfig
from repro.core.client import SimulatedClient
from repro.core.history import RoundRecord, TrainingHistory
from repro.core.local_training import LocalTrainingResult
from repro.core.metrics import evaluate_state
from repro.core.pruning import slice_state_dict
from repro.engine.base import Executor
from repro.engine.codecs import EncodedUpdate, UpdateCodec, apply_encoded_update, get_codec
from repro.engine.factory import create_executor
from repro.engine.rng import client_stream
from repro.engine.tasks import ClientTask, TrainSubmodelTask
from repro.engine.transport import StateHandle, StateStore, decode_upload, state_nbytes
from repro.obs.events import get_event_bus
from repro.obs.metrics import registry as obs_registry
from repro.obs.trace import TraceContext, new_span_id, new_trace_id
from repro.obs.clock import monotonic
from repro.perf.profiler import Profiler
from repro.perf.workspace import reset_workspace_stats, workspace_stats
from repro.core.model_pool import ModelPool
from repro.data.datasets import Dataset
from repro.data.partition import ClientPartition
from repro.devices.profiles import DeviceProfile
from repro.devices.resources import ResourceModel
from repro.devices.testbed import TestbedSimulator
from repro.nn.dtype import resolve_dtype
from repro.nn.models.spec import SlimmableArchitecture
from repro.perf.flops import count_flops

if TYPE_CHECKING:  # pragma: no cover - typing only
    # imported lazily at runtime: repro.sim.scenario pulls in
    # repro.core.serialization, so a module-level import here would make
    # `import repro.sim` (before repro.core is initialised) circular
    from repro.sim.fleet import FleetSimulator, RoundOutcome
    from repro.sim.scenario import ScenarioSpec
    from repro.store.checkpoint import Checkpoint

__all__ = ["FederatedAlgorithm"]


class FederatedAlgorithm(ABC):
    """Base class of every federated algorithm in the repository."""

    #: short identifier ("adaptivefl", "all_large", "heterofl", ...)
    name: str = "federated"

    def __init__(
        self,
        architecture: SlimmableArchitecture,
        train_dataset: Dataset,
        partition: ClientPartition,
        test_dataset: Dataset,
        profiles: list[DeviceProfile],
        federated_config: FederatedConfig,
        local_config: LocalTrainingConfig,
        pool_config: ModelPoolConfig | None = None,
        resource_model: ResourceModel | None = None,
        testbed: TestbedSimulator | None = None,
        scenario: "ScenarioSpec | str | None" = None,
        seed: int = 0,
        fleet_engine: str = "auto",
    ):
        if partition.num_clients != len(profiles):
            raise ValueError("partition and device profiles must cover the same number of clients")
        if federated_config.clients_per_round > partition.num_clients:
            raise ValueError("clients_per_round cannot exceed the number of clients")
        self.architecture = architecture
        self.train_dataset = train_dataset
        self.partition = partition
        self.test_dataset = test_dataset
        self.profiles = list(profiles)
        self.federated_config = federated_config
        self.local_config = local_config
        self.pool = ModelPool(architecture, pool_config or ModelPoolConfig())
        self.resource_model = resource_model or ResourceModel(
            self.profiles, architecture.parameter_count(), uncertainty=0.0, seed=seed
        )
        self.testbed = testbed
        self.seed = seed
        self.rng = np.random.default_rng(seed)

        # -- fleet simulation (repro.sim): an explicit `scenario=` argument wins,
        # otherwise the federated config's scenario name applies; each algorithm
        # owns its fleet because fleets are stateful (batteries, availability)
        from repro.sim.fleet import FleetSimulator
        from repro.sim.scenario import get_scenario

        if scenario is None:
            scenario = federated_config.scenario
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        if scenario is not None and testbed is not None:
            raise ValueError(
                "pass either a legacy testbed or a scenario, not both; the "
                "'paper_testbed' scenario reproduces the testbed numbers exactly"
            )
        self.scenario: "ScenarioSpec | None" = scenario
        self.fleet: "FleetSimulator | None" = (
            FleetSimulator(scenario, num_clients=partition.num_clients, seed=seed, engine=fleet_engine)
            if scenario is not None
            else None
        )

        self.clients = [
            SimulatedClient(
                client_id=index,
                dataset=partition.client_dataset(train_dataset, index),
                profile=profiles[index],
                local_config=local_config,
            )
            for index in range(partition.num_clients)
        ]
        self.global_state = architecture.build(rng=np.random.default_rng(seed)).state_dict()
        self.history = TrainingHistory(self.name)
        self._executor: Executor | None = None
        self._owns_executor = False
        self._flops_cache: dict[str, int] = {}
        #: phase-grained scoped timers + transport/workspace counters
        #: (disabled unless run(profile=True) / CLI --profile enables it)
        self.profiler = Profiler(enabled=False)
        #: reused accumulation buffers for heterogeneous aggregation
        self._aggregator = HeterogeneousAggregator()
        #: lossy update codec layered on the transport ("none" resolves to
        #: None so the exact delta/full paths stay byte-for-byte untouched)
        self._codec: UpdateCodec | None = (
            get_codec(federated_config.transport_codec)
            if federated_config.transport_codec != "none"
            else None
        )
        #: server-banked per-client error-feedback residuals at full-model
        #: shapes (device-local state in a real fleet; keeping it here keyed
        #: by client id is what makes lossy runs executor-independent)
        self._codec_residuals: dict[int, dict[str, np.ndarray]] = {}
        #: true wire-byte accounting of the round in flight (reset by
        #: :meth:`finalize_round`); encoded sizes, never nominal ones
        self._round_bytes_up = 0
        self._round_raw_bytes_up = 0
        self._round_bytes_down = 0
        #: one publisher per logical weight stream (slice/delta transport)
        self._state_stores: dict[str, StateStore] = {}
        #: one-time published per-client datasets (delta transport): workers
        #: cache them across rounds, so dispatching never re-ships data
        self._dataset_handles: dict[int, StateHandle] = {}
        #: built eval networks per group-size configuration (weights are
        #: reloaded per evaluation; construction happens once)
        self._eval_model_cache: dict = {}
        #: total rounds of the active run() (read by progress callbacks)
        self.planned_rounds: int | None = None
        self._stop_reason: str | None = None
        #: telemetry identity of the round in flight ("" outside run())
        self.current_trace_id: str = ""

    # -- hooks --------------------------------------------------------------------------
    @abstractmethod
    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one federated round and return its (unevaluated) record."""

    # -- helpers ------------------------------------------------------------------------
    @property
    def num_clients(self) -> int:
        return len(self.clients)

    def round_rng(self, round_index: int) -> np.random.Generator:
        """Deterministic per-round RNG, independent of evaluation cadence."""
        return np.random.default_rng((self.seed, round_index))

    def client_stream(self, round_index: int, client_id: int) -> np.random.SeedSequence:
        """The private RNG stream of one client's work in one round.

        Streams are keyed on (seed, round, client), so a client's local
        training is bit-identical no matter which executor, worker or
        execution order runs it.
        """
        return client_stream(self.seed, round_index, client_id)

    def task_trace(self) -> TraceContext:
        """Mint the telemetry identity one dispatched task carries.

        The trace id is the round's (set by :meth:`run` before
        ``run_round`` fires); the span id is fresh per task.  Identity
        only — never read by task ``run()`` and never entering results —
        so minting it unconditionally cannot perturb determinism.
        """
        return TraceContext(trace_id=self.current_trace_id, span_id=new_span_id())

    # -- parallel client execution --------------------------------------------------------
    @property
    def executor(self) -> Executor:
        """The client-execution engine (lazily built from the federated config)."""
        if self._executor is None:
            self._executor = create_executor(
                self.federated_config.executor, self.federated_config.max_workers
            )
            self._owns_executor = True
        return self._executor

    def set_executor(self, executor: Executor | None) -> None:
        """Inject a pre-built executor (tests, benchmarks, latency wrappers).

        The caller keeps ownership: the algorithm will use the executor but
        never shut it down — :meth:`close` and the end of :meth:`run` leave
        it attached and alive.  Pass ``None`` to drop an injected executor
        and fall back to the config-built one.
        """
        self.close()
        self._executor = executor
        self._owns_executor = False

    def close(self) -> None:
        """Release the config-built executor's worker pools (idempotent).

        Called at the end of every :meth:`run`; a later run lazily rebuilds
        the executor from the same config.  Injected executors
        (:meth:`set_executor`) belong to their caller and are left running.
        """
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown()
            self._executor = None
            self._owns_executor = False
        for store in self._state_stores.values():
            store.close()
        # spill files are gone: force a fresh publish on the next run
        self._dataset_handles.clear()

    def execute_client_tasks(self, tasks: Sequence[ClientTask]) -> list:
        """Fan per-client tasks out through the executor (order-preserving)."""
        return self.executor.map(tasks)

    def run_local_training(
        self,
        round_index: int,
        assignments: Sequence[tuple[int, Mapping[str, int], "Mapping[str, np.ndarray] | StateHandle"]],
    ) -> list[LocalTrainingResult]:
        """Train one submodel per ``(client_id, group_sizes, state_source)``.

        The common client loop of every baseline: each assignment becomes an
        independent :class:`~repro.engine.tasks.TrainSubmodelTask` with its
        own RNG stream, and results come back in assignment order.  The
        state source is either a pre-cut slice (legacy "full" transport)
        or a :class:`~repro.engine.transport.StateHandle` — then the
        worker cuts the slice locally and uploads a bit-exact delta.
        """
        tasks = []
        for client_id, group_sizes, state_source in assignments:
            is_handle = isinstance(state_source, StateHandle)
            if is_handle:
                self.count_downlink(group_sizes=group_sizes)
            else:
                self.count_downlink(actual_bytes=state_nbytes(state_source))
            tasks.append(
                TrainSubmodelTask(
                    architecture=self.architecture,
                    group_sizes=group_sizes,
                    initial_state=state_source,
                    dataset=self.client_dataset_source(client_id),
                    local_config=self.local_config,
                    client_id=client_id,
                    rng_stream=self.client_stream(round_index, client_id),
                    delta_upload=is_handle,
                    codec=self._codec,
                    codec_residual=self.codec_residual_for(client_id, group_sizes),
                    trace=self.task_trace(),
                )
            )
        with self.profiler.scope("round.training"):
            return self.execute_client_tasks(tasks)

    # -- weight transport (repro.engine.transport) ---------------------------------------
    @property
    def uses_delta_transport(self) -> bool:
        """True under the slice/delta transport (``federated_config.transport``)."""
        return self.federated_config.transport == "delta"

    def publish_state(
        self, state: Mapping[str, np.ndarray], stream: str = "global"
    ) -> StateHandle | None:
        """Publish this round's weights for the client tasks (delta mode).

        Returns ``None`` under legacy "full" transport — callers then ship
        pre-cut slices inside the tasks instead.
        """
        if not self.uses_delta_transport:
            return None
        store = self._state_stores.get(stream)
        if store is None:
            store = self._state_stores[stream] = StateStore(label=f"{self.name}-{stream}")
        handle = store.publish(state, spill=self.executor.is_interprocess)
        # rounds are synchronous (map() returns only when every task did),
        # so once a new version is out nothing can reference versions more
        # than one behind; keep that one-version straggler window and
        # release the rest instead of unlinking at publish time
        store.release_below(store.version - 1)
        if self.profiler.enabled:
            self.profiler.count("transport.publishes")
            if handle.path is not None:
                self.profiler.count("transport.spilled_bytes", state_nbytes(state))
        return handle

    def state_source(
        self,
        handle: StateHandle | None,
        state: Mapping[str, np.ndarray],
        group_sizes: Mapping[str, int],
    ) -> "Mapping[str, np.ndarray] | StateHandle":
        """What a task carries: the published handle, or a pre-cut slice."""
        if handle is not None:
            return handle
        return slice_state_dict(state, self.architecture, dict(group_sizes))

    def count_downlink(
        self,
        group_sizes: Mapping[str, int] | None = None,
        num_params: int | None = None,
        actual_bytes: int | None = None,
    ) -> None:
        """Account one client's downlink on the profiler.

        ``transport.bytes_down`` is the *modeled* downlink — the submodel
        slice the client receives — in both transport modes, so the
        counter stays comparable between "full" (where it also equals the
        pickled payload) and "delta" (where the wire carries only a tiny
        handle; the modeled slice is what a real deployment would send).
        Under delta transport the size is derived from the slice's
        parameter count (batch-norm statistics excluded).
        """
        if actual_bytes is None:
            if num_params is None:
                num_params = self.architecture.parameter_count(dict(group_sizes))
            actual_bytes = num_params * np.dtype(resolve_dtype()).itemsize
        self._round_bytes_down += actual_bytes
        if self.profiler.enabled:
            self.profiler.count("transport.bytes_down", actual_bytes)

    def decode_result_state(
        self,
        uploaded,
        group_sizes: Mapping[str, int],
        source_state: Mapping[str, np.ndarray],
    ) -> Mapping[str, np.ndarray]:
        """Resolve an upload (raw weights, XOR delta or codec payload) into plain weights.

        Every branch accounts the upload's *actual* wire size on the
        round accumulators — for an :class:`EncodedUpdate` that is the
        compressed blob length, so lossy payloads are never overstated —
        and an encoded upload additionally banks the client's new
        error-feedback residual before decoding against the same
        reference slice the worker trained from.
        """
        if isinstance(uploaded, EncodedUpdate):
            self._round_bytes_up += uploaded.nbytes
            self._round_raw_bytes_up += uploaded.raw_nbytes
            if self.profiler.enabled:
                self.profiler.count("transport.bytes_up", uploaded.nbytes)
            self._bank_codec_residual(uploaded)
            reference = slice_state_dict(source_state, self.architecture, dict(group_sizes))
            return apply_encoded_update(uploaded, reference)
        if isinstance(uploaded, Mapping):
            nbytes = state_nbytes(uploaded)
            self._round_bytes_up += nbytes
            if self.profiler.enabled:
                self.profiler.count("transport.bytes_up", nbytes)
            return uploaded
        self._round_bytes_up += uploaded.nbytes
        if self.profiler.enabled:
            self.profiler.count("transport.bytes_up", uploaded.nbytes)
        reference = slice_state_dict(source_state, self.architecture, dict(group_sizes))
        return decode_upload(uploaded, reference)

    # -- lossy transport codec (repro.engine.codecs) -------------------------------------
    @property
    def transport_codec(self) -> UpdateCodec | None:
        """The active lossy codec (None = exact transport)."""
        return self._codec

    def codec_residual_for(
        self, client_id: int, group_sizes: Mapping[str, int]
    ) -> dict[str, np.ndarray] | None:
        """The error-feedback carry a dispatched task should receive.

        The full-shape bank is prefix-sliced to the dispatched submodel —
        the same cut :func:`slice_state_dict` applies to the weights — so
        only the coordinates the client actually trains see their carry.
        Returns None when the codec keeps no residual or none has
        accumulated for this client yet.
        """
        if self._codec is None or not self._codec.uses_error_feedback:
            return None
        bank = self._codec_residuals.get(client_id)
        if bank is None:
            return None
        return slice_state_dict(bank, self.architecture, dict(group_sizes))

    def _bank_codec_residual(self, encoded: EncodedUpdate) -> None:
        """Scatter an upload's new residual back into the client's bank.

        The bank holds full-model shapes; the upload's residual covers the
        prefix region the client trained, which replaces exactly that
        region (coordinates outside the dispatched slice keep their old
        carry — they were neither trained nor encoded this round).
        """
        if encoded.residual is None:
            return
        bank = self._codec_residuals.get(encoded.client_id)
        if bank is None:
            bank = self._codec_residuals[encoded.client_id] = {
                name: np.zeros_like(np.asarray(value))
                for name, value in self.global_state.items()
            }
        for name, carry in encoded.residual.items():
            target = bank[name]
            region = tuple(slice(0, size) for size in carry.shape)
            target[region] = carry.astype(target.dtype, copy=False)

    def aggregate(self, updates: "Iterable[ClientUpdate]") -> dict[str, np.ndarray]:
        """Heterogeneous aggregation into reused accumulation buffers.

        ``updates`` may be a generator: uploads are decoded, accumulated
        into the reused partial-sum buffers and released one at a time,
        so peak memory never holds every client delta at once.
        """
        with self.profiler.scope("round.aggregate"):
            return self._aggregator.aggregate(self.global_state, updates)

    def client_dataset_source(self, client_id: int) -> "Dataset | StateHandle":
        """The dataset reference a client task should carry.

        Under delta transport each client's local data is published once
        and referenced by handle ever after (workers cache it across
        rounds); legacy transport ships the dataset inside every task.
        """
        if not self.uses_delta_transport:
            return self.clients[client_id].dataset
        spill = self.executor.is_interprocess
        handle = self._dataset_handles.get(client_id)
        if handle is None or (spill and handle.path is None):
            stream = f"dataset-{client_id}"
            store = self._state_stores.get(stream)
            if store is None:
                store = self._state_stores[stream] = StateStore(label=f"{self.name}-{stream}")
            handle = store.publish(self.clients[client_id].dataset, spill=spill)
            self._dataset_handles[client_id] = handle
            if self.profiler.enabled and spill:
                self.profiler.count("transport.dataset_spills")
        return handle

    def dispatch_client(self, client_id: int) -> SimulatedClient:
        """The client object a :class:`LocalRoundTask` should carry.

        Identical to ``self.clients[client_id]`` except that, under delta
        transport, its dataset is the published handle — a dispatched
        client pickles in bytes, not megabytes.
        """
        source = self.client_dataset_source(client_id)
        if source is self.clients[client_id].dataset:
            return self.clients[client_id]
        return SimulatedClient(
            client_id=client_id,
            dataset=source,
            profile=self.profiles[client_id],
            local_config=self.local_config,
        )

    def client_capacity(self, client_id: int, round_index: int) -> float:
        """The client's available resources this round.

        Conceptually device-side information: the *real* server never
        observes it, and no algorithm may use it to steer selection.  The
        simulation reads it in two places that both stand in for the
        device: when handing it to :meth:`SimulatedClient.local_round`, and
        in AdaptiveFL's planning phase to predict the deterministic
        resource-aware pruning outcome (the same ⟨dispatched, returned⟩
        pair the device will report back) so RL-table updates can resolve
        before training fans out.
        """
        return self.resource_model.available_capacity(client_id, round_index)

    def level_group_sizes(self) -> dict[str, dict[str, int]]:
        """Channel sizes of the per-level heads (S1 / M1 / L1) used for "avg"."""
        return {level: self.pool.group_sizes(cfg) for level, cfg in self.pool.level_heads().items()}

    def submodel_flops(self, config_name: str) -> int:
        """Per-sample MACs of a pool entry (cached; used by the test-bed clock)."""
        if config_name not in self._flops_cache:
            config = self.pool.by_name(config_name)
            model = self.architecture.build(self.pool.group_sizes(config), rng=np.random.default_rng(0))
            self._flops_cache[config_name] = count_flops(model, self.architecture.input_shape).flops
        return self._flops_cache[config_name]

    def simulate_round_time(
        self,
        round_index: int,
        selected_clients: list[int],
        dispatched_names: list[str],
        returned_names: list[str],
    ) -> float | None:
        """Wall-clock seconds of a synchronous round on the test-bed (if any)."""
        if self.testbed is None:
            return None
        times = []
        for client_id, sent_name, back_name in zip(selected_clients, dispatched_names, returned_names):
            sent_params = self.pool.by_name(sent_name).num_params
            back_params = self.pool.by_name(back_name).num_params
            flops = self.submodel_flops(back_name)
            times.append(
                self.testbed.client_round_time(
                    client_id,
                    params_down=sent_params,
                    params_up=back_params,
                    flops_per_sample=flops,
                    num_samples=self.clients[client_id].num_samples,
                    local_epochs=self.local_config.local_epochs,
                )
            )
        return self.testbed.round_time(times)

    # -- fleet simulation (scenario-conditioned rounds) -----------------------------------
    def dispatch_count(self) -> int:
        """How many clients the server dispatches to this round.

        ``clients_per_round`` plus the scenario's over-selection margin
        (extra dispatches whose updates hedge against dropouts and
        deadline misses), capped at the fleet size.
        """
        base = min(self.federated_config.clients_per_round, self.num_clients)
        if self.fleet is None:
            return base
        return min(base + self.fleet.spec.over_selection, self.num_clients)

    def selectable_clients(self, round_index: int) -> list[int] | None:
        """Clients reachable at the start of the round (None = everyone)."""
        if self.fleet is None:
            return None
        return self.fleet.available_clients(round_index)

    def selectable_mask(self, round_index: int) -> "np.ndarray | None":
        """Boolean reachability mask (None = everyone reachable).

        The fleet-scale twin of :meth:`selectable_clients`: O(N) vector
        work, no Python list — streaming selection paths consume this.
        """
        if self.fleet is None:
            return None
        return self.fleet.available_mask(round_index)

    def plan_round_outcome(
        self,
        round_index: int,
        selected_clients: Sequence[int],
        dispatched_names: Sequence[str],
        returned_names: Sequence[str],
    ) -> "RoundOutcome | None":
        """Simulate the round's system dynamics before any training runs.

        Because every duration, dropout and arrival is a pure function of
        ``(seed, round, client)``, the fate of each dispatched client is
        known *before* local training executes — so training fans out only
        for the updates that will actually join aggregation, and results
        are bit-identical across executors.
        """
        if self.fleet is None:
            return None
        from repro.sim.fleet import ClientDispatch

        # a lossy codec shrinks the modeled uplink: the fleet clock (and any
        # byte-budget admission) must see the compressed transfer, so the
        # nominal per-param rate scales params_up for the simulator
        uplink_scale = 1.0
        if self._codec is not None:
            uplink_scale = self._codec.nominal_bytes_per_param / 4.0
        dispatches = [
            ClientDispatch(
                client_id=client_id,
                params_down=self.pool.by_name(sent_name).num_params,
                params_up=(
                    self.pool.by_name(back_name).num_params
                    if uplink_scale == 1.0
                    else max(1, int(round(self.pool.by_name(back_name).num_params * uplink_scale)))
                ),
                flops_per_sample=self.submodel_flops(back_name),
                num_samples=self.clients[client_id].num_samples,
                local_epochs=self.local_config.local_epochs,
            )
            for client_id, sent_name, back_name in zip(selected_clients, dispatched_names, returned_names)
        ]
        return self.fleet.simulate_round(round_index, dispatches)

    def finalize_round(self, record: RoundRecord, outcome: "RoundOutcome | None" = None) -> RoundRecord:
        """Attach the round's system accounting to its record (shared hook).

        Every algorithm returns ``self.finalize_round(record, outcome)`` at
        the end of :meth:`run_round`: with a fleet outcome it records the
        simulated duration, per-client arrivals, dropped clients, the
        deadline and the bytes moved; otherwise it falls back to the
        legacy test-bed clock (or leaves the record untimed).

        Under a lossy codec ``record.bytes_up`` is always the round's
        *true encoded* uplink (summed compressed payload sizes from
        :meth:`decode_result_state`) — never the nominal 4-bytes-per-param
        model — and the ``codec_bytes_up_total`` / ``codec_raw_bytes_up_total``
        obs counters advance so compression ratios are scrapeable live.
        """
        codec_bytes_up = self._round_bytes_up
        codec_raw_up = self._round_raw_bytes_up
        codec_bytes_down = self._round_bytes_down
        self._round_bytes_up = 0
        self._round_raw_bytes_up = 0
        self._round_bytes_down = 0
        if self._codec is not None:
            registry = obs_registry()
            registry.counter(
                "codec_bytes_up_total", "encoded (post-codec) uplink bytes aggregated"
            ).inc(codec_bytes_up)
            registry.counter(
                "codec_raw_bytes_up_total", "uncompressed bytes the same uploads would have moved"
            ).inc(codec_raw_up)
        if outcome is None:
            record.wall_clock_seconds = self.simulate_round_time(
                record.round_index, record.selected_clients, record.dispatched, record.returned
            )
            # measured wire bytes (exact or encoded) — populated whenever the
            # round actually moved payloads, so codec ratios have a baseline
            if codec_bytes_up > 0 or codec_bytes_down > 0:
                record.bytes_up = codec_bytes_up
                record.bytes_down = codec_bytes_down
            return record
        record.wall_clock_seconds = outcome.round_seconds
        record.deadline_seconds = outcome.deadline_seconds
        record.arrival_seconds = outcome.arrival_seconds()
        record.dropped_clients = outcome.dropped_client_ids()
        record.bytes_down = outcome.bytes_down
        record.bytes_up = outcome.bytes_up if self._codec is None else codec_bytes_up
        self._observe_fleet_metrics(record.round_index, outcome.round_seconds)
        return record

    #: bucket bounds for the simulated round-duration histogram — simulated
    #: rounds span sub-second static fleets to day-long deadline waits
    _SIM_ROUND_BUCKETS = (0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0, 14400.0, 86400.0)

    def _observe_fleet_metrics(self, round_index: int, round_seconds: float) -> None:
        """Publish fleet gauges + the simulated-round histogram (``repro metrics``).

        Operational telemetry only — reads fleet state, never perturbs it
        or the training path.  Gauges track the population the scenario
        currently models (online / battery-recovering / battery-dead);
        the histogram tracks *simulated* seconds per round, complementing
        the real-time ``round_duration_seconds``.
        """
        if self.fleet is None:
            return
        stats = self.fleet.population_stats(round_index)
        registry = obs_registry()
        registry.gauge("sim_devices_online", "fleet devices reachable this round").set(
            stats["online"]
        )
        registry.gauge("sim_devices_recovering", "fleet devices recharging below resume level").set(
            stats["recovering"]
        )
        registry.gauge("sim_devices_battery_dead", "fleet devices at zero battery charge").set(
            stats["battery_dead"]
        )
        registry.histogram(
            "sim_round_seconds",
            "simulated wall-clock seconds of one federated round",
            buckets=self._SIM_ROUND_BUCKETS,
        ).observe(round_seconds)

    # -- evaluation -----------------------------------------------------------------------
    def evaluate(self) -> tuple[float, dict[str, float]]:
        """Accuracy of the full global model and of the per-level heads."""
        full_sizes = self.architecture.full_group_sizes()
        full_accuracy, _ = evaluate_state(
            self.architecture,
            full_sizes,
            self.global_state,
            self.test_dataset,
            batch_size=self.federated_config.eval_batch_size,
            model_cache=self._eval_model_cache,
        )
        level_accuracies: dict[str, float] = {}
        for level, group_sizes in self.level_group_sizes().items():
            if group_sizes == full_sizes:
                # the L-level head *is* the unpruned model — same weights,
                # same data, same deterministic forward: reuse the result
                level_accuracies[level] = full_accuracy
                continue
            accuracy, _ = evaluate_state(
                self.architecture,
                group_sizes,
                self.global_state,
                self.test_dataset,
                batch_size=self.federated_config.eval_batch_size,
                model_cache=self._eval_model_cache,
            )
            level_accuracies[level] = accuracy
        return full_accuracy, level_accuracies

    def _record_evaluation(self, record: RoundRecord) -> None:
        full_accuracy, level_accuracies = self.evaluate()
        record.full_accuracy = full_accuracy
        record.level_accuracies = level_accuracies
        record.avg_accuracy = float(np.mean(list(level_accuracies.values()))) if level_accuracies else None
        get_event_bus().emit(
            "eval_done",
            trace_id=self.current_trace_id,
            round=record.round_index,
            full_accuracy=full_accuracy,
        )

    # -- checkpoint / resume (repro.store) ------------------------------------------------
    def checkpoint_state(self) -> "Checkpoint":
        """Capture the run's complete restorable state at the current round.

        The returned :class:`repro.store.Checkpoint` holds the global
        weights, the history, the base RNG state and — via the
        ``_collect_extra_state`` subclass hook — algorithm-specific arrays
        such as AdaptiveFL's RL tables, plus the attached fleet's battery
        and availability watermarks.  Everything that is *not* captured is
        a pure function of ``(seed, round, client)`` and reconstructs
        identically, which is what makes :meth:`restore_checkpoint` +
        :meth:`run` bit-identical to an uninterrupted run.
        """
        from repro.store.checkpoint import Checkpoint

        extra_arrays: dict[str, np.ndarray] = {}
        extra_state: dict = {}
        self._collect_extra_state(extra_arrays, extra_state)
        if self.fleet is not None:
            fleet_state = self.fleet.state_dict()
            charge = fleet_state.pop("charge")
            if charge is not None:
                extra_arrays["fleet/charge"] = charge
            extra_state["fleet"] = fleet_state
        if self._codec is not None:
            # error-feedback residuals are run state: a resumed lossy run
            # only matches an uninterrupted one if every client's carry
            # survives bit-exact
            extra_state["codec"] = {
                "name": self._codec.name,
                "clients": sorted(self._codec_residuals),
            }
            for client_id in sorted(self._codec_residuals):
                for key, value in self._codec_residuals[client_id].items():
                    extra_arrays[f"codec/{client_id}/{key}"] = value.copy()
        return Checkpoint(
            algorithm=self.name,
            round_index=self.history.records[-1].round_index if self.history.records else 0,
            global_state={key: value.copy() for key, value in self.global_state.items()},
            history=self.history.to_dict(),
            rng_state=dict(self.rng.bit_generator.state),
            extra_arrays=extra_arrays,
            extra_state=extra_state,
            stop_reason=self._stop_reason,
        )

    def restore_checkpoint(self, checkpoint: "Checkpoint") -> None:
        """Restore :meth:`checkpoint_state` output onto a freshly built algorithm.

        The algorithm must have been constructed from the same experiment
        setting (architecture, pool, partition, seed, scenario); the
        checkpoint is validated against the fresh global state before
        anything is mutated.  A subsequent :meth:`run` continues from the
        round after the checkpoint — ``run(num_rounds=total - completed)``
        reproduces the uninterrupted run bit-for-bit.
        """
        checkpoint.validate_for(self.name, self.global_state)
        if self.history.records:
            raise RuntimeError(
                "restore_checkpoint must be called on a freshly built algorithm "
                f"(this one already has {len(self.history)} rounds of history)"
            )
        self.global_state = {key: np.array(value) for key, value in checkpoint.global_state.items()}
        self.history = TrainingHistory.from_dict(checkpoint.history)
        self.rng.bit_generator.state = checkpoint.rng_state
        extra_arrays = dict(checkpoint.extra_arrays)
        extra_state = dict(checkpoint.extra_state)
        if self.fleet is not None:
            if "fleet" not in extra_state:
                raise ValueError(
                    "checkpoint has no fleet state but this run is scenario-conditioned; "
                    "it was written without a scenario and cannot resume one"
                )
            fleet_state = dict(extra_state.pop("fleet"))
            fleet_state["charge"] = extra_arrays.pop("fleet/charge", None)
            self.fleet.load_state_dict(fleet_state)
        elif "fleet" in extra_state:
            raise ValueError(
                "checkpoint carries fleet state but this run has no scenario attached"
            )
        codec_meta = extra_state.pop("codec", None)
        if self._codec is not None:
            if codec_meta is None:
                raise ValueError(
                    "checkpoint has no codec state but this run uses transport codec "
                    f"{self._codec.name!r}; it was written without one and cannot resume it"
                )
            if codec_meta.get("name") != self._codec.name:
                raise ValueError(
                    f"checkpoint was written with transport codec {codec_meta.get('name')!r}, "
                    f"this run uses {self._codec.name!r}"
                )
            self._codec_residuals = {}
            for client_id in codec_meta.get("clients", []):
                prefix = f"codec/{client_id}/"
                bank = {
                    key[len(prefix) :]: np.array(value)
                    for key, value in list(extra_arrays.items())
                    if key.startswith(prefix)
                }
                for key in list(extra_arrays):
                    if key.startswith(prefix):
                        extra_arrays.pop(key)
                self._codec_residuals[int(client_id)] = bank
        elif codec_meta is not None:
            raise ValueError(
                f"checkpoint carries transport-codec state ({codec_meta.get('name')!r}) "
                "but this run uses the exact transport"
            )
        self._apply_extra_state(extra_arrays, extra_state)

    def _collect_extra_state(self, arrays: dict[str, np.ndarray], state: dict) -> None:
        """Subclass hook: add algorithm-specific checkpoint state.

        ``arrays`` receives numpy payloads (stored content-addressed,
        bit-exact); ``state`` receives strict-JSON metadata.  The base
        algorithm has nothing beyond what :meth:`checkpoint_state` already
        captures.
        """

    def _apply_extra_state(self, arrays: Mapping[str, np.ndarray], state: Mapping) -> None:
        """Subclass hook: restore what ``_collect_extra_state`` captured."""

    # -- early stopping -------------------------------------------------------------------
    @property
    def stop_reason(self) -> str | None:
        """Why the current/last run stopped early (None = ran to completion)."""
        return self._stop_reason

    def request_stop(self, reason: str = "stop requested") -> None:
        """Ask the training loop to exit after the current round (callback API)."""
        self._stop_reason = reason

    # -- main loop --------------------------------------------------------------------------
    def run(
        self,
        num_rounds: int | None = None,
        callbacks: Iterable[Callback] | None = None,
        progress: bool = False,
        profile: bool = False,
    ) -> TrainingHistory:
        """Run the federated loop, evaluating every ``eval_every`` rounds.

        Per round the callbacks fire as ``on_round_start`` → (train) →
        ``on_evaluate`` (evaluated rounds only, after the record joined the
        history) → ``on_round_end`` → ``on_checkpoint`` (always the last
        hook of the round, after any late early-stop evaluation, so
        durable-state callbacks see the final record); ``on_fit_end``
        fires once on exit.  Any
        callback may call :meth:`request_stop` to end training after the
        round that is in flight.  One ordering exception: when a stop
        truncates the run at a round that was not scheduled for evaluation,
        that final record is evaluated *after* its ``on_round_end`` (the stop
        only becomes known then) and ``on_evaluate`` fires as the last hook
        before ``on_fit_end``, so the history always ends with an evaluated
        record.  ``progress=True`` is shorthand for appending a
        :class:`~repro.api.callbacks.ProgressCallback`.

        ``profile=True`` turns on the :class:`repro.perf.profiler.Profiler`
        attached as :attr:`profiler` — phase-grained scoped timers (round,
        training fan-out, aggregation, evaluation) plus transport and
        workspace counters, reset at the start of the run and readable
        afterwards via ``profiler.summary()`` / ``profiler.render()``.

        Caveat: the ``workspace.buffer_*`` counters are collected from
        *this* process only — under the process executor the training
        kernels run in workers whose counters do not propagate back, so
        those two counters then reflect evaluation-side reuse only.
        """
        self.profiler.enabled = profile
        if profile:
            self.profiler.reset()
            reset_workspace_stats()
        callback_list = CallbackList(callbacks)
        if progress:
            callback_list.append(ProgressCallback())
        rounds = num_rounds if num_rounds is not None else self.federated_config.num_rounds
        start = len(self.history)
        self.planned_rounds = rounds
        self._stop_reason = None
        bus = get_event_bus()
        rounds_total = obs_registry().counter("rounds_total", "federated rounds completed")
        round_duration = obs_registry().histogram(
            "round_duration_seconds", "wall-clock duration of one federated round"
        )
        bus.emit("run_start", algorithm=self.name, rounds=rounds, start_round=start)
        try:
            for round_index in range(start, start + rounds):
                self.current_trace_id = new_trace_id(f"{self.name}-r{round_index}")
                bus.emit("round_start", trace_id=self.current_trace_id, round=round_index)
                round_started_at = monotonic()
                callback_list.on_round_start(self, round_index)
                with self.profiler.scope("round"):
                    record = self.run_round(round_index)
                should_eval = ((round_index + 1) % self.federated_config.eval_every == 0) or (
                    round_index == start + rounds - 1
                )
                if should_eval:
                    with self.profiler.scope("evaluate"):
                        self._record_evaluation(record)
                self.history.append(record)
                if should_eval:
                    callback_list.on_evaluate(self, record)
                callback_list.on_round_end(self, record)
                if self._stop_reason is not None and record.full_accuracy is None:
                    # an early stop makes this the last round: evaluate it so the
                    # history always ends with an evaluated record
                    self._record_evaluation(record)
                    callback_list.on_evaluate(self, record)
                # the record is final from here on: durable-state callbacks
                # (e.g. repro.store.RunRecorder) persist checkpoints now
                callback_list.on_checkpoint(self, record)
                round_seconds = monotonic() - round_started_at
                rounds_total.inc()
                round_duration.observe(round_seconds)
                bus.emit(
                    "round_end",
                    trace_id=self.current_trace_id,
                    round=round_index,
                    duration_seconds=round(round_seconds, 6),
                    participants=len(record.selected_clients),
                )
                # re-check the stop flag: a checkpoint callback may itself
                # request a stop (e.g. on a persistence failure) and the
                # contract is "training ends after the round in flight"
                if self._stop_reason is not None:
                    if record.full_accuracy is None:
                        self._record_evaluation(record)
                        callback_list.on_evaluate(self, record)
                        # re-persist: durable-state callbacks must see the
                        # final, evaluated record — on_checkpoint stays the
                        # round's last hook (checkpoints overwrite by round
                        # index, so the re-fire is idempotent)
                        callback_list.on_checkpoint(self, record)
                    break
        finally:
            # release worker pools between runs; a later run() or run_round()
            # lazily rebuilds the executor from the same config
            self.close()
            self.current_trace_id = ""
            bus.emit(
                "run_end",
                algorithm=self.name,
                rounds_completed=len(self.history) - start,
                stop_reason=self._stop_reason or "",
            )
        if self.profiler.enabled:
            stats = workspace_stats()
            self.profiler.set_counter("workspace.buffer_hits", stats["hits"])
            self.profiler.set_counter("workspace.buffer_misses", stats["misses"])
        callback_list.on_fit_end(self, self.history)
        return self.history
