"""Evaluation metrics: accuracy/loss of (sub)models and communication waste."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.data.datasets import Dataset
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module

__all__ = ["evaluate_model", "evaluate_state", "communication_waste_rate"]


def evaluate_model(model: Module, dataset: Dataset, batch_size: int = 200) -> tuple[float, float]:
    """Test accuracy and mean cross-entropy loss of a built model."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    model.eval()
    loss_fn = CrossEntropyLoss()
    correct = 0
    total_loss = 0.0
    for start in range(0, len(dataset), batch_size):
        images = dataset.images[start : start + batch_size]
        labels = dataset.labels[start : start + batch_size]
        logits = model(images)
        total_loss += loss_fn(logits, labels) * len(labels)
        correct += int((logits.argmax(axis=1) == labels).sum())
    return correct / len(dataset), total_loss / len(dataset)


def evaluate_state(
    architecture,
    group_sizes: Mapping[str, int],
    state: Mapping[str, np.ndarray],
    dataset: Dataset,
    batch_size: int = 200,
    model_cache: dict | None = None,
) -> tuple[float, float]:
    """Evaluate a state dict by building the matching submodel first.

    ``state`` may be the full global state dict (it is sliced down) or an
    already-sliced submodel state dict.  ``model_cache`` (keyed by the
    group-size configuration) lets repeated evaluations of the same
    submodel shapes — every round's full + per-level-head accuracies —
    reuse one built network and only reload weights, skipping the
    construction and weight-initialisation cost.
    """
    from repro.core.pruning import slice_state_dict  # local import to avoid a cycle

    if model_cache is not None:
        cache_key = tuple(sorted(group_sizes.items()))
        model = model_cache.get(cache_key)
        if model is None:
            model = model_cache[cache_key] = architecture.build(group_sizes, rng=np.random.default_rng(0))
    else:
        model = architecture.build(group_sizes, rng=np.random.default_rng(0))
    shapes = {name: param.data.shape for name, param in model.named_parameters()}
    shapes.update({name: buf.shape for name, buf in model.named_buffers()})
    already_sliced = all(np.asarray(state[name]).shape == shape for name, shape in shapes.items())
    if already_sliced:
        candidate = {name: np.asarray(state[name]) for name in shapes}
    else:
        candidate = slice_state_dict(state, architecture, group_sizes)
    model.load_state_dict(candidate)
    return evaluate_model(model, dataset, batch_size)


def communication_waste_rate(sent_sizes: list[int], returned_sizes: list[int]) -> float:
    """Paper §4.4: ``1 - Σ size(returned) / Σ size(sent)``.

    Zero means every dispatched parameter came back trained; a high rate
    means devices had to discard much of what the server sent.
    """
    if len(sent_sizes) != len(returned_sizes):
        raise ValueError("sent and returned size lists must align")
    total_sent = float(sum(sent_sizes))
    if total_sent <= 0:
        raise ValueError("total dispatched size must be positive")
    total_back = float(sum(returned_sizes))
    return 1.0 - total_back / total_sent
