"""Configuration dataclasses shared by AdaptiveFL and the baselines.

Every config serialises with ``to_dict()`` and reconstructs with
``from_dict()`` so experiment specs can round-trip through JSON
(``from_dict(to_dict(x)) == x``); unknown payload keys raise
:class:`ValueError` and bad values hit the regular ``__post_init__``
validation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

from repro.core.serialization import checked_payload, coerce_int_tuple
from repro.engine.factory import validate_executor_choice

__all__ = ["LocalTrainingConfig", "FederatedConfig", "ModelPoolConfig", "AdaptiveFLConfig"]


@dataclass(frozen=True)
class LocalTrainingConfig:
    """Hyper-parameters of one client's local training pass.

    Defaults follow the paper's §4: SGD with learning rate 0.01 and
    momentum 0.5, batch size 50, five local epochs.
    """

    local_epochs: int = 5
    batch_size: int = 50
    learning_rate: float = 0.01
    momentum: float = 0.5
    weight_decay: float = 0.0
    max_batches_per_epoch: int | None = None

    def __post_init__(self) -> None:
        if self.local_epochs <= 0:
            raise ValueError("local_epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self.max_batches_per_epoch is not None and self.max_batches_per_epoch <= 0:
            raise ValueError("max_batches_per_epoch must be positive when set")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LocalTrainingConfig":
        return cls(**checked_payload(cls, payload))


@dataclass(frozen=True)
class FederatedConfig:
    """Global federated-learning loop configuration."""

    num_rounds: int = 100
    clients_per_round: int = 10
    eval_every: int = 10
    eval_batch_size: int = 200
    seed: int = 0
    #: how per-client local training fans out: "serial", "thread" or "process"
    #: (all bit-identical at a fixed seed — see :mod:`repro.engine`)
    executor: str = "serial"
    #: worker count for pool-based executors (None = the usable CPU count)
    max_workers: int | None = None
    #: registered fleet scenario driving system dynamics (None = no simulation);
    #: see :mod:`repro.sim` — "paper_testbed" reproduces the legacy test-bed clock
    scenario: str | None = None
    #: weight transport between server and client workers: "delta" publishes
    #: the global state once per round (version tag + per-worker cache),
    #: ships each client only the submodel slice it trains and returns
    #: bit-exact XOR deltas; "full" is the legacy per-task weight shipping.
    #: Both produce bit-identical results (see tests/perf).
    transport: str = "delta"
    #: lossy update codec layered on the transport ("none", "fp16",
    #: "int8", "topk" — see :mod:`repro.engine.codecs`).  "none" keeps
    #: the exact bit-identical contract; lossy codecs stay deterministic
    #: per (seed, round, client) but trade accuracy for uplink bytes,
    #: tested under the bounded-accuracy contract (tests/engine).
    transport_codec: str = "none"

    def __post_init__(self) -> None:
        if self.num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if self.clients_per_round <= 0:
            raise ValueError("clients_per_round must be positive")
        if self.eval_every <= 0:
            raise ValueError("eval_every must be positive")
        if self.transport not in {"delta", "full"}:
            raise ValueError("transport must be 'delta' or 'full'")
        validate_executor_choice(self.executor, self.max_workers)
        # imported inside the method for the same circularity reason as
        # the scenario validation below
        from repro.engine.codecs import available_codecs

        if self.transport_codec not in available_codecs():
            raise ValueError(
                f"transport_codec must be one of {sorted(available_codecs())}, "
                f"got {self.transport_codec!r}"
            )
        if self.scenario is not None:
            # imported inside the method: repro.sim.scenario imports
            # repro.core.serialization, so a module-level import here would
            # be circular through the repro.core package init
            from repro.sim.scenario import validate_scenario_choice

            validate_scenario_choice(self.scenario)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FederatedConfig":
        return cls(**checked_payload(cls, payload))


@dataclass(frozen=True)
class ModelPoolConfig:
    """How the global model is split into the heterogeneous model pool.

    ``models_per_level`` is the paper's ``p``; the pool then contains
    ``2p + 1`` submodels: p small, p medium and the unpruned large model.
    ``level_width_ratios`` are the coarse width knobs per level and
    ``start_layers`` the fine layer knobs (largest first), matching
    Table 1's ``r_w`` / ``I`` columns.  ``min_start_layer`` is the paper's
    threshold τ that guarantees heterogeneous models share shallow layers.
    """

    models_per_level: int = 3
    level_width_ratios: dict[str, float] = field(
        default_factory=lambda: {"L": 1.0, "M": 0.66, "S": 0.40}
    )
    start_layers: tuple[int, ...] = (8, 6, 4)
    min_start_layer: int = 4

    def __post_init__(self) -> None:
        if self.models_per_level <= 0:
            raise ValueError("models_per_level must be positive")
        if set(self.level_width_ratios) != {"L", "M", "S"}:
            raise ValueError("level_width_ratios must define exactly L, M and S")
        if self.level_width_ratios["L"] != 1.0:
            raise ValueError("the L level must keep the full width (ratio 1.0)")
        if not self.level_width_ratios["S"] < self.level_width_ratios["M"] <= 1.0:
            raise ValueError("level ratios must satisfy S < M <= 1")
        if len(self.start_layers) != self.models_per_level:
            raise ValueError("start_layers must provide one entry per model of a level")
        if sorted(self.start_layers, reverse=True) != list(self.start_layers):
            raise ValueError("start_layers must be sorted from largest to smallest")
        if min(self.start_layers) < self.min_start_layer:
            raise ValueError("start_layers must respect the min_start_layer threshold τ")

    def to_dict(self) -> dict:
        data = asdict(self)
        data["start_layers"] = list(self.start_layers)
        return data

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ModelPoolConfig":
        data = checked_payload(cls, payload)
        if "start_layers" in data:
            data["start_layers"] = coerce_int_tuple(data["start_layers"], field_name="start_layers")
        if "level_width_ratios" in data:
            ratios = data["level_width_ratios"]
            if not isinstance(ratios, Mapping):
                raise ValueError("level_width_ratios must be a mapping")
            data["level_width_ratios"] = {str(level): float(ratio) for level, ratio in ratios.items()}
        return cls(**data)


@dataclass(frozen=True)
class AdaptiveFLConfig:
    """Full AdaptiveFL algorithm configuration."""

    federated: FederatedConfig = field(default_factory=FederatedConfig)
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    pool: ModelPoolConfig = field(default_factory=ModelPoolConfig)
    #: client-selection strategy: "rl-cs" (paper), "rl-c", "rl-s", "random", "greedy"
    selection_strategy: str = "rl-cs"
    #: success-rate cap applied to the resource reward (paper: 0.5)
    resource_reward_cap: float = 0.5
    #: RL-table backend: "auto" picks "streaming" at fleet scale (sparse
    #: O(selected) tables + mask selection) and "dense" below it
    selector_backend: str = "auto"

    def __post_init__(self) -> None:
        valid = {"rl-cs", "rl-c", "rl-s", "random", "greedy"}
        if self.selection_strategy not in valid:
            raise ValueError(f"selection_strategy must be one of {sorted(valid)}")
        if not 0.0 < self.resource_reward_cap <= 1.0:
            raise ValueError("resource_reward_cap must be in (0, 1]")
        if self.selector_backend not in {"auto", "dense", "streaming"}:
            raise ValueError("selector_backend must be 'auto', 'dense' or 'streaming'")

    def to_dict(self) -> dict:
        return {
            "federated": self.federated.to_dict(),
            "local": self.local.to_dict(),
            "pool": self.pool.to_dict(),
            "selection_strategy": self.selection_strategy,
            "resource_reward_cap": self.resource_reward_cap,
            "selector_backend": self.selector_backend,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AdaptiveFLConfig":
        data = checked_payload(cls, payload)
        if "federated" in data:
            data["federated"] = FederatedConfig.from_dict(data["federated"])
        if "local" in data:
            data["local"] = LocalTrainingConfig.from_dict(data["local"])
        if "pool" in data:
            data["pool"] = ModelPoolConfig.from_dict(data["pool"])
        return cls(**data)
