"""AdaptiveFL reproduction (DAC 2024).

Top-level package layout:

* ``repro.nn`` — numpy deep-learning substrate and slimmable model zoo.
* ``repro.data`` — synthetic federated datasets and partitioners.
* ``repro.devices`` — device heterogeneity / resource-uncertainty models and
  the simulated real test-bed.
* ``repro.core`` — the paper's contribution: fine-grained width-wise
  pruning, RL-based client selection, heterogeneous aggregation and the
  AdaptiveFL training loop.
* ``repro.baselines`` — All-Large (FedAvg), Decoupled, HeteroFL and ScaleFL.
* ``repro.experiments`` — configurations and runners that regenerate every
  table and figure of the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
