"""AdaptiveFL reproduction (DAC 2024).

The curated public surface lives in :mod:`repro.api` and is re-exported
here lazily — ``import repro`` is cheap, and the common entry points are
one import away::

    from repro import ExperimentSetting, ExperimentSession, ProgressCallback
    session = ExperimentSession(ExperimentSetting(model="simple_cnn"))
    result = session.with_callback(ProgressCallback()).run("adaptivefl")

or from a shell: ``python -m repro run --algorithm adaptivefl --scale ci``.

Package layout:

* ``repro.api`` — the public experiment-session layer: algorithm registry
  (``@register_algorithm``), training callbacks, serialisable
  ``ExperimentSpec``, ``ExperimentSession`` and the CLI.
* ``repro.nn`` — numpy deep-learning substrate and slimmable model zoo.
* ``repro.data`` — synthetic federated datasets and partitioners.
* ``repro.devices`` — device heterogeneity / resource-uncertainty models and
  the simulated real test-bed.
* ``repro.engine`` — the parallel client-execution engine: serial, thread
  and process executors with bit-identical, seed-stable results, plus the
  slice/delta weight transport with per-worker state caching.
* ``repro.perf`` — the profiling + optimization layer: scoped timers and
  counters (CLI ``--profile``), reusable kernel workspaces, FLOP counting.
* ``repro.sim`` — the discrete-event AIoT fleet simulator: scenario
  registry (``@register_scenario``), availability/dropout/battery/network
  dynamics and deadline-aware aggregation accounting.
* ``repro.store`` — the durable experiment store: content-addressed
  per-round checkpoints, bit-identical resume, sweep orchestration over
  (algorithms × scenarios × seeds) grids and report regeneration from
  stored state only.
* ``repro.core`` — the paper's contribution: fine-grained width-wise
  pruning, RL-based client selection, heterogeneous aggregation and the
  AdaptiveFL training loop.
* ``repro.baselines`` — All-Large (FedAvg), Decoupled, HeteroFL and ScaleFL,
  all self-registered in the algorithm registry.
* ``repro.experiments`` — settings, scales, registry-driven runners and
  report rendering that regenerate the paper's tables and figures.
"""

from __future__ import annotations

import importlib
from typing import Any

__version__ = "1.2.0"

_EXPORTS: dict[str, str] = {
    # algorithms
    "AdaptiveFL": "repro.core.server",
    "FederatedAlgorithm": "repro.core.fl_base",
    # configs
    "AdaptiveFLConfig": "repro.core.config",
    "FederatedConfig": "repro.core.config",
    "LocalTrainingConfig": "repro.core.config",
    "ModelPoolConfig": "repro.core.config",
    # history
    "TrainingHistory": "repro.core.history",
    "RoundRecord": "repro.core.history",
    # registry
    "AlgorithmSpec": "repro.api.registry",
    "register_algorithm": "repro.api.registry",
    "get_algorithm": "repro.api.registry",
    "available_algorithms": "repro.api.registry",
    # perf
    "Profiler": "repro.perf.profiler",
    "Workspace": "repro.perf.workspace",
    "count_flops": "repro.perf.flops",
    "count_params": "repro.perf.flops",
    # callbacks
    "Callback": "repro.api.callbacks",
    "ProgressCallback": "repro.api.callbacks",
    "EarlyStopping": "repro.api.callbacks",
    "WallClockBudget": "repro.api.callbacks",
    "JsonHistoryStreamer": "repro.api.callbacks",
    # fleet simulation
    "ScenarioSpec": "repro.sim.scenario",
    "register_scenario": "repro.sim.scenario",
    "get_scenario": "repro.sim.scenario",
    "available_scenarios": "repro.sim.scenario",
    "FleetSimulator": "repro.sim.fleet",
    # execution engine
    "Executor": "repro.engine.base",
    "SerialExecutor": "repro.engine.serial",
    "ThreadExecutor": "repro.engine.thread",
    "ProcessExecutor": "repro.engine.process",
    "create_executor": "repro.engine.factory",
    # experiment store (repro.store)
    "RunStore": "repro.store.runstore",
    "RunRecorder": "repro.store.runstore",
    "Checkpoint": "repro.store.checkpoint",
    "SweepSpec": "repro.store.sweep",
    "run_sweep": "repro.store.sweep",
    "generate_report": "repro.store.report",
    "write_report": "repro.store.report",
    # experiment layer
    "ExperimentSpec": "repro.api.spec",
    "ExperimentSession": "repro.api.session",
    "ExperimentSetting": "repro.experiments.settings",
    "prepare_experiment": "repro.experiments.settings",
    "AlgorithmResult": "repro.experiments.runner",
    "run_algorithm": "repro.experiments.runner",
    "run_comparison": "repro.experiments.runner",
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
