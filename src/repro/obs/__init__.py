"""Unified telemetry: structured events, metrics, and trace propagation.

Three pillars, all wired through the federation stack:

* :mod:`repro.obs.events` — a process-wide :class:`EventBus` emitting
  typed, schema-versioned events to pluggable sinks
  (:mod:`repro.obs.sinks`: JSONL file with rotation, in-memory ring,
  stderr pretty-printer).
* :mod:`repro.obs.metrics` — counters/gauges/histograms in a
  :class:`MetricsRegistry`, rendered as Prometheus text exposition and
  served live by :mod:`repro.obs.status` and the ``repro metrics`` CLI.
* :mod:`repro.obs.trace` — trace/span ids minted per round and per
  task, carried on task envelopes and optional wire-protocol fields so
  ``scripts/trace_join.py`` can stitch server + client logs into
  per-task timelines.

Telemetry is strictly one-way: it observes runs, stamps wall-clock time
through the sanctioned :mod:`repro.obs.clock` shim, and never feeds run
keys, checkpoints, histories or randomness — determinism and resume
parity are untouched whether telemetry is on or off.

Exports resolve lazily so importing :mod:`repro` never drags in the
sink/status machinery on paths that don't use it.
"""

from __future__ import annotations

import importlib
from typing import Any

__all__ = [
    "Event",
    "EventBus",
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "configure_telemetry",
    "shutdown_telemetry",
    "telemetry_active",
    "emit",
    "get_event_bus",
    "Sink",
    "JsonlSink",
    "RingBufferSink",
    "StderrSink",
    "format_event",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "render_prometheus",
    "StatusServer",
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "wall_time",
    "monotonic",
    "perf_counter",
    "iso_format",
]

_EXPORTS: dict[str, str] = {
    "Event": "repro.obs.events",
    "EventBus": "repro.obs.events",
    "EVENT_SCHEMA_VERSION": "repro.obs.events",
    "EVENT_TYPES": "repro.obs.events",
    "configure_telemetry": "repro.obs.events",
    "shutdown_telemetry": "repro.obs.events",
    "telemetry_active": "repro.obs.events",
    "emit": "repro.obs.events",
    "get_event_bus": "repro.obs.events",
    "Sink": "repro.obs.sinks",
    "JsonlSink": "repro.obs.sinks",
    "RingBufferSink": "repro.obs.sinks",
    "StderrSink": "repro.obs.sinks",
    "format_event": "repro.obs.sinks",
    "Counter": "repro.obs.metrics",
    "Gauge": "repro.obs.metrics",
    "Histogram": "repro.obs.metrics",
    "MetricsRegistry": "repro.obs.metrics",
    "registry": "repro.obs.metrics",
    "render_prometheus": "repro.obs.metrics",
    "StatusServer": "repro.obs.status",
    "TraceContext": "repro.obs.trace",
    "new_trace_id": "repro.obs.trace",
    "new_span_id": "repro.obs.trace",
    "wall_time": "repro.obs.clock",
    "monotonic": "repro.obs.clock",
    "perf_counter": "repro.obs.clock",
    "iso_format": "repro.obs.clock",
}


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
