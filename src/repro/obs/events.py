"""Structured, schema-versioned telemetry events and the process EventBus.

An :class:`Event` is one fact about the running system — a round
started, a task was dispatched, a client reconnected — stamped with the
wall clock (via the sanctioned :mod:`repro.obs.clock` shim) and
optionally carrying trace/span identity so server- and client-side logs
can be joined per task (``scripts/trace_join.py``).

Events are *observations*, never inputs: nothing read back from an
event log may feed run keys, checkpoints, histories or randomness.
That one-way rule is what lets telemetry carry wall-clock data without
touching the determinism contract.

The process-wide :class:`EventBus` is dormant by default: with no sinks
attached, :func:`emit` is a single attribute check and the rest of the
stack pays ~nothing (``benchmarks/bench_obs_overhead.py`` keeps this
honest).  :func:`configure_telemetry` attaches sinks; tests and
subsystems that need isolation construct their own bus.

Event type catalogue (``EVENT_TYPES``):

===================== =====================================================
type                  emitted when
===================== =====================================================
``run_start``         a federated run begins (serial or distributed)
``round_start``       a round's task fan-out is about to be planned
``round_end``         a round's aggregation + eval completed
``task_dispatch``     the coordinator hands a task to a remote client
``task_start``        a remote client begins executing a task
``task_result``       the coordinator accepts a task's uploaded result
``task_upload``       a remote client uploads its result
``client_connect``    a client completes the hello handshake
``client_reconnect``  a known client name re-attaches
``client_disconnect`` a client's connection is torn down
``straggler_requeue`` a dispatched task times out and is requeued
``checkpoint_saved``  the run store persists a checkpoint
``eval_done``         an evaluation pass produced metrics
``run_end``           a federated run finished
===================== =====================================================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.clock import wall_time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.sinks import Sink

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "Event",
    "EventBus",
    "get_event_bus",
    "configure_telemetry",
    "shutdown_telemetry",
    "telemetry_active",
    "emit",
]

#: bump when the Event envelope itself changes shape
EVENT_SCHEMA_VERSION = 1

#: the sanctioned event-type vocabulary (emitting outside it raises)
EVENT_TYPES = frozenset(
    {
        "run_start",
        "round_start",
        "round_end",
        "task_dispatch",
        "task_start",
        "task_result",
        "task_upload",
        "client_connect",
        "client_reconnect",
        "client_disconnect",
        "straggler_requeue",
        "checkpoint_saved",
        "eval_done",
        "run_end",
    }
)


@dataclass(frozen=True)
class Event:
    """One telemetry fact: a type, a wall-clock timestamp, and context.

    ``data`` holds type-specific payload (round index, client name,
    byte counts …) and must stay JSON-serialisable; ``trace_id``/
    ``span_id`` are empty strings when the event is not part of a task
    timeline.
    """

    type: str
    timestamp: float
    source: str = ""
    trace_id: str = ""
    span_id: str = ""
    data: dict[str, Any] = field(default_factory=dict)
    schema_version: int = EVENT_SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        """The JSONL wire form (flat dict, schema version included)."""
        return {
            "type": self.type,
            "timestamp": self.timestamp,
            "source": self.source,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "data": dict(self.data),
            "schema_version": self.schema_version,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Event":
        """Reconstruct an event from its :meth:`to_dict` form, strictly."""
        # imported here: repro.core pulls in the executor stack, which
        # imports this module — a top-level import would be circular
        from repro.core.serialization import checked_payload

        return cls(**checked_payload(cls, payload))


class EventBus:
    """Fan events out to attached sinks; dormant when no sink is attached.

    Sink errors are contained: a sink that raises is detached and its
    failure recorded on :attr:`dropped_sinks` rather than propagated
    into training or serving code paths — telemetry must never take the
    run down with it.
    """

    def __init__(self, source: str = ""):
        self.source = source
        self._sinks: list["Sink"] = []
        self._lock = threading.Lock()
        self.dropped_sinks: list[str] = []

    @property
    def active(self) -> bool:
        """True when at least one sink is attached."""
        return bool(self._sinks)

    def attach(self, sink: "Sink") -> None:
        """Attach a sink; subsequent emits are delivered to it."""
        with self._lock:
            self._sinks.append(sink)

    def detach(self, sink: "Sink") -> None:
        """Detach a sink if attached (idempotent)."""
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def emit(
        self,
        type: str,
        *,
        trace_id: str = "",
        span_id: str = "",
        **data: Any,
    ) -> Event | None:
        """Build and deliver an event; returns it, or ``None`` when dormant.

        The timestamp is read here, once, so every sink sees the same
        instant.  Unknown ``type`` values raise immediately — the
        vocabulary is part of the schema, not free text.
        """
        if type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {type!r}; add it to EVENT_TYPES first")
        if not self._sinks:
            return None
        event = Event(
            type=type,
            timestamp=wall_time(),
            source=self.source,
            trace_id=trace_id,
            span_id=span_id,
            data=data,
        )
        self.publish(event)
        return event

    def publish(self, event: Event) -> None:
        """Deliver an already-built event to every sink, containing failures."""
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink.write(event)
            except Exception as exc:  # noqa: BLE001 - telemetry must not kill the run
                self.detach(sink)
                self.dropped_sinks.append(f"{sink.__class__.__name__}: {exc}")

    def close(self) -> None:
        """Detach and close every sink."""
        with self._lock:
            sinks, self._sinks = self._sinks, []
        for sink in sinks:
            try:
                sink.close()
            except Exception:  # noqa: BLE001 - best-effort shutdown
                pass


#: the process-wide bus (dormant until configure_telemetry attaches sinks)
_BUS = EventBus()


def get_event_bus() -> EventBus:
    """The process-wide event bus."""
    return _BUS


def telemetry_active() -> bool:
    """True when the process-wide bus has at least one sink attached."""
    return _BUS.active


def configure_telemetry(
    *,
    jsonl_path: str | None = None,
    ring_size: int = 0,
    stderr: bool = False,
    source: str = "",
) -> list["Sink"]:
    """Attach the standard sinks to the process-wide bus.

    Returns the sinks attached (so callers can inspect the ring buffer
    or flush the JSONL file).  Calling with all defaults attaches
    nothing and leaves the bus dormant.
    """
    from repro.obs.sinks import JsonlSink, RingBufferSink, StderrSink

    if source:
        _BUS.source = source
    attached: list["Sink"] = []
    if jsonl_path is not None:
        attached.append(JsonlSink(jsonl_path))
    if ring_size > 0:
        attached.append(RingBufferSink(capacity=ring_size))
    if stderr:
        attached.append(StderrSink())
    for sink in attached:
        _BUS.attach(sink)
    return attached


def shutdown_telemetry() -> None:
    """Detach and close every sink on the process-wide bus."""
    _BUS.close()


def emit(type: str, *, trace_id: str = "", span_id: str = "", **data: Any) -> Event | None:
    """Emit on the process-wide bus (no-op returning ``None`` when dormant)."""
    return _BUS.emit(type, trace_id=trace_id, span_id=span_id, **data)
