"""Counters, gauges and histograms with Prometheus text exposition.

One :class:`MetricsRegistry` is the process-wide source of truth for
operational numbers (:func:`registry`); subsystems that need an
isolated, resettable namespace — the per-run
:class:`~repro.perf.profiler.Profiler`, the per-fleet
:class:`~repro.serve.coordinator.Coordinator` — construct their own and
hand it to :func:`render_prometheus` alongside the global one.

All primitives are thread-safe (one lock per metric): they are updated
from the training thread, the serve coordinator's asyncio loop thread
and the status endpoint concurrently.  They are *operational* metrics —
cheap enough to update unconditionally a few times per round, but
deliberately kept out of the NumPy kernels, whose op-level story belongs
to ``benchmarks/bench_hotpaths.py``.

The catalogue of well-known metric names lives with their emit sites;
the ones the docs table documents are ``rounds_total``,
``round_duration_seconds``, ``tasks_inflight``, ``bytes_up_total``/
``bytes_down_total``, ``heartbeat_rtt_seconds``, ``reconnects_total``
and the ``serve_*_total`` churn counters.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "render_prometheus",
    "DEFAULT_BUCKETS",
]

#: default histogram buckets (seconds-flavoured, like Prometheus client libs)
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

_NAME_OK = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"


def _check_name(name: str) -> str:
    if not name or any(ch not in _NAME_OK for ch in name) or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r} (use [a-zA-Z_:][a-zA-Z0-9_:]*)")
    return name


class Metric:
    """Base class of every metric: a name, a help string, a lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._lock = threading.Lock()

    def expose(self) -> list[tuple[str, float]]:
        """The metric's sample lines as ``(suffixed_name, value)`` pairs."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing total (events seen, bytes moved)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ValueError("counters cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        with self._lock:
            return self._value

    def expose(self) -> list[tuple[str, float]]:
        """One sample: the total itself."""
        return [(self.name, self.value)]


class Gauge(Metric):
    """A value that can go up and down (tasks in flight, connected clients)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """The current value."""
        with self._lock:
            return self._value

    def expose(self) -> list[tuple[str, float]]:
        """One sample: the current value."""
        return [(self.name, self.value)]


class Histogram(Metric):
    """A distribution: cumulative buckets plus sum and count.

    ``observe`` is O(#buckets); buckets are fixed at construction.  The
    exposition follows Prometheus conventions (``_bucket{le=...}``,
    ``_sum``, ``_count``), and ``calls``/``total`` properties give the
    profiler its (calls, seconds) view without re-deriving from samples.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: Iterable[float] | None = None):
        super().__init__(name, help)
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._bucket_counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[index] += 1
                    break

    @property
    def calls(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def snapshot(self) -> tuple[list[int], float, int]:
        """A consistent ``(bucket_counts, sum, count)`` triple."""
        with self._lock:
            return list(self._bucket_counts), self._sum, self._count

    def expose(self) -> list[tuple[str, float]]:
        """Cumulative ``_bucket`` samples plus ``_sum`` and ``_count``."""
        counts, total, count = self.snapshot()
        samples: list[tuple[str, float]] = []
        cumulative = 0
        for bound, bucket in zip(self.bounds, counts):
            cumulative += bucket
            samples.append((f'{self.name}_bucket{{le="{_format_bound(bound)}"}}', float(cumulative)))
        samples.append((f'{self.name}_bucket{{le="+Inf"}}', float(count)))
        samples.append((f"{self.name}_sum", total))
        samples.append((f"{self.name}_count", float(count)))
        return samples


def _format_bound(bound: float) -> str:
    """Render a bucket bound the way Prometheus client libraries do."""
    if bound == math.inf:
        return "+Inf"
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


class MetricsRegistry:
    """A namespace of metrics with get-or-create accessors.

    Accessors are idempotent: asking twice for the same name returns the
    same object, and asking for a name that exists under a different
    metric kind raises — one name, one meaning.
    """

    def __init__(self):
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as a {existing.kind}, not a {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "", buckets: Iterable[float] | None = None) -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed on first call)."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)  # type: ignore[return-value]

    def get(self, name: str) -> Metric | None:
        """The metric registered under ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> list[Metric]:
        """Every registered metric, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every metric (isolated namespaces only — tests, profiler runs)."""
        with self._lock:
            self._metrics.clear()

    def render(self) -> str:
        """This registry alone in Prometheus text exposition format."""
        return render_prometheus(self)


#: the process-wide registry backing the status endpoint and CLI viewers
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry (one source of operational truth)."""
    return _REGISTRY


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Render one or more registries in Prometheus text exposition format.

    Later registries win on (unlikely) name collisions, matching how the
    serve status endpoint layers a coordinator's fleet registry over the
    process-wide one.
    """
    merged: dict[str, Metric] = {}
    for reg in registries:
        for metric in reg.metrics():
            merged[metric.name] = metric
    lines: list[str] = []
    for name in sorted(merged):
        metric = merged[name]
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for sample_name, value in metric.expose():
            lines.append(f"{sample_name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    return str(int(value)) if float(value).is_integer() and abs(value) < 1e15 else repr(float(value))
