"""Trace and span identity for cross-process task timelines.

A **trace** covers one federated round: the server mints a trace id when
the round starts and every task fanned out in that round carries it.  A
**span** covers one task's lifecycle inside its trace: planned on the
server, dispatched over the wire, executed on a worker, uploaded back.
Both ids travel on :class:`~repro.engine.tasks.ClientTask` envelopes and
— for the networked path — on the optional trace fields of the wire
protocol's ``task_dispatch``/``state_delta`` frames, so a task's story
is reconstructable by joining server-side and client-side event logs
(``scripts/trace_join.py``).

Ids are minted from process-wide counters, **not** from OS entropy:
reprolint's RPL001 bans ``uuid4`` outside the sanctioned RNG plumbing,
and counters are all the uniqueness one process's logs need (two
processes never mint the same id because the server mints all of them).
Ids are identity, not data — they never enter run keys, checkpoints or
histories, so determinism and resume parity are untouched.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

__all__ = ["TraceContext", "new_trace_id", "new_span_id"]

#: process-wide trace allocator (server-side; unique per process lifetime)
_TRACE_IDS = itertools.count(1)

#: process-wide span allocator
_SPAN_IDS = itertools.count(1)


@dataclass(frozen=True)
class TraceContext:
    """The (trace, span) identity one task carries across process boundaries.

    Frozen and string-only, so it pickles with the task it annotates and
    can never smuggle handles or state across the wire.
    """

    trace_id: str
    span_id: str


def new_trace_id(prefix: str = "trace") -> str:
    """Mint a process-unique trace id, e.g. ``adaptivefl-r3#000007``.

    ``prefix`` carries human-readable run context (algorithm name, round
    index); the counter suffix guarantees uniqueness when the same round
    index recurs across runs in one process.
    """
    return f"{prefix}#{next(_TRACE_IDS):06d}"


def new_span_id() -> str:
    """Mint a process-unique span id, e.g. ``s000042``."""
    return f"s{next(_SPAN_IDS):06d}"
