"""The sanctioned wall-clock shim — the only module allowed to read it.

Telemetry needs wall-clock timestamps (operators correlate events with
the rest of their infrastructure), but the repository's determinism
contract bans wall-clock reads everywhere results are computed:
randomness and timing must be pure functions of ``(seed, round,
client)``, and a ``time.time()`` call that leaks into a run key,
checkpoint or history silently breaks resume parity.

The compromise is this shim.  Reprolint's RPL001 rule allows
``time.time`` only here (and entropy construction only in
:mod:`repro.engine.rng`), so every wall-clock read in the codebase is
greppable to one function — and code review only has to check that
:func:`wall_time` output flows into *event records and metrics*, never
into anything content-addressed or checkpointed.

Measurement clocks (:func:`monotonic`, :func:`perf_counter`) are
re-exported for symmetry; they were always allowed (they time work, they
never feed results).
"""

from __future__ import annotations

import time
from datetime import datetime, timezone

__all__ = ["wall_time", "monotonic", "perf_counter", "iso_format"]


def wall_time() -> float:
    """Seconds since the Unix epoch (the one sanctioned wall-clock read).

    Use only for telemetry payloads — event timestamps, metric exposition
    — never for anything that feeds run keys, checkpoints, histories or
    randomness.
    """
    return time.time()


def monotonic() -> float:
    """Monotonic seconds for measuring durations (never goes backwards)."""
    return time.monotonic()


def perf_counter() -> float:
    """Highest-resolution monotonic clock, for short-interval timing."""
    return time.perf_counter()


def iso_format(timestamp: float) -> str:
    """Render a :func:`wall_time` value as a UTC ISO-8601 string."""
    return datetime.fromtimestamp(timestamp, tz=timezone.utc).isoformat(timespec="milliseconds")
