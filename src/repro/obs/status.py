"""Minimal HTTP status endpoint for live metrics and recent events.

A :class:`StatusServer` binds alongside the serve coordinator (on its
asyncio loop) and answers three read-only paths:

* ``GET /metrics`` — Prometheus text exposition of the configured
  registries (the process-wide registry layered with the coordinator's
  fleet registry);
* ``GET /healthz`` — liveness probe, always ``ok``;
* ``GET /events`` — the most recent telemetry events from an attached
  ring buffer, as a JSON array (empty when no ring is configured).

It speaks just enough HTTP/1.0 for ``curl``, Prometheus scrapers and
``repro metrics``: one request per connection, ``Connection: close``,
no keep-alive, no TLS.  It is an operator window, not a public API —
bind it to loopback unless the network is trusted.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.obs.sinks import RingBufferSink

__all__ = ["StatusServer"]


class StatusServer:
    """Serve ``/metrics``, ``/healthz`` and ``/events`` over HTTP/1.0."""

    def __init__(
        self,
        registries: list[MetricsRegistry],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ring: RingBufferSink | None = None,
    ):
        self.registries = list(registries)
        self.host = host
        self.port = port
        self.ring = ring
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and begin answering requests; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return (self.host, self.port)

    async def stop(self) -> None:
        """Stop accepting connections and release the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else ""
            # drain headers so well-behaved clients see a clean close
            while True:
                header = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if header in (b"\r\n", b"\n", b""):
                    break
            status, content_type, body = self._respond(path)
            payload = body.encode("utf-8")
            writer.write(
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n".encode("latin-1") + payload
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    def _respond(self, path: str) -> tuple[str, str, str]:
        """Route one request path to ``(status line, content type, body)``."""
        if path == "/metrics":
            return (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(*self.registries),
            )
        if path == "/healthz":
            return "200 OK", "text/plain; charset=utf-8", "ok\n"
        if path == "/events":
            events = [event.to_dict() for event in self.ring.events()] if self.ring else []
            return "200 OK", "application/json; charset=utf-8", json.dumps(events) + "\n"
        return "404 Not Found", "text/plain; charset=utf-8", f"unknown path {path}\n"
