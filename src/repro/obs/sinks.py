"""Event sinks: JSONL file (atomic, rotating), ring buffer, stderr.

Sinks receive fully-built :class:`~repro.obs.events.Event` objects from
an :class:`~repro.obs.events.EventBus` and are individually thread-safe
— emitters on the training thread and the serve loop thread share one
sink instance.  A sink that raises is detached by the bus, so sinks are
free to fail loudly (full disk, closed stream) without endangering the
run.

:class:`JsonlSink` appends one compact JSON object per line and rotates
by size: when the active file would exceed ``max_bytes`` it is renamed
to ``<path>.1`` (shifting older backups up to ``backups``) and a fresh
file is started.  Each line is written with a single ``write`` call of a
complete ``...\\n`` string under the sink lock, so concurrent emitters
never interleave partial lines — the atomicity unit is the line, which
is exactly what ``scripts/trace_join.py`` and ``repro tail`` need.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from collections import deque
from pathlib import Path
from typing import TextIO

from repro.obs.clock import iso_format
from repro.obs.events import Event

__all__ = ["Sink", "JsonlSink", "RingBufferSink", "StderrSink", "format_event"]


class Sink:
    """Destination for telemetry events."""

    def write(self, event: Event) -> None:
        """Record one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (default: nothing to release)."""


class JsonlSink(Sink):
    """Append events to a JSONL file with size-based rotation.

    ``max_bytes`` bounds the active file (rotation happens *before* the
    write that would cross it), and ``backups`` bounds how many rotated
    generations (``.1`` newest … ``.N`` oldest) are kept.
    """

    def __init__(self, path: str | Path, *, max_bytes: int = 32 * 1024 * 1024, backups: int = 3):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if backups < 0:
            raise ValueError("backups cannot be negative")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream: TextIO | None = open(self.path, "a", encoding="utf-8")
        self._size = self.path.stat().st_size

    def write(self, event: Event) -> None:
        """Serialise one event as a single complete line, rotating first if needed."""
        line = json.dumps(event.to_dict(), separators=(",", ":"), sort_keys=True) + "\n"
        encoded_len = len(line.encode("utf-8"))
        with self._lock:
            if self._stream is None:
                raise ValueError(f"JsonlSink({self.path}) is closed")
            if self._size and self._size + encoded_len > self.max_bytes:
                self._rotate()
            self._stream.write(line)
            self._stream.flush()
            self._size += encoded_len

    def _rotate(self) -> None:
        """Shift backups up one generation and start a fresh active file."""
        self._stream.close()
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(f"{self.path.name}.{self.backups}")
            oldest.unlink(missing_ok=True)
            for generation in range(self.backups - 1, 0, -1):
                source = self.path.with_name(f"{self.path.name}.{generation}")
                if source.exists():
                    os.replace(source, self.path.with_name(f"{self.path.name}.{generation + 1}"))
            if self.path.exists():
                os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        self._stream = open(self.path, "w", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        """Flush and close the active file."""
        with self._lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None


class RingBufferSink(Sink):
    """Keep the most recent ``capacity`` events in memory.

    Backs the serve status endpoint's ``/events`` view and tests that
    assert on emitted telemetry without touching the filesystem.
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def write(self, event: Event) -> None:
        """Append, evicting the oldest event once at capacity."""
        with self._lock:
            self._events.append(event)

    def events(self) -> list[Event]:
        """A snapshot of the buffered events, oldest first."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        """Drop every buffered event."""
        with self._lock:
            self._events.clear()


class StderrSink(Sink):
    """Pretty-print events to a stream (stderr by default) for humans."""

    def __init__(self, stream: TextIO | None = None):
        self._stream = stream
        self._lock = threading.Lock()

    def write(self, event: Event) -> None:
        """Write one formatted line (stream resolved late so capsys works)."""
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            stream.write(format_event(event) + "\n")
            stream.flush()


def format_event(event: Event) -> str:
    """One human-readable line for an event (shared by StderrSink and ``repro tail``)."""
    parts = [iso_format(event.timestamp), f"{event.type:<18}"]
    if event.source:
        parts.append(f"[{event.source}]")
    if event.trace_id:
        span = f"/{event.span_id}" if event.span_id else ""
        parts.append(f"{event.trace_id}{span}")
    if event.data:
        parts.append(" ".join(f"{key}={event.data[key]}" for key in sorted(event.data)))
    return " ".join(parts)
