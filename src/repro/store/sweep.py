"""Sweep orchestration: expand a grid, skip what's done, run the rest.

A :class:`SweepSpec` takes a base :class:`~repro.api.spec.ExperimentSpec`
and crosses it with seeds and scenarios: every **cell** is one
``(algorithm, scenario, seed)`` run keyed by its canonical run key.
:func:`run_sweep` walks the grid grouped by ``(scenario, seed)`` so each
group prepares its experiment exactly once (the session layer's paired-
comparison property), skips cells the store has already completed,
resumes partially checkpointed cells from their latest round, and runs
the remainder through the normal executor layer.  Because cell identity
is the run-key hash, re-invoking the same sweep after a crash (or on
another day) does only the missing work — the acceptance path of
``repro sweep`` on the CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.api.registry import available_algorithms, validate_algorithm_names
from repro.api.spec import ExperimentSpec
from repro.core.serialization import checked_payload, coerce_int_tuple
from repro.experiments.runner import AlgorithmResult, run_algorithm
from repro.experiments.settings import prepare_experiment
from repro.sim.scenario import validate_scenario_choice
from repro.store.keys import run_key
from repro.store.objects import write_atomic
from repro.store.runstore import RunStore

__all__ = ["SweepSpec", "SweepCell", "CellResult", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepSpec:
    """A grid of runs: base experiment × algorithms × scenarios × seeds."""

    #: the shared experiment description (its setting's seed/scenario are
    #: overridden per cell; its algorithms list bounds the grid)
    base: ExperimentSpec = field(default_factory=ExperimentSpec)
    #: seeds to cross (defaults to the base setting's seed)
    seeds: tuple[int, ...] = ()
    #: scenarios to cross; ``None`` entries mean "no scenario"; an empty
    #: tuple keeps the base setting's scenario as the single column
    scenarios: tuple[str | None, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds", coerce_int_tuple(self.seeds, field_name="seeds") if self.seeds else ())
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        for scenario in self.scenarios:
            if scenario is not None and not isinstance(scenario, str):
                raise ValueError("scenarios must be names or None")
            validate_scenario_choice(scenario)

    # -- grid ---------------------------------------------------------------------------
    def algorithm_names(self) -> tuple[str, ...]:
        """The grid's algorithm axis (base spec's list, or every registered one)."""
        return validate_algorithm_names(self.base.algorithms or available_algorithms())

    def seed_values(self) -> tuple[int, ...]:
        """The grid's seed axis (defaults to the base setting's single seed)."""
        return self.seeds if self.seeds else (self.base.setting.seed,)

    def scenario_values(self) -> tuple[str | None, ...]:
        """The grid's scenario axis (defaults to the base setting's scenario)."""
        return self.scenarios if self.scenarios else (self.base.setting.scenario,)

    def cells(self) -> list["SweepCell"]:
        """Expand the full grid, grouped by (scenario, seed) then algorithm.

        The grouping order is load-bearing: consecutive cells of one
        ``(scenario, seed)`` pair share a prepared experiment, so
        :func:`run_sweep` prepares each pair exactly once.
        """
        cells = []
        for scenario in self.scenario_values():
            for seed in self.seed_values():
                setting = replace(self.base.setting, seed=seed, scenario=scenario)
                spec = replace(self.base, setting=setting)
                for algorithm in self.algorithm_names():
                    cells.append(SweepCell(algorithm=algorithm, scenario=scenario, seed=seed, spec=spec))
        return cells

    # -- serialisation ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly representation; round-trips through :meth:`from_dict`."""
        return {
            "base": self.base.to_dict(),
            "seeds": list(self.seeds),
            "scenarios": list(self.scenarios),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Strict reconstruction of :meth:`to_dict` output (unknown keys raise)."""
        data = checked_payload(cls, payload)
        if "base" in data:
            data["base"] = ExperimentSpec.from_dict(data["base"])
        if "seeds" in data:
            data["seeds"] = tuple(data["seeds"])
        if "scenarios" in data:
            data["scenarios"] = tuple(data["scenarios"])
        return cls(**data)

    def save(self, path: str | Path) -> Path:
        """Write the sweep as pretty-printed JSON (atomically); returns the path."""
        path = Path(path)
        write_atomic(path, json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SweepSpec":
        """Read a sweep back from JSON (strict: unknown keys raise)."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


@dataclass(frozen=True)
class SweepCell:
    """One (algorithm, scenario, seed) point of a sweep grid."""

    algorithm: str
    scenario: str | None
    seed: int
    #: the fully resolved per-cell experiment spec
    spec: ExperimentSpec

    def key(self) -> dict:
        """The cell's canonical run key (shared with :func:`run_algorithm`)."""
        return run_key(
            self.spec.setting,
            self.algorithm,
            selection_strategy=(
                self.spec.selection_strategy
                if _uses_strategy(self.algorithm)
                else None
            ),
            num_rounds=self.spec.num_rounds,
        )

    def run_id(self) -> str:
        """The cell's run ID inside a store."""
        return RunStore.run_id_for(self.key())


def _uses_strategy(algorithm: str) -> bool:
    from repro.api.registry import get_algorithm

    return get_algorithm(algorithm).uses_selection_strategy


@dataclass(frozen=True)
class CellResult:
    """What happened to one cell during a sweep invocation."""

    cell: SweepCell
    run_id: str
    #: ``"skipped"`` (already complete), ``"resumed"`` or ``"ran"``
    status: str
    result: AlgorithmResult

    def to_dict(self) -> dict:  # reprolint: disable=RPL004  (one-way result output)
        """JSON-friendly summary (history lives in the store, not here)."""
        return {
            "algorithm": self.cell.algorithm,
            "scenario": self.cell.scenario,
            "seed": self.cell.seed,
            "run_id": self.run_id,
            "status": self.status,
            "full_accuracy": self.result.full_accuracy,
            "avg_accuracy": self.result.avg_accuracy,
            "rounds": len(self.result.history),
        }


@dataclass
class SweepResult:
    """The outcome of one :func:`run_sweep` invocation over a grid."""

    sweep: SweepSpec
    cells: list[CellResult]

    def counts(self) -> dict[str, int]:
        """How many cells were skipped / resumed / freshly run."""
        counts = {"skipped": 0, "resumed": 0, "ran": 0}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        return counts

    def to_dict(self) -> dict:  # reprolint: disable=RPL004  (one-way result output)
        """JSON-friendly summary of the whole invocation."""
        return {
            "sweep": self.sweep.to_dict(),
            "counts": self.counts(),
            "cells": [cell.to_dict() for cell in self.cells],
        }


def run_sweep(
    sweep: SweepSpec,
    store: RunStore | str | Path,
    resume: bool = True,
    checkpoint_every: int = 1,
    callbacks: Sequence | None = None,
    on_cell: "Callable[[SweepCell, str], None] | None" = None,
) -> SweepResult:
    """Execute a sweep grid against a store, doing only the missing work.

    Cells whose run the store has already completed are **skipped**
    (their stored history becomes the cell result); cells with partial
    checkpoints are **resumed** from their latest round; fresh cells are
    **ran** end-to-end.  Each ``(scenario, seed)`` group prepares its
    experiment once and runs all its algorithms on the identical
    snapshot, preserving the paired-comparison property of
    :func:`~repro.experiments.runner.run_comparison`.

    ``on_cell(cell, status)`` is invoked before each cell executes —
    the CLI uses it for progress lines.  The sweep spec itself is saved
    into the store root (``sweep.json``, replacing any earlier grid) so
    the grid travels with the data and can be re-invoked later with
    ``repro sweep --spec <store>/sweep.json``.
    """
    if not isinstance(store, RunStore):
        store = RunStore(store)
    sweep.save(store.root / "sweep.json")

    results: list[CellResult] = []
    prepared = None
    prepared_group: tuple[str | None, int] | None = None
    for cell in sweep.cells():
        entry = store.begin_run(cell.key())
        if resume and entry.completed:
            status = "skipped"
        elif resume and store.checkpoint_rounds(entry.run_id):
            status = "resumed"
        else:
            status = "ran"
        if on_cell is not None:
            on_cell(cell, status)
        if status == "skipped":
            from repro.api.registry import get_algorithm

            strategy = cell.spec.selection_strategy if _uses_strategy(cell.algorithm) else None
            label = get_algorithm(cell.algorithm).run_label(strategy)
            result = AlgorithmResult.from_history(label, store.load_history(entry.run_id))
        else:
            group = (cell.scenario, cell.seed)
            if prepared is None or prepared_group != group:
                prepared = prepare_experiment(cell.spec.setting)
                prepared_group = group
            result = run_algorithm(
                cell.algorithm,
                prepared,
                selection_strategy=(
                    cell.spec.selection_strategy if _uses_strategy(cell.algorithm) else None
                ),
                num_rounds=cell.spec.num_rounds,
                callbacks=callbacks,
                store=store,
                resume=resume,
                checkpoint_every=checkpoint_every,
            )
        results.append(CellResult(cell=cell, run_id=entry.run_id, status=status, result=result))
    return SweepResult(sweep=sweep, cells=results)
