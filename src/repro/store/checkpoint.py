"""The checkpoint payload: everything a resumed run needs, bit-exactly.

A :class:`Checkpoint` captures the full mutable state of a
:class:`~repro.core.fl_base.FederatedAlgorithm` at the end of one round:

* the global model weights,
* the round-by-round :class:`~repro.core.history.TrainingHistory`
  (as its strict ``to_dict`` payload),
* the algorithm's base RNG state (the stream-keyed RNGs of
  :mod:`repro.engine.rng` are pure functions of ``(seed, round, client)``
  and need no state),
* algorithm-specific arrays and JSON state via the
  ``_collect_extra_state`` / ``_apply_extra_state`` subclass hooks — the
  RL curiosity/resource tables for AdaptiveFL, the battery/availability
  state of an attached :class:`~repro.sim.fleet.FleetSimulator`.

Everything numeric lives in numpy arrays serialised losslessly by the
content-addressed :class:`~repro.store.objects.ObjectStore`; everything
else is strict JSON.  ``schema_version`` gates compatibility: a store
written by a future incompatible layout refuses to resume
(:class:`CheckpointSchemaError`) instead of mis-restoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = ["Checkpoint", "CheckpointSchemaError", "CHECKPOINT_SCHEMA_VERSION"]

#: current on-disk checkpoint layout; bump on incompatible changes
CHECKPOINT_SCHEMA_VERSION = 1


class CheckpointSchemaError(RuntimeError):
    """The checkpoint's schema version is not one this code can restore.

    Refusing is deliberate: silently reinterpreting a future layout could
    resume a run from half-garbage state and corrupt its results.
    """


@dataclass
class Checkpoint:
    """Complete restorable state of one run at the end of one round."""

    #: registered name of the algorithm that produced the checkpoint
    algorithm: str
    #: last completed round (the history's final record)
    round_index: int
    #: global model weights, keyed exactly like ``state_dict()``
    global_state: dict[str, np.ndarray]
    #: ``TrainingHistory.to_dict()`` at checkpoint time
    history: dict
    #: ``numpy.random.Generator.bit_generator.state`` of the base RNG
    rng_state: dict
    #: algorithm-specific arrays (RL tables, battery charge, ...)
    extra_arrays: dict[str, np.ndarray] = field(default_factory=dict)
    #: algorithm-specific JSON state (fleet watermarks, ...)
    extra_state: dict = field(default_factory=dict)
    #: why the run stopped early, if a callback requested a stop by the
    #: time this checkpoint was captured (None = still running / ran out)
    stop_reason: str | None = None
    #: layout version of the serialised form
    schema_version: int = CHECKPOINT_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ValueError("round_index must be non-negative")
        if int(self.schema_version) != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointSchemaError(
                f"checkpoint schema version {self.schema_version} is not supported by this "
                f"build (expected {CHECKPOINT_SCHEMA_VERSION}); upgrade the code or discard "
                "the checkpoint"
            )

    def validate_for(self, algorithm_name: str, reference_state: Mapping[str, np.ndarray]) -> None:
        """Check the checkpoint matches the algorithm it is being restored onto.

        ``reference_state`` is the freshly built algorithm's global state;
        key sets and array shapes must agree exactly, so a checkpoint can
        never be restored onto a different architecture or pool layout.
        """
        if self.algorithm != algorithm_name:
            raise ValueError(
                f"checkpoint belongs to algorithm {self.algorithm!r}, cannot restore onto "
                f"{algorithm_name!r}"
            )
        if set(self.global_state) != set(reference_state):
            missing = sorted(set(reference_state) - set(self.global_state))
            extra = sorted(set(self.global_state) - set(reference_state))
            raise ValueError(
                "checkpoint global state does not match the model: "
                f"missing {missing[:3]}, unexpected {extra[:3]}"
            )
        for key, value in self.global_state.items():
            expected = reference_state[key]
            if value.shape != expected.shape:
                raise ValueError(
                    f"checkpoint array {key!r} has shape {value.shape}, the model expects "
                    f"{expected.shape}; the checkpoint was written at a different scale"
                )
