"""Canonical run keys: the identity a stored run is addressed by.

A run key is the complete, JSON-canonical description of one training
run — the :class:`~repro.experiments.settings.ExperimentSetting`, the
algorithm, its (normalised) selection strategy, the resolved round
budget and any per-run scenario override.  Hashing the canonical JSON of
the key yields the run ID, so submitting the same experiment twice maps
onto the same store entry and sweeps can skip completed cells without
preparing any data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.registry import DEFAULT_SELECTION_STRATEGY, get_algorithm
from repro.experiments.scaling import get_scale

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.settings import ExperimentSetting

__all__ = ["run_key", "resolve_num_rounds"]


def resolve_num_rounds(setting: "ExperimentSetting", num_rounds: int | None) -> int:
    """The run's total round budget: an explicit override or the scale preset.

    Cheap by construction — it only consults the scale registry, never
    synthesising data — so sweeps can compute keys for hundreds of cells
    before preparing anything.
    """
    if num_rounds is not None:
        return int(num_rounds)
    return int(get_scale(setting.scale, **setting.overrides).num_rounds)


def run_key(
    setting: "ExperimentSetting",
    algorithm: str,
    selection_strategy: str | None = None,
    num_rounds: int | None = None,
    scenario_override: str | None = None,
) -> dict:
    """The canonical identity of one run (hash it to get the run ID).

    The selection strategy is normalised so equivalent submissions
    collide: algorithms that ignore strategies always key on ``None``,
    and AdaptiveFL's default ``None`` keys on the paper's ``"rl-cs"``.
    """
    spec = get_algorithm(algorithm)
    if spec.uses_selection_strategy:
        strategy = selection_strategy or DEFAULT_SELECTION_STRATEGY
    else:
        if selection_strategy is not None:
            raise ValueError(
                f"algorithm {algorithm!r} does not accept a selection strategy "
                f"(got {selection_strategy!r})"
            )
        strategy = None
    return {
        "algorithm": algorithm,
        "selection_strategy": strategy,
        "setting": setting.to_dict(),
        "num_rounds": resolve_num_rounds(setting, num_rounds),
        "scenario_override": scenario_override,
    }
