"""``repro.store`` — the durable, resumable experiment store.

Four layers, bottom up:

* :mod:`repro.store.objects` — content-addressed array blobs
  (``objects/<sha256>``), written once, integrity-checked on every read.
* :mod:`repro.store.checkpoint` + :mod:`repro.store.runstore` —
  :class:`Checkpoint` (the complete restorable state of a run at the end
  of one round: weights, history, RNG state, RL tables, fleet state) and
  :class:`RunStore` (runs keyed by canonical run-key hashes, per-round
  checkpoint manifests, final histories).  :class:`RunRecorder` feeds a
  store from a live run via the ``on_checkpoint`` callback hook.
* :mod:`repro.store.sweep` — :class:`SweepSpec` grids
  (algorithms × scenarios × seeds) and :func:`run_sweep`, which skips
  completed cells by run-key hash, resumes partial ones and runs the
  rest.
* :mod:`repro.store.report` — ``report.md``/``report.json`` regenerated
  from stored state only.

The common entry points are ``ExperimentSession.with_store`` /
``session.run(..., resume=True)`` in code and ``repro run --store
--resume``, ``repro sweep`` and ``repro report`` on the CLI.

Attribute access is lazy (PEP 562), matching the other subpackages.
"""

from __future__ import annotations

import importlib
from typing import Any

_EXPORTS: dict[str, str] = {
    # object layer
    "ObjectStore": "repro.store.objects",
    "StoreCorruptionError": "repro.store.objects",
    # checkpoints
    "Checkpoint": "repro.store.checkpoint",
    "CheckpointSchemaError": "repro.store.checkpoint",
    "CHECKPOINT_SCHEMA_VERSION": "repro.store.checkpoint",
    # run store
    "RunStore": "repro.store.runstore",
    "RunEntry": "repro.store.runstore",
    "RunRecorder": "repro.store.runstore",
    # keys
    "run_key": "repro.store.keys",
    "resolve_num_rounds": "repro.store.keys",
    # sweeps
    "SweepSpec": "repro.store.sweep",
    "SweepCell": "repro.store.sweep",
    "CellResult": "repro.store.sweep",
    "SweepResult": "repro.store.sweep",
    "run_sweep": "repro.store.sweep",
    # reporting
    "ReportBundle": "repro.store.report",
    "generate_report": "repro.store.report",
    "write_report": "repro.store.report",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.store' has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
