"""Content-addressed blob storage backing the experiment store.

Every array a checkpoint persists is serialised to canonical ``.npy``
bytes and stored under the SHA-256 of those bytes —
``objects/<aa>/<sha256>`` — so identical payloads (weights a round did
not touch, duplicate runs of the same seed) are written once, and every
read re-hashes the file and compares it against its own name.  A
truncated or bit-flipped blob can therefore never be returned silently:
it raises :class:`StoreCorruptionError` with the offending path.

Writes are atomic (temp file + ``os.replace``) so a crash mid-write
leaves either the complete object or nothing under the final name.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["ObjectStore", "StoreCorruptionError", "canonical_json", "sha256_hex", "write_atomic"]


class StoreCorruptionError(RuntimeError):
    """A stored object or manifest failed its integrity check.

    Raised when a blob's bytes no longer hash to the blob's name (disk
    truncation, partial copy, bit rot) or when a checkpoint manifest is
    unreadable or fails its embedded checksum.  The message names the
    file so the operator can delete the damaged object and re-run.
    """


def sha256_hex(payload: bytes) -> str:
    """Hex SHA-256 of ``payload`` (the store's content address)."""
    return hashlib.sha256(payload).hexdigest()


def canonical_json(payload: Any) -> str:
    """Deterministic JSON used for hashing keys and checksumming manifests.

    Keys are sorted and separators fixed, so the same logical payload
    always produces the same bytes — the property run IDs and manifest
    checksums rely on.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_atomic(path: Path, payload: bytes | str) -> None:
    """Write a file atomically: temp file + ``os.replace``, cleaned up on error.

    Every file the store writes (blobs, manifests, run entries,
    histories) goes through here, so a crash mid-write leaves either the
    complete file or nothing — and a failed write (e.g. a full disk)
    never leaks ``.tmp-*`` litter.
    """
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as stream:
            stream.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):  # pragma: no cover - crash path
            os.unlink(tmp_name)
        raise


def _array_bytes(array: np.ndarray) -> bytes:
    """Canonical ``.npy`` serialisation (dtype, shape and bytes preserved exactly)."""
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return buffer.getvalue()


class ObjectStore:
    """Write-once, hash-named blob storage under one directory.

    The unit of storage is a numpy array: :meth:`put_array` serialises it
    to canonical ``.npy`` bytes, names the file after their SHA-256 and
    returns that digest; :meth:`get_array` loads it back bit-identically,
    verifying the hash on the way.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / digest

    def put_array(self, array: np.ndarray) -> str:
        """Store one array; returns its content address (hex SHA-256).

        Writing the same content twice is free: the blob already exists
        under its digest and is left untouched.
        """
        payload = _array_bytes(array)
        digest = sha256_hex(payload)
        path = self._path_for(digest)
        if not path.exists():
            write_atomic(path, payload)
        return digest

    def get_array(self, digest: str) -> np.ndarray:
        """Load one array by content address, verifying integrity.

        Raises :class:`StoreCorruptionError` when the blob is missing or
        its bytes no longer hash to ``digest`` (e.g. a truncated file).
        """
        path = self._path_for(digest)
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            raise StoreCorruptionError(f"object {digest} is missing from the store ({path})") from None
        actual = sha256_hex(payload)
        if actual != digest:
            raise StoreCorruptionError(
                f"object {path} is corrupt: content hashes to {actual[:12]}… but the "
                f"store expected {digest[:12]}… (truncated write or disk corruption); "
                "delete the object and resume from an earlier checkpoint"
            )
        return np.load(io.BytesIO(payload), allow_pickle=False)

    def contains(self, digest: str) -> bool:
        """True when a blob with this content address exists on disk."""
        return self._path_for(digest).exists()
