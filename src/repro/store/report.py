"""Report generation from stored runs — the paper's tables, from disk only.

:func:`generate_report` reads **nothing but the store**: every completed
run's key and final history become one cell of a
``(algorithm × scenario)`` accuracy table aggregated over seeds
(mean ± population std, matching how the paper reports repeated runs),
plus a per-cell appendix covering every ``(algorithm, scenario, seed)``
triple.  The output is a markdown document and a JSON mirror, written by
:func:`write_report` as ``report.md`` / ``report.json`` — regenerable at
any time, on any machine holding the store directory.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.store.objects import write_atomic
from repro.store.runstore import RunEntry, RunStore

__all__ = ["ReportBundle", "generate_report", "write_report"]


@dataclass
class ReportBundle:
    """A rendered report plus its machine-readable mirror."""

    markdown: str
    payload: dict

    def save(self, directory: str | Path) -> list[Path]:
        """Write ``report.md`` and ``report.json`` into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        md_path = directory / "report.md"
        json_path = directory / "report.json"
        write_atomic(md_path, self.markdown)
        write_atomic(json_path, json.dumps(self.payload, indent=2) + "\n")
        return [md_path, json_path]


def _scenario_label(scenario: str | None) -> str:
    return scenario if scenario is not None else "(none)"


def _mean_std(values: list[float]) -> tuple[float, float]:
    mean = sum(values) / len(values)
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    return mean, math.sqrt(variance)


def _format_cell(values: list[float | None]) -> str:
    present = [value for value in values if value is not None]
    if not present:
        return "—"
    mean, std = _mean_std(present)
    if len(present) == 1:
        return f"{mean * 100:.2f}"
    return f"{mean * 100:.2f} ± {std * 100:.2f}"


def generate_report(store: RunStore | str | Path, title: str = "Experiment report") -> ReportBundle:
    """Build the accuracy report from every completed run in the store.

    Incomplete runs (registered but never finished) are listed in a
    status section rather than silently dropped, so a report after a
    crashed sweep says exactly which cells still need work.  A path that
    holds no store raises instead of reporting emptily — a typo'd
    ``--store`` must not look like "no results".
    """
    if not isinstance(store, RunStore):
        store = RunStore(store, create=False)

    completed: list[dict] = []
    pending: list[RunEntry] = []
    for entry in store.runs():
        if not entry.completed:
            pending.append(entry)
            continue
        history = store.load_history(entry.run_id)
        setting = entry.key.get("setting", {})
        completed.append(
            {
                "run_id": entry.run_id,
                "algorithm": entry.key.get("algorithm", history.algorithm),
                "selection_strategy": entry.key.get("selection_strategy"),
                "scenario": entry.key.get("scenario_override") or setting.get("scenario"),
                "seed": setting.get("seed"),
                "num_rounds": entry.key.get("num_rounds"),
                "stop_reason": entry.stop_reason,
                **history.summary(),
            }
        )
    completed.sort(key=lambda row: (row["algorithm"], _scenario_label(row["scenario"]), row["seed"]))

    algorithms = sorted({row["algorithm"] for row in completed})
    scenarios = sorted({_scenario_label(row["scenario"]) for row in completed})

    def cell_values(algorithm: str, scenario: str, kind: str) -> list[float | None]:
        return [
            row[kind]
            for row in completed
            if row["algorithm"] == algorithm and _scenario_label(row["scenario"]) == scenario
        ]

    lines: list[str] = [f"# {title}", ""]
    lines.append(
        f"{len(completed)} completed run(s) across {len(algorithms)} algorithm(s), "
        f"{len(scenarios)} scenario(s)."
    )
    lines.append("")

    for kind, heading in (("full_accuracy", "Full-model accuracy (%)"), ("avg_accuracy", "Avg-head accuracy (%)")):
        if not completed:
            break
        lines.append(f"## {heading}")
        lines.append("")
        lines.append("Mean ± std over seeds; a single seed reports its value alone.")
        lines.append("")
        lines.append("| algorithm | " + " | ".join(scenarios) + " |")
        lines.append("|---" * (len(scenarios) + 1) + "|")
        for algorithm in algorithms:
            cells = [_format_cell(cell_values(algorithm, scenario, kind)) for scenario in scenarios]
            lines.append(f"| {algorithm} | " + " | ".join(cells) + " |")
        lines.append("")

    if completed:
        lines.append("## Per-run cells")
        lines.append("")
        lines.append("| algorithm | scenario | seed | rounds | full (%) | avg (%) | waste (%) | dropped |")
        lines.append("|---|---|---|---|---|---|---|---|")
        for row in completed:
            full = "—" if row["full_accuracy"] is None else f"{row['full_accuracy'] * 100:.2f}"
            avg = "—" if row["avg_accuracy"] is None else f"{row['avg_accuracy'] * 100:.2f}"
            waste = "—" if row["communication_waste"] is None else f"{row['communication_waste'] * 100:.2f}"
            lines.append(
                f"| {row['algorithm']} | {_scenario_label(row['scenario'])} | {row['seed']} "
                f"| {row['rounds']} | {full} | {avg} | {waste} | {row['total_dropped']} |"
            )
        lines.append("")

    if pending:
        lines.append("## Incomplete runs")
        lines.append("")
        for entry in pending:
            key = entry.key
            lines.append(
                f"- `{entry.run_id}` — {key.get('algorithm')} "
                f"(scenario {_scenario_label(key.get('setting', {}).get('scenario'))}, "
                f"seed {key.get('setting', {}).get('seed')}): status {entry.status}"
            )
        lines.append("")

    payload = {
        "title": title,
        "completed": completed,
        "incomplete": [
            {"run_id": entry.run_id, "key": entry.key, "status": entry.status} for entry in pending
        ],
        "algorithms": algorithms,
        "scenarios": scenarios,
    }
    return ReportBundle(markdown="\n".join(lines).rstrip() + "\n", payload=payload)


def write_report(
    store: RunStore | str | Path,
    directory: str | Path | None = None,
    title: str = "Experiment report",
) -> list[Path]:
    """Generate and write ``report.md``/``report.json`` (default: store root)."""
    if not isinstance(store, RunStore):
        store = RunStore(store, create=False)
    bundle = generate_report(store, title=title)
    return bundle.save(directory if directory is not None else store.root)
