""":class:`RunStore` — the durable, resumable experiment store.

One store is one directory::

    <root>/
      store.json                     # store-level schema marker
      objects/<aa>/<sha256>          # content-addressed array blobs
      runs/<run_id>/run.json         # run key + status
      runs/<run_id>/history.json     # final TrainingHistory (on completion)
      runs/<run_id>/checkpoints/round_000007.json   # per-round manifests

A **run** is identified by the SHA-256 of its canonical run key (the
experiment setting plus algorithm, strategy, scenario and round budget),
so re-submitting the same experiment maps onto the same run directory —
the property sweep resumption builds on.  A **checkpoint** is a JSON
manifest referencing array blobs in the object store plus the strict
JSON state of :class:`~repro.store.checkpoint.Checkpoint`; the manifest
carries its own checksum and every blob read re-verifies its content
address, so truncation anywhere surfaces as
:class:`~repro.store.objects.StoreCorruptionError` instead of a silently
wrong resume.

:class:`RunRecorder` is the callback that feeds a store from a live run:
it persists a checkpoint on the ``on_checkpoint`` hook (every ``every``
rounds and always on the final/stopped round) and can prune older
manifests to bound disk use (blobs are shared and therefore never
pruned here).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

import numpy as np

from repro.api.callbacks import Callback
from repro.store.checkpoint import CHECKPOINT_SCHEMA_VERSION, Checkpoint, CheckpointSchemaError
from repro.store.objects import (
    ObjectStore,
    StoreCorruptionError,
    canonical_json,
    sha256_hex,
    write_atomic,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fl_base import FederatedAlgorithm
    from repro.core.history import RoundRecord, TrainingHistory

__all__ = ["RunStore", "RunEntry", "RunRecorder", "STORE_SCHEMA_VERSION"]

#: version of the store directory layout itself
STORE_SCHEMA_VERSION = 1

_RUN_STATUSES = {"running", "completed"}


@dataclass(frozen=True)
class RunEntry:
    """One run's identity and lifecycle state inside a store."""

    run_id: str
    #: canonical run key (algorithm + setting + strategy + scenario + rounds)
    key: dict
    #: ``"running"`` (started, maybe checkpointed) or ``"completed"``
    status: str
    #: why the run stopped early (None = ran its full round budget)
    stop_reason: str | None = None

    @property
    def completed(self) -> bool:
        """True when the run finished (including a legitimate early stop)."""
        return self.status == "completed"


class RunStore:
    """Content-addressed on-disk store of runs, checkpoints and histories."""

    def __init__(self, root: str | Path, *, create: bool = True):
        self.root = Path(root)
        marker = self.root / "store.json"
        if not create and not marker.exists():
            # read paths (reports, inspection) must not fabricate stores on
            # typo'd directories — a wrong --store would silently look empty
            raise ValueError(
                f"no experiment store at {self.root} (missing store.json); "
                "pass the directory a sweep or a --store run wrote into"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        self.objects = ObjectStore(self.root / "objects")
        self._runs_dir = self.root / "runs"
        self._runs_dir.mkdir(parents=True, exist_ok=True)
        if marker.exists():
            payload = self._read_json(marker, what="store marker")
            version = payload.get("schema_version")
            if version != STORE_SCHEMA_VERSION:
                raise CheckpointSchemaError(
                    f"store at {self.root} uses schema version {version}, this build "
                    f"supports {STORE_SCHEMA_VERSION}; refusing to open it"
                )
        else:
            write_atomic(marker, json.dumps({"schema_version": STORE_SCHEMA_VERSION}) + "\n")

    # -- run identity -------------------------------------------------------------------
    @staticmethod
    def run_id_for(key: Mapping[str, Any]) -> str:
        """Deterministic run ID: SHA-256 of the canonical JSON run key."""
        return sha256_hex(canonical_json(dict(key)).encode("utf-8"))[:16]

    def _run_dir(self, run_id: str) -> Path:
        return self._runs_dir / run_id

    # -- run lifecycle ------------------------------------------------------------------
    def begin_run(self, key: Mapping[str, Any]) -> RunEntry:
        """Register a run for ``key`` (idempotent) and return its entry.

        An existing entry — running or completed — is returned as-is; the
        caller decides whether to resume, skip or restart.
        """
        run_id = self.run_id_for(key)
        existing = self.get_run(run_id)
        if existing is not None:
            return existing
        entry = RunEntry(run_id=run_id, key=dict(key), status="running")
        self._write_run_entry(entry)
        return entry

    def _write_run_entry(self, entry: RunEntry) -> None:
        payload = {
            "schema_version": STORE_SCHEMA_VERSION,
            "run_id": entry.run_id,
            "key": entry.key,
            "status": entry.status,
            "stop_reason": entry.stop_reason,
        }
        write_atomic(self._run_dir(entry.run_id) / "run.json", json.dumps(payload, indent=2) + "\n")

    def get_run(self, run_id: str) -> RunEntry | None:
        """The run's entry, or None when the store has never seen it."""
        path = self._run_dir(run_id) / "run.json"
        if not path.exists():
            return None
        payload = self._read_json(path, what="run entry")
        status = payload.get("status")
        if status not in _RUN_STATUSES:
            raise StoreCorruptionError(f"run entry {path} carries unknown status {status!r}")
        return RunEntry(
            run_id=str(payload["run_id"]),
            key=dict(payload["key"]),
            status=status,
            stop_reason=payload.get("stop_reason"),
        )

    def runs(self) -> list[RunEntry]:
        """Every run registered in the store, sorted by run ID."""
        entries = []
        if self._runs_dir.exists():
            for run_dir in sorted(self._runs_dir.iterdir()):
                if (run_dir / "run.json").exists():
                    entry = self.get_run(run_dir.name)
                    if entry is not None:
                        entries.append(entry)
        return entries

    def is_completed(self, run_id: str) -> bool:
        """True when the run finished (its history is durable)."""
        entry = self.get_run(run_id)
        return entry is not None and entry.completed

    def finish_run(self, run_id: str, history: "TrainingHistory", stop_reason: str | None = None) -> None:
        """Mark a run completed and persist its final history."""
        entry = self.get_run(run_id)
        if entry is None:
            raise ValueError(f"run {run_id} was never registered with begin_run")
        write_atomic(
            self._run_dir(run_id) / "history.json",
            json.dumps(history.to_dict(), indent=2) + "\n",
        )
        self._write_run_entry(RunEntry(run_id=run_id, key=entry.key, status="completed", stop_reason=stop_reason))

    def load_history(self, run_id: str) -> "TrainingHistory":
        """The final history of a completed run (strict round-trip)."""
        from repro.core.history import TrainingHistory

        path = self._run_dir(run_id) / "history.json"
        if not path.exists():
            raise ValueError(f"run {run_id} has no stored history (did it complete?)")
        return TrainingHistory.from_dict(self._read_json(path, what="history"))

    # -- checkpoints --------------------------------------------------------------------
    def _checkpoint_dir(self, run_id: str) -> Path:
        return self._run_dir(run_id) / "checkpoints"

    def _manifest_path(self, run_id: str, round_index: int) -> Path:
        return self._checkpoint_dir(run_id) / f"round_{round_index:06d}.json"

    def checkpoint_rounds(self, run_id: str) -> list[int]:
        """Rounds with a stored checkpoint, ascending (empty = none yet)."""
        directory = self._checkpoint_dir(run_id)
        if not directory.exists():
            return []
        rounds = []
        for path in directory.glob("round_*.json"):
            try:
                rounds.append(int(path.stem.split("_", 1)[1]))
            except ValueError:  # pragma: no cover - foreign file
                continue
        return sorted(rounds)

    def save_checkpoint(self, run_id: str, checkpoint: Checkpoint, keep: int | None = None) -> Path:
        """Persist one checkpoint; returns the manifest path.

        Arrays go to the content-addressed object store (deduplicated);
        the manifest references them by digest and carries a checksum over
        its own canonical JSON.  ``keep`` prunes older manifests down to
        the newest ``keep`` (blobs stay — they may be shared across runs).
        """
        if self.get_run(run_id) is None:
            raise ValueError(f"run {run_id} was never registered with begin_run")
        arrays: dict[str, dict] = {}
        for prefix, group in (("global", checkpoint.global_state), ("extra", checkpoint.extra_arrays)):
            for key, value in group.items():
                array = np.asarray(value)
                arrays[f"{prefix}/{key}"] = {
                    "ref": self.objects.put_array(array),
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                }
        body = {
            "schema_version": checkpoint.schema_version,
            "algorithm": checkpoint.algorithm,
            "round_index": checkpoint.round_index,
            "arrays": arrays,
            "history": checkpoint.history,
            "rng_state": checkpoint.rng_state,
            "extra_state": checkpoint.extra_state,
            "stop_reason": checkpoint.stop_reason,
        }
        body["checksum"] = sha256_hex(canonical_json(body).encode("utf-8"))
        path = self._manifest_path(run_id, checkpoint.round_index)
        write_atomic(path, json.dumps(body, indent=2) + "\n")
        if keep is not None:
            if keep < 1:
                raise ValueError("keep must be at least 1")
            for stale in self.checkpoint_rounds(run_id)[:-keep]:
                self._manifest_path(run_id, stale).unlink(missing_ok=True)
        return path

    def load_checkpoint(self, run_id: str, round_index: int | None = None) -> Checkpoint:
        """Load one checkpoint (default: the latest round), fully verified.

        Verification order: the manifest must parse as JSON, its schema
        version must be the supported one, its checksum must match its
        canonical body, and every referenced blob must hash to its
        content address.  Any failure raises with the offending path.
        """
        rounds = self.checkpoint_rounds(run_id)
        if not rounds:
            raise ValueError(f"run {run_id} has no checkpoints")
        if round_index is None:
            round_index = rounds[-1]
        elif round_index not in rounds:
            raise ValueError(f"run {run_id} has no checkpoint for round {round_index} (has {rounds})")
        path = self._manifest_path(run_id, round_index)
        body = self._read_json(path, what="checkpoint manifest")

        version = body.get("schema_version")
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointSchemaError(
                f"checkpoint {path} uses schema version {version}; this build supports "
                f"{CHECKPOINT_SCHEMA_VERSION} and refuses to resume from it"
            )
        expected = body.pop("checksum", None)
        actual = sha256_hex(canonical_json(body).encode("utf-8"))
        if expected != actual:
            raise StoreCorruptionError(
                f"checkpoint manifest {path} failed its checksum (stored "
                f"{str(expected)[:12]}…, computed {actual[:12]}…): the file was truncated "
                "or edited; delete it and resume from an earlier round"
            )

        global_state: dict[str, np.ndarray] = {}
        extra_arrays: dict[str, np.ndarray] = {}
        for name, meta in body["arrays"].items():
            array = self.objects.get_array(meta["ref"])
            if list(array.shape) != list(meta["shape"]) or str(array.dtype) != meta["dtype"]:
                raise StoreCorruptionError(
                    f"checkpoint {path}: array {name!r} loaded as "
                    f"{array.dtype}{array.shape}, manifest says {meta['dtype']}{tuple(meta['shape'])}"
                )
            prefix, _, key = name.partition("/")
            target = global_state if prefix == "global" else extra_arrays
            target[key] = array
        return Checkpoint(
            algorithm=str(body["algorithm"]),
            round_index=int(body["round_index"]),
            global_state=global_state,
            history=dict(body["history"]),
            rng_state=dict(body["rng_state"]),
            extra_arrays=extra_arrays,
            extra_state=dict(body["extra_state"]),
            stop_reason=body.get("stop_reason"),
            schema_version=int(version),
        )

    def latest_checkpoint(self, run_id: str) -> Checkpoint | None:
        """The newest checkpoint of a run, or None when it has none."""
        if not self.checkpoint_rounds(run_id):
            return None
        return self.load_checkpoint(run_id)

    # -- helpers ------------------------------------------------------------------------
    @staticmethod
    def _read_json(path: Path, what: str) -> dict:
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise StoreCorruptionError(
                f"{what} {path} is not valid JSON ({error}); the file was truncated or "
                "corrupted mid-write"
            ) from None

    def __iter__(self) -> Iterator[RunEntry]:
        return iter(self.runs())


class RunRecorder(Callback):
    """Callback that checkpoints a live run into a :class:`RunStore`.

    Writes on the :meth:`~repro.api.callbacks.Callback.on_checkpoint`
    hook — the last hook of every round, after any late evaluation — so a
    crash between rounds loses at most the round in flight.  ``every``
    thins the cadence (the final and early-stopped rounds are always
    persisted); ``keep`` bounds how many manifests stay on disk.
    """

    def __init__(self, store: RunStore, run_id: str, every: int = 1, keep: int | None = None):
        if every <= 0:
            raise ValueError("every must be positive")
        if keep is not None and keep < 1:
            raise ValueError("keep must be at least 1 when set")
        self.store = store
        self.run_id = run_id
        self.every = every
        self.keep = keep
        self.saved_rounds: list[int] = []
        self._start_round: int | None = None

    def on_round_start(self, algorithm: "FederatedAlgorithm", round_index: int) -> None:
        """Remember where this run() began (resumed runs start past zero)."""
        if self._start_round is None:
            self._start_round = round_index

    def on_checkpoint(self, algorithm: "FederatedAlgorithm", record: "RoundRecord") -> None:
        """Persist the algorithm's state if this round is on the cadence."""
        start = self._start_round if self._start_round is not None else 0
        completed_here = record.round_index - start + 1
        is_last = algorithm.planned_rounds is not None and completed_here >= algorithm.planned_rounds
        due = completed_here % self.every == 0
        stopping = algorithm.stop_reason is not None
        if not (due or stopping or is_last):
            return
        self.store.save_checkpoint(self.run_id, algorithm.checkpoint_state(), keep=self.keep)
        from repro.obs.events import get_event_bus

        get_event_bus().emit(
            "checkpoint_saved",
            trace_id=algorithm.current_trace_id,
            run_id=self.run_id,
            round=record.round_index,
        )
        # the driver re-fires on_checkpoint when a checkpoint callback stops
        # the run (the record gains its late evaluation); the manifest write
        # above overwrites by round index, so only the log needs deduping
        if not self.saved_rounds or self.saved_rounds[-1] != record.round_index:
            self.saved_rounds.append(record.round_index)
