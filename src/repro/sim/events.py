"""Virtual clock + event heap: the deterministic core of the simulator.

The queue is a classic discrete-event scheduler: events carry an absolute
virtual time, ties break FIFO by a monotone sequence number (never by
callback identity or hash order), and cancelled events are skipped lazily
when popped.  Determinism therefore depends only on *what* is scheduled,
never on wall-clock, thread timing or dict iteration order.

:class:`TransferGate` models the server's bounded transfer concurrency: at
most ``capacity`` uploads/downloads proceed at once, the rest wait in a
FIFO queue.  Queueing delay — not just link speed — is what makes the
``congested_network`` scenario produce stragglers.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventQueue", "TransferGate"]


@dataclass
class Event:
    """One scheduled callback at a virtual time (orderable for the heap)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventQueue:
    """A min-heap of events with a virtual clock and FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """The current virtual time (seconds)."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        event = Event(time=self._now + delay, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (lazily discarded when popped)."""
        event.cancelled = True

    def run(self) -> float:
        """Process every event in (time, FIFO) order; returns the final time."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
        return self._now


class TransferGate:
    """FIFO admission control for the server's concurrent-transfer slots.

    ``capacity=None`` means an uncontended server (every transfer starts
    immediately).  ``acquire`` either runs ``start`` now or enqueues it;
    ``release`` hands the freed slot to the longest-waiting transfer.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unlimited)")
        self.capacity = capacity
        self._active = 0
        self._waiting: deque[Callable[[], None]] = deque()

    @property
    def active(self) -> int:
        return self._active

    @property
    def waiting(self) -> int:
        return len(self._waiting)

    def acquire(self, start: Callable[[], None]) -> None:
        if self.capacity is None or self._active < self.capacity:
            self._active += 1
            start()
        else:
            self._waiting.append(start)

    def release(self) -> None:
        if self._active <= 0:
            raise RuntimeError("release without a matching acquire")
        self._active -= 1
        if self._waiting and (self.capacity is None or self._active < self.capacity):
            start = self._waiting.popleft()
            self._active += 1
            start()
