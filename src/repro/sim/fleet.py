""":class:`FleetSimulator` — the per-run discrete-event fleet engine.

One fleet instance backs one algorithm run.  It owns

* the **device fleet**: the scenario's templates expanded to the
  experiment's client count (fixed counts verbatim when they match,
  largest-remainder proportions otherwise), held as NumPy
  struct-of-arrays so million-device fleets never materialise a Python
  object per client,
* the **availability trace**: which clients are reachable at each round
  (always / Markov churn / diurnal duty cycle, overlaid with battery
  state), exposed both as a boolean :meth:`FleetSimulator.available_mask`
  for large fleets and the legacy :meth:`FleetSimulator.available_clients`
  list façade,
* the **round simulation**: download → local compute → upload per
  participant, closed-form vectorised when the server is uncontended or
  on the :class:`~repro.sim.events.EventQueue` when a FIFO
  :class:`~repro.sim.events.TransferGate` bounds server transfer
  concurrency, with link latency/jitter, per-round compute-throughput
  jitter, mid-round dropouts and battery depletion,
* **deadline-aware arrival accounting**: which uploads made it back by
  the synchronous-round deadline (absolute seconds or a factor of the
  round's median finish time) and therefore join aggregation.

Two orthogonal knobs govern scale-out:

* ``engine`` — ``"legacy"`` walks per-dispatch Python objects and
  closures (the historical code path, kept as the benchmark baseline and
  parity reference); ``"vectorized"`` (the ``"auto"`` default) computes
  whole rounds as NumPy array arithmetic.  Both engines consume the same
  pre-drawn randomness and use identical float64 operation order, so for
  a fixed ``draw_mode`` their outcomes are **bit-identical**.
* ``draw_mode`` — ``"per-client"`` keys every stochastic quantity on
  ``(seed, tag, round, client)`` exactly as the historical code did (one
  ``Generator`` per key); ``"batched"`` draws one full-population vector
  per ``(seed, tag, round)`` key, which is what makes 10⁶-device rounds
  feasible.  The two modes draw different (equally deterministic)
  numbers; ``"auto"`` picks per-client below
  :data:`BATCHED_DRAW_THRESHOLD` clients so small fleets reproduce the
  historical traces bit-for-bit, batched at scale.

Determinism: every stochastic quantity is drawn up-front from a
:class:`numpy.random.SeedSequence` keyed on ``(seed, tag, round,
client)`` (per-client mode) or ``(seed, tag, round)`` (batched mode) — a
key-space disjoint from the training streams of
:mod:`repro.engine.rng` — and the event core breaks ties FIFO, so a
same-seed run is bit-identical across executors, worker counts and
process boundaries.

Static scenarios (no jitter, no churn, no contention, no deadline —
``ScenarioSpec.is_static``) bypass the event decomposition and use the
exact closed-form arithmetic of
:meth:`repro.devices.testbed.TestbedSimulator.client_round_time`, which is
what makes the ``paper_testbed`` scenario reproduce the legacy test-bed
wall-clock numbers bit-for-bit.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.devices.profiles import DeviceClass, DeviceProfile
from repro.devices.testbed import DEFAULT_CAPACITY_FRACTIONS, TestbedSimulator, split_round_seconds
from repro.sim.events import EventQueue, TransferGate
from repro.sim.scenario import DeviceTemplate, ScenarioSpec

__all__ = [
    "ClientDispatch",
    "ClientOutcome",
    "RoundOutcome",
    "DispatchBatch",
    "RoundOutcomeBatch",
    "FleetSimulator",
    "BATCHED_DRAW_THRESHOLD",
]

# shared with the legacy test-bed so paper_testbed parity can never drift
#: bytes per parameter (float32 on the wire)
BYTES_PER_PARAM = TestbedSimulator.BYTES_PER_PARAM
#: backward pass costs roughly twice the forward pass
TRAIN_FLOP_MULTIPLIER = TestbedSimulator.TRAIN_FLOP_MULTIPLIER
#: capacity fraction per device class
CAPACITY_FRACTIONS = DEFAULT_CAPACITY_FRACTIONS

#: sim-stream namespace tag; keeps (seed, tag, ...) keys disjoint from the
#: (seed, round, client) training streams and (seed, client, round)
#: resource-model draws, which use shorter entropy tuples
_SIM_TAG = 0x51E47
_COMPUTE, _LINK_DOWN, _LINK_UP, _DROPOUT, _AVAILABILITY, _PHASE = range(6)

#: fleets at or above this size default to batched per-round draws
#: (``draw_mode="auto"``); below it they keep the historical per-client
#: draw keying so existing small-N traces stay bit-identical
BATCHED_DRAW_THRESHOLD = 4096


@dataclass(frozen=True)
class ClientDispatch:
    """What the server asks one selected client to do this round."""

    client_id: int
    params_down: int
    params_up: int
    flops_per_sample: int
    num_samples: int
    local_epochs: int


@dataclass
class ClientOutcome:
    """How one dispatched client's round actually went."""

    client_id: int
    bytes_down: int
    bytes_up: int
    #: upload-complete time (seconds from round start); None = never returned
    finish_seconds: float | None
    #: True when the client failed mid-round (dropout or battery death)
    dropped: bool
    #: True when the update arrived in time to join aggregation
    aggregated: bool
    #: seconds of local compute actually spent (battery accounting)
    compute_seconds: float = 0.0
    #: when a dropped client went silent (the server's timeout horizon)
    failure_seconds: float | None = None


@dataclass
class RoundOutcome:
    """The simulated fate of one synchronous round."""

    round_index: int
    clients: list[ClientOutcome]
    deadline_seconds: float | None
    round_seconds: float

    def aggregated_positions(self) -> list[int]:
        """Indices (into the dispatch order) whose updates join aggregation."""
        return [i for i, client in enumerate(self.clients) if client.aggregated]

    def dropped_client_ids(self) -> list[int]:
        """Clients whose update missed aggregation (dropout or deadline)."""
        return [client.client_id for client in self.clients if not client.aggregated]

    def arrival_seconds(self) -> list[float | None]:
        """Per-dispatched-client upload-complete times (None = dropped)."""
        return [client.finish_seconds for client in self.clients]

    @property
    def bytes_down(self) -> int:
        return sum(client.bytes_down for client in self.clients)

    @property
    def bytes_up(self) -> int:
        return sum(client.bytes_up for client in self.clients)


@dataclass
class DispatchBatch:
    """A round's dispatches as column arrays (the scale-path twin of
    ``list[ClientDispatch]``).

    Scalar fields broadcast: pass a single int for ``params_down`` etc.
    and it is expanded to every client in the batch.
    """

    client_ids: np.ndarray
    params_down: np.ndarray
    params_up: np.ndarray
    flops_per_sample: np.ndarray
    num_samples: np.ndarray
    local_epochs: np.ndarray

    def __post_init__(self) -> None:
        self.client_ids = np.atleast_1d(np.asarray(self.client_ids, dtype=np.int64))
        n = self.client_ids.shape[0]
        for name in ("params_down", "params_up", "flops_per_sample", "num_samples", "local_epochs"):
            column = np.asarray(getattr(self, name), dtype=np.int64)
            if column.ndim == 0:
                column = np.full(n, int(column), dtype=np.int64)
            if column.shape != (n,):
                raise ValueError(
                    f"dispatch column {name!r} has shape {column.shape}, expected ({n},)"
                )
            setattr(self, name, column)

    def __len__(self) -> int:
        return int(self.client_ids.shape[0])

    @classmethod
    def from_dispatches(cls, dispatches: Sequence[ClientDispatch]) -> "DispatchBatch":
        """Column-ise a list of per-client dispatches (order preserved)."""
        return cls(
            client_ids=np.array([d.client_id for d in dispatches], dtype=np.int64),
            params_down=np.array([d.params_down for d in dispatches], dtype=np.int64),
            params_up=np.array([d.params_up for d in dispatches], dtype=np.int64),
            flops_per_sample=np.array([d.flops_per_sample for d in dispatches], dtype=np.int64),
            num_samples=np.array([d.num_samples for d in dispatches], dtype=np.int64),
            local_epochs=np.array([d.local_epochs for d in dispatches], dtype=np.int64),
        )

    def to_dispatches(self) -> list[ClientDispatch]:
        """The row view back: one ``ClientDispatch`` per batch entry."""
        return [
            ClientDispatch(
                client_id=int(self.client_ids[i]),
                params_down=int(self.params_down[i]),
                params_up=int(self.params_up[i]),
                flops_per_sample=int(self.flops_per_sample[i]),
                num_samples=int(self.num_samples[i]),
                local_epochs=int(self.local_epochs[i]),
            )
            for i in range(len(self))
        ]


@dataclass
class RoundOutcomeBatch:
    """A round's outcome as column arrays (NaN codes "never happened")."""

    round_index: int
    client_ids: np.ndarray
    bytes_down: np.ndarray
    bytes_up: np.ndarray
    #: upload-complete times; NaN = never returned
    finish_seconds: np.ndarray
    dropped: np.ndarray
    aggregated: np.ndarray
    compute_seconds: np.ndarray
    #: when dropped clients went silent; NaN = did not fail
    failure_seconds: np.ndarray
    deadline_seconds: float | None
    round_seconds: float

    def __len__(self) -> int:
        return int(self.client_ids.shape[0])

    def aggregated_positions(self) -> np.ndarray:
        """Indices (into the dispatch order) whose updates join aggregation."""
        return np.flatnonzero(self.aggregated)

    def dropped_client_ids(self) -> np.ndarray:
        """Clients whose update missed aggregation (dropout or deadline)."""
        return self.client_ids[~self.aggregated]

    @property
    def bytes_down_total(self) -> int:
        return int(self.bytes_down.sum())

    @property
    def bytes_up_total(self) -> int:
        return int(self.bytes_up.sum())

    def to_outcome(self) -> RoundOutcome:
        """The row view back (small-N callers; Python scalars throughout)."""
        clients = []
        for i in range(len(self)):
            finish = float(self.finish_seconds[i])
            failure = float(self.failure_seconds[i])
            clients.append(
                ClientOutcome(
                    client_id=int(self.client_ids[i]),
                    bytes_down=int(self.bytes_down[i]),
                    bytes_up=int(self.bytes_up[i]),
                    finish_seconds=None if math.isnan(finish) else finish,
                    dropped=bool(self.dropped[i]),
                    aggregated=bool(self.aggregated[i]),
                    compute_seconds=float(self.compute_seconds[i]),
                    failure_seconds=None if math.isnan(failure) else failure,
                )
            )
        return RoundOutcome(
            round_index=self.round_index,
            clients=clients,
            deadline_seconds=self.deadline_seconds,
            round_seconds=self.round_seconds,
        )

    @classmethod
    def from_outcome(cls, outcome: RoundOutcome) -> "RoundOutcomeBatch":
        """Column-ise a row-shaped outcome (legacy-engine batch calls)."""
        nan = float("nan")
        return cls(
            round_index=outcome.round_index,
            client_ids=np.array([c.client_id for c in outcome.clients], dtype=np.int64),
            bytes_down=np.array([c.bytes_down for c in outcome.clients], dtype=np.int64),
            bytes_up=np.array([c.bytes_up for c in outcome.clients], dtype=np.int64),
            finish_seconds=np.array(
                [nan if c.finish_seconds is None else c.finish_seconds for c in outcome.clients],
                dtype=np.float64,
            ),
            dropped=np.array([c.dropped for c in outcome.clients], dtype=bool),
            aggregated=np.array([c.aggregated for c in outcome.clients], dtype=bool),
            compute_seconds=np.array([c.compute_seconds for c in outcome.clients], dtype=np.float64),
            failure_seconds=np.array(
                [nan if c.failure_seconds is None else c.failure_seconds for c in outcome.clients],
                dtype=np.float64,
            ),
            deadline_seconds=outcome.deadline_seconds,
            round_seconds=outcome.round_seconds,
        )


class _DeviceFleet(Sequence):
    """Lazy ``Sequence[DeviceTemplate]`` over (template, count) runs.

    Small-N callers index and iterate it like the historical
    ``list[DeviceTemplate]``; large fleets never pay for N references.
    """

    __slots__ = ("templates", "counts", "_offsets", "_total")

    def __init__(self, templates: Sequence[DeviceTemplate], counts: Sequence[int]):
        self.templates = tuple(templates)
        self.counts = tuple(int(count) for count in counts)
        self._offsets = np.cumsum(np.asarray(self.counts, dtype=np.int64))
        self._total = int(self._offsets[-1]) if self.counts else 0

    def __len__(self) -> int:
        return self._total

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._total))]
        i = int(index)
        if i < 0:
            i += self._total
        if not 0 <= i < self._total:
            raise IndexError(f"client_id {index} out of range for fleet of {self._total}")
        return self.templates[int(np.searchsorted(self._offsets, i, side="right"))]

    def __iter__(self) -> Iterator[DeviceTemplate]:
        for template, count in zip(self.templates, self.counts):
            for _ in range(count):
                yield template


@dataclass
class _RoundDraws:
    """Pre-drawn per-dispatch randomness, shared by both engines.

    Both engines index these exact arrays — never re-drawing, never
    re-applying ``exp`` — which is what makes the engines bit-identical
    for a fixed draw mode.  ``drop_fraction`` is NaN-coded: NaN means the
    client does not fail mid-round.
    """

    factor: np.ndarray
    down_jitter: np.ndarray
    up_jitter: np.ndarray
    drop_fraction: np.ndarray


class FleetSimulator:
    """Stateful scenario engine for one algorithm run (one fleet per run)."""

    def __init__(
        self,
        spec: ScenarioSpec,
        num_clients: int,
        seed: int = 0,
        engine: str = "auto",
        draw_mode: str = "auto",
    ):
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if engine not in {"auto", "vectorized", "legacy"}:
            raise ValueError("engine must be 'auto', 'vectorized' or 'legacy'")
        if draw_mode not in {"auto", "batched", "per-client"}:
            raise ValueError("draw_mode must be 'auto', 'batched' or 'per-client'")
        self.spec = spec
        self.seed = int(seed)
        counts = _expand_device_counts(spec.devices, num_clients)
        self.devices = _DeviceFleet(spec.devices, counts)
        self.num_clients = len(self.devices)
        self.engine = "vectorized" if engine == "auto" else engine
        if draw_mode == "auto":
            draw_mode = "batched" if self.num_clients >= BATCHED_DRAW_THRESHOLD else "per-client"
        self.draw_mode = draw_mode

        # struct-of-arrays device parameters: one float64 column per knob,
        # repeated from the template runs — no per-device Python objects
        reps = np.asarray(counts, dtype=np.int64)

        def column(attr: str) -> np.ndarray:
            values = np.array([getattr(t, attr) for t in spec.devices], dtype=np.float64)
            return np.repeat(values, reps)

        self._flops = column("flops_per_second")
        self._bandwidth = column("bandwidth_mbps")
        self._compute_jitter = column("compute_jitter")
        self._link_latency = column("link_latency_s")
        self._link_jitter = column("link_jitter_s")

        self._avail_cache: dict[int, np.ndarray] = {}
        self._diurnal_offsets: np.ndarray | None = None
        self._draw_cache: dict[int, object] = {}
        self._draw_cache_round = -1
        self._last_simulated_round = -1
        battery = spec.battery
        self._charge = (
            np.full(self.num_clients, battery.capacity_joules, dtype=np.float64)
            if battery is not None
            else None
        )
        self._recovering_mask = np.zeros(self.num_clients, dtype=bool)

    # -- profiles ---------------------------------------------------------------------
    def build_profiles(self) -> list[DeviceProfile]:
        """Capacity profiles matching the fleet (weak/medium/strong classes).

        Deterministic, in fleet order — the same mapping the legacy
        test-bed produces with an identity permutation.
        """
        populated = [
            template
            for template, count in zip(self.devices.templates, self.devices.counts)
            if count > 0
        ]
        top_speed = max(template.flops_per_second for template in populated)
        profiles: list[DeviceProfile] = []
        for template, count in zip(self.devices.templates, self.devices.counts):
            device_class = DeviceClass(
                name=template.device_class,
                capacity_fraction=CAPACITY_FRACTIONS[template.device_class],
                compute_speed=template.flops_per_second / top_speed,
                memory_gb=template.memory_gb,
            )
            for _ in range(count):
                profiles.append(DeviceProfile(client_id=len(profiles), device_class=device_class))
        return profiles

    def device_for(self, client_id: int) -> DeviceTemplate:
        return self.devices[client_id]

    # -- randomness -------------------------------------------------------------------
    def _rng(self, tag: int, round_index: int, client_id: int) -> np.random.Generator:
        """Per-client generator: the historical (seed, tag, round, client) key."""
        return np.random.default_rng(
            np.random.SeedSequence((self.seed, _SIM_TAG, tag, round_index, client_id))
        )

    def _round_rng(self, tag: int, round_index: int) -> np.random.Generator:
        """Batched generator: one (seed, tag, round) key drives a whole vector.

        The 4-tuple entropy key can never collide with the per-client
        5-tuples — ``SeedSequence`` folds tuple length into the entropy.
        """
        return np.random.default_rng(
            np.random.SeedSequence((self.seed, _SIM_TAG, tag, round_index))
        )

    def _population_draws(self, tag: int, round_index: int):
        """Full-population draw vectors for one (tag, round), cached per round.

        Batched mode only.  Drawing the whole population (rather than the
        dispatched subset) keeps every client's round-``r`` draw a pure
        function of ``(seed, tag, r, client)`` — independent of which
        clients were dispatched — exactly like per-client mode.
        """
        if round_index != self._draw_cache_round:
            self._draw_cache = {}
            self._draw_cache_round = round_index
        cached = self._draw_cache.get(tag)
        if cached is None:
            rng = self._round_rng(tag, round_index)
            if tag == _COMPUTE:
                cached = rng.standard_normal(self.num_clients)
            elif tag in (_LINK_DOWN, _LINK_UP):
                cached = rng.exponential(size=self.num_clients)
            elif tag == _DROPOUT:
                cached = (rng.random(self.num_clients), rng.random(self.num_clients))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown draw tag {tag}")
            self._draw_cache[tag] = cached
        return cached

    def _dispatch_draws(self, round_index: int, client_ids: Sequence[int]) -> _RoundDraws:
        """All per-dispatch randomness for one round, drawn up-front.

        The event interleaving can never change what was drawn; both
        engines consume these arrays verbatim.
        """
        n = len(client_ids)
        if self.draw_mode == "batched":
            ids = np.asarray(client_ids, dtype=np.int64)
            jitter = self._compute_jitter[ids]
            normals = self._population_draws(_COMPUTE, round_index)[ids]
            factor = np.where(jitter > 0, np.exp(jitter * normals), 1.0)
            link_jitter = self._link_jitter[ids]
            down_jitter = link_jitter * self._population_draws(_LINK_DOWN, round_index)[ids]
            up_jitter = link_jitter * self._population_draws(_LINK_UP, round_index)[ids]
            if self.spec.dropout_rate > 0:
                trigger, fraction = self._population_draws(_DROPOUT, round_index)
                drop_fraction = np.where(
                    trigger[ids] < self.spec.dropout_rate, fraction[ids], np.nan
                )
            else:
                drop_fraction = np.full(n, np.nan)
            return _RoundDraws(factor, down_jitter, up_jitter, drop_fraction)

        # per-client mode: the historical draw discipline, value-for-value
        factor = np.ones(n, dtype=np.float64)
        down_jitter = np.zeros(n, dtype=np.float64)
        up_jitter = np.zeros(n, dtype=np.float64)
        drop_fraction = np.full(n, np.nan)
        for i, raw_id in enumerate(client_ids):
            client_id = int(raw_id)
            jitter = float(self._compute_jitter[client_id])
            if jitter > 0:
                factor[i] = float(
                    np.exp(jitter * self._rng(_COMPUTE, round_index, client_id).standard_normal())
                )
            link_jitter = float(self._link_jitter[client_id])
            if link_jitter > 0:
                down_jitter[i] = float(
                    link_jitter * self._rng(_LINK_DOWN, round_index, client_id).exponential()
                )
                up_jitter[i] = float(
                    link_jitter * self._rng(_LINK_UP, round_index, client_id).exponential()
                )
            if self.spec.dropout_rate > 0:
                dropout_rng = self._rng(_DROPOUT, round_index, client_id)
                if float(dropout_rng.random()) < self.spec.dropout_rate:
                    drop_fraction[i] = float(dropout_rng.random())
        return _RoundDraws(factor, down_jitter, up_jitter, drop_fraction)

    # -- availability -----------------------------------------------------------------
    def _availability_uniforms(self, round_index: int) -> np.ndarray:
        """One uniform per client for round ``round_index`` (mode-dependent)."""
        if self.draw_mode == "batched":
            return self._round_rng(_AVAILABILITY, round_index).random(self.num_clients)
        return np.array(
            [
                float(self._rng(_AVAILABILITY, round_index, client_id).random())
                for client_id in range(self.num_clients)
            ],
            dtype=np.float64,
        )

    def _phase_offsets(self, period: int) -> np.ndarray:
        """Per-client diurnal phase: a pure function of (seed, client), drawn once."""
        if self._diurnal_offsets is None:
            if self.draw_mode == "batched":
                self._diurnal_offsets = self._round_rng(_PHASE, 0).integers(
                    0, period, size=self.num_clients
                )
            else:
                self._diurnal_offsets = np.array(
                    [
                        int(self._rng(_PHASE, 0, client_id).integers(0, period))
                        for client_id in range(self.num_clients)
                    ]
                )
        return self._diurnal_offsets

    def _trace_availability(self, round_index: int) -> np.ndarray:
        """The scenario's raw on/off trace (before battery overlay)."""
        spec = self.spec.availability
        if spec.kind == "always":
            return np.ones(self.num_clients, dtype=bool)
        if spec.kind == "diurnal":
            offsets = self._phase_offsets(spec.period_rounds)
            on_rounds = max(1, int(np.ceil(spec.on_fraction * spec.period_rounds)))
            return (round_index + offsets) % spec.period_rounds < on_rounds
        return self._markov_state(round_index)

    def _markov_state(self, round_index: int) -> np.ndarray:
        """The Markov on/off state at ``round_index``, walked from the cache.

        The cache keeps only round 0 and the most recently computed round:
        sequential access is O(1) amortised, out-of-order queries replay
        from the nearest earlier anchor — the walk is a pure function of
        the uniforms, so replays are bit-identical.
        """
        spec = self.spec.availability
        cached = self._avail_cache.get(round_index)
        if cached is not None:
            return cached
        start = max((r for r in self._avail_cache if r < round_index), default=-1)
        if start == -1:
            denominator = spec.p_drop + spec.p_join
            stationary_on = 1.0 if denominator == 0 else spec.p_join / denominator
            state = self._availability_uniforms(0) < stationary_on
            self._avail_cache[0] = state
            start = 0
        state = self._avail_cache[start]
        for r in range(start + 1, round_index + 1):
            draws = self._availability_uniforms(r)
            state = np.where(state, draws >= spec.p_drop, draws < spec.p_join)
        self._avail_cache[round_index] = state
        for r in list(self._avail_cache):
            if r not in (0, round_index):
                del self._avail_cache[r]
        return state

    def available_mask(self, round_index: int) -> np.ndarray:
        """Boolean reachability mask when round ``round_index`` starts.

        The scale-path twin of :meth:`available_clients`: same semantics
        (battery-recovering clients sit out; empty overlays are lifted),
        O(N) vector work, no Python-object materialisation.
        """
        trace = self._trace_availability(round_index)
        online = trace & ~self._recovering_mask
        if online.any():
            return online
        if trace.any():
            return trace.copy()
        return np.ones(self.num_clients, dtype=bool)

    def available_clients(self, round_index: int) -> list[int]:
        """Clients the server can reach when round ``round_index`` starts.

        Battery-recovering clients sit out.  If the trace leaves nobody
        online the server is modelled as waiting out the gap: first the
        battery overlay is lifted, then — if the raw trace itself is empty
        — every client is considered reachable again.
        """
        return np.flatnonzero(self.available_mask(round_index)).tolist()

    # -- population telemetry ---------------------------------------------------------
    def population_stats(self, round_index: int) -> dict[str, int]:
        """Fleet-level counts for operational metrics (gauges, not history).

        ``online`` counts clients reachable at ``round_index`` (after the
        battery overlay and fallback lifting), ``recovering`` counts
        clients sitting out to recharge, ``battery_dead`` counts clients
        at exactly zero charge.
        """
        dead = 0 if self._charge is None else int((self._charge <= 0.0).sum())
        return {
            "online": int(self.available_mask(round_index).sum()),
            "recovering": int(self._recovering_mask.sum()),
            "battery_dead": dead,
        }

    # -- checkpointing ----------------------------------------------------------------
    @property
    def _recovering(self) -> set[int]:
        """The battery-recovering clients as a set (small-N façade).

        Internally the fleet keeps a boolean mask; the set view exists for
        checkpoints and tests.  Mutate via the setter (assignment), not by
        ``.add``/``.discard`` on the returned copy.
        """
        return {int(client) for client in np.flatnonzero(self._recovering_mask)}

    @_recovering.setter
    def _recovering(self, value) -> None:
        mask = np.zeros(self.num_clients, dtype=bool)
        ids = np.asarray(sorted(int(client) for client in value), dtype=np.int64)
        if ids.size:
            mask[ids] = True
        self._recovering_mask = mask

    def state_dict(self) -> dict:
        """The fleet's mutable cross-round state, for the experiment store.

        Only three things evolve as rounds advance: the battery charge
        vector, the set of battery-recovering clients and the
        last-simulated-round watermark.  Everything else (availability
        traces, diurnal phases, jitter draws) is a pure function of
        ``(seed, round, client)`` and is recomputed identically after a
        restore, which is what makes resumed runs bit-identical.
        """
        return {
            "last_simulated_round": self._last_simulated_round,
            "recovering": sorted(self._recovering),
            "charge": None if self._charge is None else self._charge.copy(),
        }

    def load_state_dict(self, state: Mapping) -> None:
        """Restore :meth:`state_dict` output onto a freshly built fleet."""
        unknown = sorted(set(state) - {"last_simulated_round", "recovering", "charge"})
        if unknown:
            raise ValueError(f"fleet state does not accept key(s) {', '.join(map(repr, unknown))}")
        charge = state.get("charge")
        if (charge is None) != (self._charge is None):
            raise ValueError(
                "fleet state battery shape mismatch: the checkpoint and the scenario "
                "disagree on whether devices carry batteries"
            )
        if charge is not None:
            charge = np.asarray(charge, dtype=np.float64)
            if charge.shape != self._charge.shape:
                raise ValueError(
                    f"fleet charge vector has shape {charge.shape}, expected {self._charge.shape}"
                )
            self._charge = charge.copy()
        self._last_simulated_round = int(state["last_simulated_round"])
        self._recovering = {int(client) for client in state["recovering"]}

    # -- battery ----------------------------------------------------------------------
    def battery_charge(self, client_id: int) -> float | None:
        """Remaining charge in joules (None when the scenario has no battery)."""
        if self._charge is None:
            return None
        return float(self._charge[client_id])

    # -- round simulation -------------------------------------------------------------
    def _check_monotonic(self, round_index: int) -> None:
        if round_index <= self._last_simulated_round:
            raise ValueError(
                f"round {round_index} already simulated (last was {self._last_simulated_round}); "
                "fleets are stateful and rounds must advance monotonically"
            )
        self._last_simulated_round = round_index

    def simulate_round(self, round_index: int, dispatches: list[ClientDispatch]) -> RoundOutcome:
        """Simulate one synchronous round; mutates battery/availability state.

        Must be called once per round, in increasing round order (the
        federated loop does exactly that).
        """
        self._check_monotonic(round_index)
        if self.spec.is_static:
            return self._simulate_static(round_index, dispatches)
        draws = self._dispatch_draws(round_index, [d.client_id for d in dispatches])
        if self.engine == "legacy":
            outcome = self._simulate_events(round_index, dispatches, draws)
            self._apply_battery_deaths(outcome, dispatches)
            self._apply_deadline(outcome)
            self._apply_byte_budget(outcome)
            self._advance_batteries(outcome, dispatches)
            return outcome
        batch = DispatchBatch.from_dispatches(dispatches)
        return self._simulate_batch(round_index, batch, draws).to_outcome()

    def simulate_round_batch(self, round_index: int, batch: DispatchBatch) -> RoundOutcomeBatch:
        """Array-native :meth:`simulate_round` (the million-device entry point).

        Same semantics, same determinism, same monotonic-round contract;
        the outcome stays columnar so the caller never pays for
        per-client Python objects.
        """
        self._check_monotonic(round_index)
        if self.spec.is_static:
            return RoundOutcomeBatch.from_outcome(
                self._simulate_static(round_index, batch.to_dispatches())
            )
        draws = self._dispatch_draws(round_index, batch.client_ids)
        if self.engine == "legacy":
            dispatches = batch.to_dispatches()
            outcome = self._simulate_events(round_index, dispatches, draws)
            self._apply_battery_deaths(outcome, dispatches)
            self._apply_deadline(outcome)
            self._apply_byte_budget(outcome)
            self._advance_batteries(outcome, dispatches)
            return RoundOutcomeBatch.from_outcome(outcome)
        return self._simulate_batch(round_index, batch, draws)

    def _closed_form_seconds(self, dispatch: ClientDispatch) -> tuple[float, float]:
        """The legacy test-bed's (communication, training) clock, shared code."""
        device = self.devices[dispatch.client_id]
        return split_round_seconds(
            device.bandwidth_mbps,
            device.flops_per_second,
            dispatch.params_down,
            dispatch.params_up,
            dispatch.flops_per_sample,
            dispatch.num_samples,
            dispatch.local_epochs,
        )

    def _simulate_static(self, round_index: int, dispatches: list[ClientDispatch]) -> RoundOutcome:
        clients = []
        for dispatch in dispatches:
            communication, training = self._closed_form_seconds(dispatch)
            clients.append(
                ClientOutcome(
                    client_id=dispatch.client_id,
                    bytes_down=dispatch.params_down * BYTES_PER_PARAM,
                    bytes_up=dispatch.params_up * BYTES_PER_PARAM,
                    finish_seconds=communication + training,
                    dropped=False,
                    aggregated=True,
                    compute_seconds=training,
                )
            )
        finishes = [client.finish_seconds for client in clients]
        round_seconds = float(max(finishes)) if finishes else 0.0
        return RoundOutcome(
            round_index=round_index, clients=clients, deadline_seconds=None, round_seconds=round_seconds
        )

    # -- vectorized engine ------------------------------------------------------------
    def _simulate_batch(
        self, round_index: int, batch: DispatchBatch, draws: _RoundDraws
    ) -> RoundOutcomeBatch:
        """One dynamic round as pure array arithmetic.

        Every expression mirrors the legacy engine's float64 operation
        order exactly (same associativity, same pre-drawn values), which
        is what the bit-parity suite pins.
        """
        ids = batch.client_ids
        latency = self._link_latency[ids]
        bandwidth = self._bandwidth[ids]
        flops = self._flops[ids]

        bytes_down = batch.params_down * BYTES_PER_PARAM
        download = latency + draws.down_jitter + batch.params_down * BYTES_PER_PARAM * 8 / (
            bandwidth * 1e6
        )
        upload = latency + draws.up_jitter + batch.params_up * BYTES_PER_PARAM * 8 / (
            bandwidth * 1e6
        )
        total_flops = (
            TRAIN_FLOP_MULTIPLIER * batch.flops_per_sample * batch.num_samples * batch.local_epochs
        )
        compute = total_flops / (flops * draws.factor)
        dropped = ~np.isnan(draws.drop_fraction)

        if self.spec.network.server_concurrency is None:
            # uncontended: the event decomposition degenerates to
            # download → compute → upload back-to-back, in closed form
            compute_seconds = np.where(dropped, draws.drop_fraction * compute, compute)
            finish_seconds = np.where(dropped, np.nan, download + compute + upload)
            failure_seconds = np.where(dropped, download + compute_seconds, np.nan)
            bytes_up = np.where(dropped, 0, batch.params_up * BYTES_PER_PARAM)
        else:
            # gated: replay the exact FIFO event interleaving on the
            # dispatched subset (O(dispatched), never O(fleet))
            outcome = self._simulate_events(round_index, batch.to_dispatches(), draws)
            nan = float("nan")
            finish_seconds = np.array(
                [nan if c.finish_seconds is None else c.finish_seconds for c in outcome.clients],
                dtype=np.float64,
            )
            failure_seconds = np.array(
                [nan if c.failure_seconds is None else c.failure_seconds for c in outcome.clients],
                dtype=np.float64,
            )
            compute_seconds = np.array(
                [c.compute_seconds for c in outcome.clients], dtype=np.float64
            )
            bytes_up = np.array([c.bytes_up for c in outcome.clients], dtype=np.int64)
            dropped = np.array([c.dropped for c in outcome.clients], dtype=bool)

        battery = self.spec.battery
        if battery is not None:
            # clients whose charge cannot cover the round die mid-round
            needed = battery.compute_watts * compute_seconds + battery.transfer_joules_per_mb * (
                (bytes_down + bytes_up) / 1e6
            )
            dead = needed > self._charge[ids]
            # went silent no later than it would have finished/failed
            failure_seconds = np.where(
                dead & np.isnan(failure_seconds), finish_seconds, failure_seconds
            )
            finish_seconds = np.where(dead, np.nan, finish_seconds)
            bytes_up = np.where(dead, 0, bytes_up)
            dropped = dropped | dead

        # deadline, aggregated flags, round duration
        returned = ~np.isnan(finish_seconds)
        finishes = finish_seconds[returned]
        deadline = self.spec.deadline_seconds
        if deadline is None and self.spec.deadline_factor is not None and finishes.size:
            deadline = float(self.spec.deadline_factor * np.median(finishes))
        if deadline is None:
            aggregated = returned
        else:
            aggregated = returned & (finish_seconds <= deadline)
        any_missing = bool((~aggregated).any())
        failures = failure_seconds[~np.isnan(failure_seconds)]
        if deadline is not None and (any_missing or not finishes.size):
            round_seconds = float(deadline)  # the server waits out the deadline
        else:
            horizon = np.concatenate([finishes, failures])
            round_seconds = float(horizon.max()) if horizon.size else 0.0

        refused = self._byte_budget_refusals(
            np.asarray(bytes_down, dtype=np.float64),
            np.asarray(bytes_up, dtype=np.float64),
            finish_seconds,
        )
        if refused.any():
            aggregated = aggregated & ~refused
            bytes_up = np.where(refused, 0, bytes_up)

        if battery is not None:
            spent = battery.compute_watts * compute_seconds + battery.transfer_joules_per_mb * (
                (bytes_down + bytes_up) / 1e6
            )
            current = self._charge[ids]
            self._charge[ids] = np.maximum(0.0, current - np.minimum(spent, current))
            idle = np.ones(self.num_clients, dtype=bool)
            idle[ids] = False
            self._charge[idle] = np.minimum(
                battery.capacity_joules,
                self._charge[idle] + battery.recharge_watts * round_seconds,
            )
            low = battery.min_charge_fraction * battery.capacity_joules
            resume = battery.resume_charge_fraction * battery.capacity_joules
            below = self._charge < low
            self._recovering_mask = below | (self._recovering_mask & ~(self._charge >= resume))

        return RoundOutcomeBatch(
            round_index=round_index,
            client_ids=ids,
            bytes_down=bytes_down,
            bytes_up=np.asarray(bytes_up, dtype=np.int64),
            finish_seconds=finish_seconds,
            dropped=dropped,
            aggregated=aggregated,
            compute_seconds=compute_seconds,
            failure_seconds=failure_seconds,
            deadline_seconds=deadline,
            round_seconds=round_seconds,
        )

    # -- legacy engine ----------------------------------------------------------------
    def _simulate_events(
        self, round_index: int, dispatches: list[ClientDispatch], draws: _RoundDraws
    ) -> RoundOutcome:
        queue = EventQueue()
        gate = TransferGate(self.spec.network.server_concurrency)

        plans = []
        for i, dispatch in enumerate(dispatches):
            device = self.devices[dispatch.client_id]
            # all randomness was drawn up-front, keyed on (round, client):
            # the event interleaving can never change what was drawn
            factor = float(draws.factor[i])
            down_jitter = float(draws.down_jitter[i])
            up_jitter = float(draws.up_jitter[i])
            raw_fraction = float(draws.drop_fraction[i])
            drop_fraction = None if math.isnan(raw_fraction) else raw_fraction
            total_flops = (
                TRAIN_FLOP_MULTIPLIER
                * dispatch.flops_per_sample
                * dispatch.num_samples
                * dispatch.local_epochs
            )
            plans.append(
                {
                    "download": device.link_latency_s
                    + down_jitter
                    + dispatch.params_down * BYTES_PER_PARAM * 8 / (device.bandwidth_mbps * 1e6),
                    "compute": total_flops / (device.flops_per_second * factor),
                    "upload": device.link_latency_s
                    + up_jitter
                    + dispatch.params_up * BYTES_PER_PARAM * 8 / (device.bandwidth_mbps * 1e6),
                    "drop_fraction": drop_fraction,
                }
            )

        outcomes = [
            ClientOutcome(
                client_id=dispatch.client_id,
                bytes_down=dispatch.params_down * BYTES_PER_PARAM,
                bytes_up=0,
                finish_seconds=None,
                dropped=False,
                aggregated=False,
            )
            for dispatch in dispatches
        ]

        def start_download(i: int):
            def start() -> None:
                queue.schedule(plans[i]["download"], make_finish_download(i))

            return start

        def make_finish_download(i: int):
            def finish() -> None:
                gate.release()
                plan, outcome = plans[i], outcomes[i]
                if plan["drop_fraction"] is not None:
                    spent = plan["drop_fraction"] * plan["compute"]
                    outcome.dropped = True
                    outcome.compute_seconds = spent
                    outcome.failure_seconds = queue.now + spent
                    return  # the client dies mid-compute; nothing more happens
                outcome.compute_seconds = plan["compute"]
                queue.schedule(plan["compute"], make_request_upload(i))

            return finish

        def make_request_upload(i: int):
            def request() -> None:
                gate.acquire(make_start_upload(i))

            return request

        def make_start_upload(i: int):
            def start() -> None:
                queue.schedule(plans[i]["upload"], make_finish_upload(i))

            return start

        def make_finish_upload(i: int):
            def finish() -> None:
                gate.release()
                outcome = outcomes[i]
                outcome.finish_seconds = queue.now
                outcome.bytes_up = dispatches[i].params_up * BYTES_PER_PARAM

            return finish

        for i in range(len(dispatches)):  # FIFO by dispatch order at t=0
            gate.acquire(start_download(i))
        queue.run()

        return RoundOutcome(round_index=round_index, clients=outcomes, deadline_seconds=None, round_seconds=0.0)

    def _apply_battery_deaths(self, outcome: RoundOutcome, dispatches: list[ClientDispatch]) -> None:
        """Clients whose charge cannot cover the round die mid-round."""
        battery = self.spec.battery
        if battery is None:
            return
        for client, dispatch in zip(outcome.clients, dispatches):
            needed = battery.compute_watts * client.compute_seconds + battery.transfer_joules_per_mb * (
                (client.bytes_down + client.bytes_up) / 1e6
            )
            if needed > self._charge[client.client_id]:
                client.dropped = True
                if client.failure_seconds is None:
                    # went silent no later than it would have finished/failed
                    client.failure_seconds = client.finish_seconds
                client.finish_seconds = None
                client.bytes_up = 0

    def _apply_deadline(self, outcome: RoundOutcome) -> None:
        """Set the deadline, aggregated flags and the round's duration."""
        finishes = [c.finish_seconds for c in outcome.clients if c.finish_seconds is not None]
        deadline = self.spec.deadline_seconds
        if deadline is None and self.spec.deadline_factor is not None and finishes:
            deadline = float(self.spec.deadline_factor * np.median(finishes))
        outcome.deadline_seconds = deadline
        any_missing = False
        for client in outcome.clients:
            client.aggregated = client.finish_seconds is not None and (
                deadline is None or client.finish_seconds <= deadline
            )
            any_missing = any_missing or not client.aggregated
        # without a deadline the server's horizon is the last arrival or the
        # last failure it times out on — a round never takes zero time just
        # because everyone failed
        horizon = finishes + [
            c.failure_seconds for c in outcome.clients if c.failure_seconds is not None
        ]
        if deadline is not None and (any_missing or not finishes):
            outcome.round_seconds = float(deadline)  # the server waits out the deadline
        else:
            outcome.round_seconds = float(max(horizon)) if horizon else 0.0

    def _byte_budget_refusals(
        self,
        bytes_down: np.ndarray,
        bytes_up: np.ndarray,
        finish_seconds: np.ndarray,
    ) -> np.ndarray:
        """Boolean mask of uploads refused by ``spec.round_byte_budget``.

        Admission control over a metered backhaul: every dispatched
        downlink spends the budget first (the server already sent those
        bytes), then returned uploads are admitted greedily in simulated
        arrival order — dispatch position breaking ties — while budget
        remains.  A refused upload costs nothing and does not aggregate.
        The greedy rule means a small late-arriving upload may still be
        admitted after a large one was refused; this is deterministic and
        identical in both fleet engines.
        """
        refused = np.zeros(finish_seconds.shape, dtype=bool)
        budget = self.spec.round_byte_budget
        if budget is None:
            return refused
        remaining = float(budget) - float(np.sum(bytes_down))
        returned = ~np.isnan(finish_seconds)
        # stable argsort: NaN (never-returned) sorts last, equal arrival
        # times keep dispatch order
        for index in np.argsort(finish_seconds, kind="stable"):
            if not returned[index]:
                continue
            cost = float(bytes_up[index])
            if cost <= remaining:
                remaining -= cost
            else:
                refused[index] = True
        return refused

    def _apply_byte_budget(self, outcome: RoundOutcome) -> None:
        """Legacy-engine twin of :meth:`_byte_budget_refusals` (in place)."""
        if self.spec.round_byte_budget is None:
            return
        nan = float("nan")
        refused = self._byte_budget_refusals(
            np.array([c.bytes_down for c in outcome.clients], dtype=np.float64),
            np.array([c.bytes_up for c in outcome.clients], dtype=np.float64),
            np.array(
                [nan if c.finish_seconds is None else c.finish_seconds for c in outcome.clients],
                dtype=np.float64,
            ),
        )
        for client, refuse in zip(outcome.clients, refused):
            if refuse:
                client.aggregated = False
                client.bytes_up = 0

    def _advance_batteries(self, outcome: RoundOutcome, dispatches: list[ClientDispatch]) -> None:
        battery = self.spec.battery
        if battery is None:
            return
        participants = {client.client_id for client in outcome.clients}
        for client in outcome.clients:
            spent = battery.compute_watts * client.compute_seconds + battery.transfer_joules_per_mb * (
                (client.bytes_down + client.bytes_up) / 1e6
            )
            charge = self._charge[client.client_id]
            self._charge[client.client_id] = max(0.0, charge - min(spent, charge))
        for client_id in range(self.num_clients):
            if client_id not in participants:
                self._charge[client_id] = min(
                    battery.capacity_joules,
                    self._charge[client_id] + battery.recharge_watts * outcome.round_seconds,
                )
        low = battery.min_charge_fraction * battery.capacity_joules
        resume = battery.resume_charge_fraction * battery.capacity_joules
        below = self._charge < low
        self._recovering_mask = below | (self._recovering_mask & ~(self._charge >= resume))


def _expand_device_counts(templates: tuple[DeviceTemplate, ...], num_clients: int) -> list[int]:
    """Per-template client counts summing exactly to ``num_clients``.

    Fixed counts are kept verbatim when they match the requested fleet
    size; otherwise deterministic largest-remainder rounding distributes
    the population proportionally.  Ties break on (descending remainder,
    ascending template index), so the split is reproducible, and the
    result always sums exactly to ``num_clients`` — including at large N
    where naive float rounding drifts.
    """
    if templates[0].count is not None:
        counts = [int(template.count) for template in templates]
        total = sum(counts)
        if total == num_clients:
            return counts
        weights = [count / total for count in counts]
    else:
        total_fraction = sum(template.fraction for template in templates)
        weights = [template.fraction / total_fraction for template in templates]

    exact = [weight * num_clients for weight in weights]
    counts = [min(int(math.floor(value)), num_clients) for value in exact]
    remainder = num_clients - sum(counts)
    order = sorted(range(len(templates)), key=lambda i: (-(exact[i] - counts[i]), i))
    if remainder < 0:  # pathological float rounding: trim smallest remainders first
        for i in reversed(order):
            if remainder == 0:
                break
            if counts[i] > 0:
                counts[i] -= 1
                remainder += 1
    position = 0
    while remainder > 0:  # one extra client per largest remainder, round-robin if needed
        counts[order[position % len(order)]] += 1
        remainder -= 1
        position += 1
    return counts


def _expand_devices(templates: tuple[DeviceTemplate, ...], num_clients: int) -> list[DeviceTemplate]:
    """One template per client (small-N compatibility wrapper).

    The counts come from :func:`_expand_device_counts`; large fleets
    should use the counts directly instead of materialising N references.
    """
    return list(_DeviceFleet(templates, _expand_device_counts(templates, num_clients)))
