""":class:`FleetSimulator` — the per-run discrete-event fleet engine.

One fleet instance backs one algorithm run.  It owns

* the **device fleet**: the scenario's templates expanded to the
  experiment's client count (fixed counts verbatim when they match,
  largest-remainder proportions otherwise),
* the **availability trace**: which clients are reachable at each round
  (always / Markov churn / diurnal duty cycle, overlaid with battery
  state),
* the **round simulation**: download → local compute → upload per
  participant on the :class:`~repro.sim.events.EventQueue`, with link
  latency/jitter, per-round compute-throughput jitter, a FIFO
  :class:`~repro.sim.events.TransferGate` bounding server transfer
  concurrency, mid-round dropouts and battery depletion,
* **deadline-aware arrival accounting**: which uploads made it back by
  the synchronous-round deadline (absolute seconds or a factor of the
  round's median finish time) and therefore join aggregation.

Determinism: every stochastic quantity is drawn up-front from a
:class:`numpy.random.SeedSequence` keyed on ``(seed, tag, round,
client)`` — a key-space disjoint from the training streams of
:mod:`repro.engine.rng` — and the event core breaks ties FIFO, so a
same-seed run is bit-identical across executors, worker counts and
process boundaries.

Static scenarios (no jitter, no churn, no contention, no deadline —
``ScenarioSpec.is_static``) bypass the event decomposition and use the
exact closed-form arithmetic of
:meth:`repro.devices.testbed.TestbedSimulator.client_round_time`, which is
what makes the ``paper_testbed`` scenario reproduce the legacy test-bed
wall-clock numbers bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.devices.profiles import DeviceClass, DeviceProfile
from repro.devices.testbed import DEFAULT_CAPACITY_FRACTIONS, TestbedSimulator, split_round_seconds
from repro.sim.events import EventQueue, TransferGate
from repro.sim.scenario import DeviceTemplate, ScenarioSpec

__all__ = ["ClientDispatch", "ClientOutcome", "RoundOutcome", "FleetSimulator"]

# shared with the legacy test-bed so paper_testbed parity can never drift
#: bytes per parameter (float32 on the wire)
BYTES_PER_PARAM = TestbedSimulator.BYTES_PER_PARAM
#: backward pass costs roughly twice the forward pass
TRAIN_FLOP_MULTIPLIER = TestbedSimulator.TRAIN_FLOP_MULTIPLIER
#: capacity fraction per device class
CAPACITY_FRACTIONS = DEFAULT_CAPACITY_FRACTIONS

#: sim-stream namespace tag; keeps (seed, tag, ...) keys disjoint from the
#: (seed, round, client) training streams and (seed, client, round)
#: resource-model draws, which use shorter entropy tuples
_SIM_TAG = 0x51E47
_COMPUTE, _LINK_DOWN, _LINK_UP, _DROPOUT, _AVAILABILITY, _PHASE = range(6)


@dataclass(frozen=True)
class ClientDispatch:
    """What the server asks one selected client to do this round."""

    client_id: int
    params_down: int
    params_up: int
    flops_per_sample: int
    num_samples: int
    local_epochs: int


@dataclass
class ClientOutcome:
    """How one dispatched client's round actually went."""

    client_id: int
    bytes_down: int
    bytes_up: int
    #: upload-complete time (seconds from round start); None = never returned
    finish_seconds: float | None
    #: True when the client failed mid-round (dropout or battery death)
    dropped: bool
    #: True when the update arrived in time to join aggregation
    aggregated: bool
    #: seconds of local compute actually spent (battery accounting)
    compute_seconds: float = 0.0
    #: when a dropped client went silent (the server's timeout horizon)
    failure_seconds: float | None = None


@dataclass
class RoundOutcome:
    """The simulated fate of one synchronous round."""

    round_index: int
    clients: list[ClientOutcome]
    deadline_seconds: float | None
    round_seconds: float

    def aggregated_positions(self) -> list[int]:
        """Indices (into the dispatch order) whose updates join aggregation."""
        return [i for i, client in enumerate(self.clients) if client.aggregated]

    def dropped_client_ids(self) -> list[int]:
        """Clients whose update missed aggregation (dropout or deadline)."""
        return [client.client_id for client in self.clients if not client.aggregated]

    def arrival_seconds(self) -> list[float | None]:
        """Per-dispatched-client upload-complete times (None = dropped)."""
        return [client.finish_seconds for client in self.clients]

    @property
    def bytes_down(self) -> int:
        return sum(client.bytes_down for client in self.clients)

    @property
    def bytes_up(self) -> int:
        return sum(client.bytes_up for client in self.clients)


class FleetSimulator:
    """Stateful scenario engine for one algorithm run (one fleet per run)."""

    def __init__(self, spec: ScenarioSpec, num_clients: int, seed: int = 0):
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        self.spec = spec
        self.seed = int(seed)
        self.devices: list[DeviceTemplate] = _expand_devices(spec.devices, num_clients)
        self.num_clients = len(self.devices)
        self._avail_cache: dict[int, np.ndarray] = {}
        self._diurnal_offsets: np.ndarray | None = None
        self._last_simulated_round = -1
        battery = spec.battery
        self._charge = (
            np.full(self.num_clients, battery.capacity_joules, dtype=np.float64)
            if battery is not None
            else None
        )
        self._recovering: set[int] = set()

    # -- profiles ---------------------------------------------------------------------
    def build_profiles(self) -> list[DeviceProfile]:
        """Capacity profiles matching the fleet (weak/medium/strong classes).

        Deterministic, in fleet order — the same mapping the legacy
        test-bed produces with an identity permutation.
        """
        top_speed = max(device.flops_per_second for device in self.devices)
        profiles = []
        for client_id, device in enumerate(self.devices):
            device_class = DeviceClass(
                name=device.device_class,
                capacity_fraction=CAPACITY_FRACTIONS[device.device_class],
                compute_speed=device.flops_per_second / top_speed,
                memory_gb=device.memory_gb,
            )
            profiles.append(DeviceProfile(client_id=client_id, device_class=device_class))
        return profiles

    def device_for(self, client_id: int) -> DeviceTemplate:
        return self.devices[client_id]

    # -- randomness -------------------------------------------------------------------
    def _rng(self, tag: int, round_index: int, client_id: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence((self.seed, _SIM_TAG, tag, round_index, client_id))
        )

    # -- availability -----------------------------------------------------------------
    def _trace_availability(self, round_index: int) -> np.ndarray:
        """The scenario's raw on/off trace (before battery overlay)."""
        spec = self.spec.availability
        if spec.kind == "always":
            return np.ones(self.num_clients, dtype=bool)
        if spec.kind == "diurnal":
            if self._diurnal_offsets is None:
                # per-client phase: a pure function of (seed, client), drawn once
                self._diurnal_offsets = np.array(
                    [
                        int(self._rng(_PHASE, 0, client_id).integers(0, spec.period_rounds))
                        for client_id in range(self.num_clients)
                    ]
                )
            on_rounds = max(1, int(np.ceil(spec.on_fraction * spec.period_rounds)))
            return (round_index + self._diurnal_offsets) % spec.period_rounds < on_rounds
        return self._markov_state(round_index)

    def _markov_state(self, round_index: int) -> np.ndarray:
        spec = self.spec.availability
        if round_index in self._avail_cache:
            return self._avail_cache[round_index]
        start = max((r for r in self._avail_cache if r < round_index), default=-1)
        if start == -1:
            denominator = spec.p_drop + spec.p_join
            stationary_on = 1.0 if denominator == 0 else spec.p_join / denominator
            state = np.array(
                [
                    float(self._rng(_AVAILABILITY, 0, c).random()) < stationary_on
                    for c in range(self.num_clients)
                ],
                dtype=bool,
            )
            self._avail_cache[0] = state
            start = 0
        state = self._avail_cache[start]
        for r in range(start + 1, round_index + 1):
            draws = np.array(
                [float(self._rng(_AVAILABILITY, r, c).random()) for c in range(self.num_clients)]
            )
            state = np.where(state, draws >= spec.p_drop, draws < spec.p_join)
            self._avail_cache[r] = state
        return self._avail_cache[round_index]

    def available_clients(self, round_index: int) -> list[int]:
        """Clients the server can reach when round ``round_index`` starts.

        Battery-recovering clients sit out.  If the trace leaves nobody
        online the server is modelled as waiting out the gap: first the
        battery overlay is lifted, then — if the raw trace itself is empty
        — every client is considered reachable again.
        """
        trace = self._trace_availability(round_index)
        online = [c for c in range(self.num_clients) if trace[c] and c not in self._recovering]
        if online:
            return online
        online = [c for c in range(self.num_clients) if trace[c]]
        return online if online else list(range(self.num_clients))

    # -- checkpointing ----------------------------------------------------------------
    def state_dict(self) -> dict:
        """The fleet's mutable cross-round state, for the experiment store.

        Only three things evolve as rounds advance: the battery charge
        vector, the set of battery-recovering clients and the
        last-simulated-round watermark.  Everything else (availability
        traces, diurnal phases, jitter draws) is a pure function of
        ``(seed, round, client)`` and is recomputed identically after a
        restore, which is what makes resumed runs bit-identical.
        """
        return {
            "last_simulated_round": self._last_simulated_round,
            "recovering": sorted(self._recovering),
            "charge": None if self._charge is None else self._charge.copy(),
        }

    def load_state_dict(self, state: Mapping) -> None:
        """Restore :meth:`state_dict` output onto a freshly built fleet."""
        unknown = sorted(set(state) - {"last_simulated_round", "recovering", "charge"})
        if unknown:
            raise ValueError(f"fleet state does not accept key(s) {', '.join(map(repr, unknown))}")
        charge = state.get("charge")
        if (charge is None) != (self._charge is None):
            raise ValueError(
                "fleet state battery shape mismatch: the checkpoint and the scenario "
                "disagree on whether devices carry batteries"
            )
        if charge is not None:
            charge = np.asarray(charge, dtype=np.float64)
            if charge.shape != self._charge.shape:
                raise ValueError(
                    f"fleet charge vector has shape {charge.shape}, expected {self._charge.shape}"
                )
            self._charge = charge.copy()
        self._last_simulated_round = int(state["last_simulated_round"])
        self._recovering = {int(client) for client in state["recovering"]}

    # -- battery ----------------------------------------------------------------------
    def battery_charge(self, client_id: int) -> float | None:
        """Remaining charge in joules (None when the scenario has no battery)."""
        if self._charge is None:
            return None
        return float(self._charge[client_id])

    # -- round simulation -------------------------------------------------------------
    def simulate_round(self, round_index: int, dispatches: list[ClientDispatch]) -> RoundOutcome:
        """Simulate one synchronous round; mutates battery/availability state.

        Must be called once per round, in increasing round order (the
        federated loop does exactly that).
        """
        if round_index <= self._last_simulated_round:
            raise ValueError(
                f"round {round_index} already simulated (last was {self._last_simulated_round}); "
                "fleets are stateful and rounds must advance monotonically"
            )
        self._last_simulated_round = round_index

        if self.spec.is_static:
            outcome = self._simulate_static(round_index, dispatches)
        else:
            outcome = self._simulate_events(round_index, dispatches)
            self._apply_battery_deaths(outcome, dispatches)
            self._apply_deadline(outcome)
            self._advance_batteries(outcome, dispatches)
        return outcome

    def _closed_form_seconds(self, dispatch: ClientDispatch) -> tuple[float, float]:
        """The legacy test-bed's (communication, training) clock, shared code."""
        device = self.devices[dispatch.client_id]
        return split_round_seconds(
            device.bandwidth_mbps,
            device.flops_per_second,
            dispatch.params_down,
            dispatch.params_up,
            dispatch.flops_per_sample,
            dispatch.num_samples,
            dispatch.local_epochs,
        )

    def _simulate_static(self, round_index: int, dispatches: list[ClientDispatch]) -> RoundOutcome:
        clients = []
        for dispatch in dispatches:
            communication, training = self._closed_form_seconds(dispatch)
            clients.append(
                ClientOutcome(
                    client_id=dispatch.client_id,
                    bytes_down=dispatch.params_down * BYTES_PER_PARAM,
                    bytes_up=dispatch.params_up * BYTES_PER_PARAM,
                    finish_seconds=communication + training,
                    dropped=False,
                    aggregated=True,
                    compute_seconds=training,
                )
            )
        finishes = [client.finish_seconds for client in clients]
        round_seconds = float(max(finishes)) if finishes else 0.0
        return RoundOutcome(
            round_index=round_index, clients=clients, deadline_seconds=None, round_seconds=round_seconds
        )

    def _simulate_events(self, round_index: int, dispatches: list[ClientDispatch]) -> RoundOutcome:
        queue = EventQueue()
        gate = TransferGate(self.spec.network.server_concurrency)

        plans = []
        for dispatch in dispatches:
            device = self.devices[dispatch.client_id]
            # all randomness is drawn up-front, keyed on (round, client):
            # the event interleaving can never change what was drawn
            compute_rng = self._rng(_COMPUTE, round_index, dispatch.client_id)
            factor = (
                float(np.exp(device.compute_jitter * compute_rng.standard_normal()))
                if device.compute_jitter > 0
                else 1.0
            )
            down_jitter = (
                float(device.link_jitter_s * self._rng(_LINK_DOWN, round_index, dispatch.client_id).exponential())
                if device.link_jitter_s > 0
                else 0.0
            )
            up_jitter = (
                float(device.link_jitter_s * self._rng(_LINK_UP, round_index, dispatch.client_id).exponential())
                if device.link_jitter_s > 0
                else 0.0
            )
            drop_fraction = None
            if self.spec.dropout_rate > 0:
                dropout_rng = self._rng(_DROPOUT, round_index, dispatch.client_id)
                if float(dropout_rng.random()) < self.spec.dropout_rate:
                    drop_fraction = float(dropout_rng.random())
            total_flops = (
                TRAIN_FLOP_MULTIPLIER
                * dispatch.flops_per_sample
                * dispatch.num_samples
                * dispatch.local_epochs
            )
            plans.append(
                {
                    "download": device.link_latency_s
                    + down_jitter
                    + dispatch.params_down * BYTES_PER_PARAM * 8 / (device.bandwidth_mbps * 1e6),
                    "compute": total_flops / (device.flops_per_second * factor),
                    "upload": device.link_latency_s
                    + up_jitter
                    + dispatch.params_up * BYTES_PER_PARAM * 8 / (device.bandwidth_mbps * 1e6),
                    "drop_fraction": drop_fraction,
                }
            )

        outcomes = [
            ClientOutcome(
                client_id=dispatch.client_id,
                bytes_down=dispatch.params_down * BYTES_PER_PARAM,
                bytes_up=0,
                finish_seconds=None,
                dropped=False,
                aggregated=False,
            )
            for dispatch in dispatches
        ]

        def start_download(i: int):
            def start() -> None:
                queue.schedule(plans[i]["download"], make_finish_download(i))

            return start

        def make_finish_download(i: int):
            def finish() -> None:
                gate.release()
                plan, outcome = plans[i], outcomes[i]
                if plan["drop_fraction"] is not None:
                    spent = plan["drop_fraction"] * plan["compute"]
                    outcome.dropped = True
                    outcome.compute_seconds = spent
                    outcome.failure_seconds = queue.now + spent
                    return  # the client dies mid-compute; nothing more happens
                outcome.compute_seconds = plan["compute"]
                queue.schedule(plan["compute"], make_request_upload(i))

            return finish

        def make_request_upload(i: int):
            def request() -> None:
                gate.acquire(make_start_upload(i))

            return request

        def make_start_upload(i: int):
            def start() -> None:
                queue.schedule(plans[i]["upload"], make_finish_upload(i))

            return start

        def make_finish_upload(i: int):
            def finish() -> None:
                gate.release()
                outcome = outcomes[i]
                outcome.finish_seconds = queue.now
                outcome.bytes_up = dispatches[i].params_up * BYTES_PER_PARAM

            return finish

        for i in range(len(dispatches)):  # FIFO by dispatch order at t=0
            gate.acquire(start_download(i))
        queue.run()

        return RoundOutcome(round_index=round_index, clients=outcomes, deadline_seconds=None, round_seconds=0.0)

    def _apply_battery_deaths(self, outcome: RoundOutcome, dispatches: list[ClientDispatch]) -> None:
        """Clients whose charge cannot cover the round die mid-round."""
        battery = self.spec.battery
        if battery is None:
            return
        for client, dispatch in zip(outcome.clients, dispatches):
            needed = battery.compute_watts * client.compute_seconds + battery.transfer_joules_per_mb * (
                (client.bytes_down + client.bytes_up) / 1e6
            )
            if needed > self._charge[client.client_id]:
                client.dropped = True
                if client.failure_seconds is None:
                    # went silent no later than it would have finished/failed
                    client.failure_seconds = client.finish_seconds
                client.finish_seconds = None
                client.bytes_up = 0

    def _apply_deadline(self, outcome: RoundOutcome) -> None:
        """Set the deadline, aggregated flags and the round's duration."""
        finishes = [c.finish_seconds for c in outcome.clients if c.finish_seconds is not None]
        deadline = self.spec.deadline_seconds
        if deadline is None and self.spec.deadline_factor is not None and finishes:
            deadline = float(self.spec.deadline_factor * np.median(finishes))
        outcome.deadline_seconds = deadline
        any_missing = False
        for client in outcome.clients:
            client.aggregated = client.finish_seconds is not None and (
                deadline is None or client.finish_seconds <= deadline
            )
            any_missing = any_missing or not client.aggregated
        # without a deadline the server's horizon is the last arrival or the
        # last failure it times out on — a round never takes zero time just
        # because everyone failed
        horizon = finishes + [
            c.failure_seconds for c in outcome.clients if c.failure_seconds is not None
        ]
        if deadline is not None and (any_missing or not finishes):
            outcome.round_seconds = float(deadline)  # the server waits out the deadline
        else:
            outcome.round_seconds = float(max(horizon)) if horizon else 0.0

    def _advance_batteries(self, outcome: RoundOutcome, dispatches: list[ClientDispatch]) -> None:
        battery = self.spec.battery
        if battery is None:
            return
        participants = {client.client_id for client in outcome.clients}
        for client in outcome.clients:
            spent = battery.compute_watts * client.compute_seconds + battery.transfer_joules_per_mb * (
                (client.bytes_down + client.bytes_up) / 1e6
            )
            charge = self._charge[client.client_id]
            self._charge[client.client_id] = max(0.0, charge - min(spent, charge))
        for client_id in range(self.num_clients):
            if client_id not in participants:
                self._charge[client_id] = min(
                    battery.capacity_joules,
                    self._charge[client_id] + battery.recharge_watts * outcome.round_seconds,
                )
        low = battery.min_charge_fraction * battery.capacity_joules
        resume = battery.resume_charge_fraction * battery.capacity_joules
        for client_id in range(self.num_clients):
            if self._charge[client_id] < low:
                self._recovering.add(client_id)
            elif client_id in self._recovering and self._charge[client_id] >= resume:
                self._recovering.discard(client_id)


def _expand_devices(templates: tuple[DeviceTemplate, ...], num_clients: int) -> list[DeviceTemplate]:
    """One template per client: fixed counts verbatim when they match the
    requested fleet size, largest-remainder proportions otherwise."""
    if templates[0].count is not None:
        total = sum(template.count for template in templates)
        if total == num_clients:
            expanded: list[DeviceTemplate] = []
            for template in templates:
                expanded.extend([template] * template.count)
            return expanded
        weights = [template.count / total for template in templates]
    else:
        total_fraction = sum(template.fraction for template in templates)
        weights = [template.fraction / total_fraction for template in templates]

    exact = [weight * num_clients for weight in weights]
    counts = [int(np.floor(value)) for value in exact]
    remainder = num_clients - sum(counts)
    by_fraction = sorted(range(len(templates)), key=lambda i: exact[i] - counts[i], reverse=True)
    for i in by_fraction[:remainder]:
        counts[i] += 1
    expanded = []
    for template, count in zip(templates, counts):
        expanded.extend([template] * count)
    return expanded
