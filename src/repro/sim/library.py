"""The shipped scenario library.

Seven scenarios spanning the operating conditions resource-constrained
AIoT deployments face (ROADMAP's "as many scenarios as you can imagine"):

* ``stable_lab`` — a well-provisioned, always-on lab fleet; the control
  condition (no churn, no stragglers beyond hardware heterogeneity).
* ``flaky_edge`` — consumer edge devices: Markov availability churn,
  mid-round dropouts, compute jitter, a deadline with over-selection.
* ``diurnal`` — devices that follow a day/night duty cycle with
  per-client phase offsets (chargers, home routers, parked vehicles).
* ``congested_network`` — a bandwidth-starved server uplink: few
  concurrent transfer slots, latency and jitter; stragglers come from
  queueing, countered by a deadline and over-selection.
* ``congested_metered`` — the congested uplink plus a hard per-round
  byte budget: uploads beyond the budget are refused in arrival order,
  so deadlines become byte-driven (pair with ``--transport-codec``).
* ``battery_constrained`` — battery-powered sensors that drain while
  training and recharge while idle.
* ``paper_testbed`` — the paper's §4.5 test-bed (4 Raspberry Pi 4B,
  10 Jetson Nano, 3 Jetson Xavier AGX) with **no** dynamics: its round
  times are bit-identical to the legacy
  :class:`~repro.devices.testbed.TestbedSimulator`.

The generic fleets reuse the weak/medium/strong capacity classes (and the
default 4:3:3 mix) of :mod:`repro.devices.profiles`, so capacity-based
level assignment in the baselines behaves exactly as with the default
device profiles.
"""

from __future__ import annotations

from repro.devices.testbed import TESTBED_DEVICE_SPECS
from repro.sim.scenario import (
    AvailabilitySpec,
    BatterySpec,
    DeviceTemplate,
    NetworkSpec,
    ScenarioSpec,
    register_scenario,
)

__all__ = [
    "stable_lab",
    "flaky_edge",
    "diurnal",
    "congested_network",
    "congested_metered",
    "battery_constrained",
    "paper_testbed",
]


def _generic_fleet(
    compute_jitter: float = 0.0,
    link_latency_s: float = 0.0,
    link_jitter_s: float = 0.0,
    bandwidth_scale: float = 1.0,
) -> tuple[DeviceTemplate, ...]:
    """The default 4:3:3 weak/medium/strong mix as scenario templates."""
    return (
        DeviceTemplate(
            name="edge_sensor",
            device_class="weak",
            flops_per_second=6.0e8,
            bandwidth_mbps=40.0 * bandwidth_scale,
            memory_gb=2.0,
            fraction=0.4,
            compute_jitter=compute_jitter,
            link_latency_s=link_latency_s,
            link_jitter_s=link_jitter_s,
        ),
        DeviceTemplate(
            name="edge_gateway",
            device_class="medium",
            flops_per_second=6.0e9,
            bandwidth_mbps=80.0 * bandwidth_scale,
            memory_gb=8.0,
            fraction=0.3,
            compute_jitter=compute_jitter,
            link_latency_s=link_latency_s,
            link_jitter_s=link_jitter_s,
        ),
        DeviceTemplate(
            name="edge_server",
            device_class="strong",
            flops_per_second=4.0e10,
            bandwidth_mbps=200.0 * bandwidth_scale,
            memory_gb=32.0,
            fraction=0.3,
            compute_jitter=compute_jitter,
            link_latency_s=link_latency_s,
            link_jitter_s=link_jitter_s,
        ),
    )


@register_scenario("stable_lab")
def stable_lab() -> ScenarioSpec:
    """A wired, always-on lab fleet: heterogeneity without dynamics."""
    return ScenarioSpec(
        name="stable_lab",
        description="always-on lab fleet; hardware heterogeneity is the only straggler source",
        devices=_generic_fleet(),
    )


@register_scenario("flaky_edge")
def flaky_edge() -> ScenarioSpec:
    """Consumer edge devices: churn, dropouts, jitter, deadline + over-selection."""
    return ScenarioSpec(
        name="flaky_edge",
        description="availability churn + mid-round dropouts; deadline with over-selection",
        devices=_generic_fleet(compute_jitter=0.35, link_latency_s=0.05, link_jitter_s=0.2),
        availability=AvailabilitySpec(kind="markov", p_drop=0.15, p_join=0.5),
        dropout_rate=0.12,
        deadline_factor=1.5,
        over_selection=3,
    )


@register_scenario("diurnal")
def diurnal() -> ScenarioSpec:
    """Day/night duty cycles with per-client phase offsets."""
    return ScenarioSpec(
        name="diurnal",
        description="devices follow a day/night duty cycle with per-client offsets",
        devices=_generic_fleet(compute_jitter=0.10),
        availability=AvailabilitySpec(kind="diurnal", period_rounds=12, on_fraction=0.6),
    )


@register_scenario("congested_network")
def congested_network() -> ScenarioSpec:
    """A starved server uplink: transfers queue for a few concurrent slots."""
    return ScenarioSpec(
        name="congested_network",
        description="server serves 3 concurrent transfers; queueing creates stragglers",
        devices=_generic_fleet(link_latency_s=0.1, link_jitter_s=0.5, bandwidth_scale=0.25),
        network=NetworkSpec(server_concurrency=3),
        deadline_factor=2.0,
        over_selection=2,
    )


@register_scenario("congested_metered")
def congested_metered() -> ScenarioSpec:
    """The congested uplink with a hard per-round transfer budget.

    Same starved link as ``congested_network``, plus a metered backhaul:
    every round may move at most ``round_byte_budget`` bytes (downlinks
    first, then uploads admitted in arrival order).  Sized for the CI
    scale so the budget *binds* under exact transport — late uploads are
    refused — while a lossy ``--transport-codec`` (int8/topk) shrinks
    uplinks enough to fit everyone, which is exactly the trade the
    compressed transport tier exists to demonstrate.
    """
    base = congested_network()
    return ScenarioSpec(
        name="congested_metered",
        description="congested uplink + per-round byte budget; codecs buy admission",
        devices=base.devices,
        network=base.network,
        deadline_factor=base.deadline_factor,
        over_selection=base.over_selection,
        round_byte_budget=192_000,
    )


@register_scenario("battery_constrained")
def battery_constrained() -> ScenarioSpec:
    """Battery-powered sensors: training drains, idling recharges."""
    return ScenarioSpec(
        name="battery_constrained",
        description="battery budgets: drained clients sit out rounds to recharge",
        devices=_generic_fleet(compute_jitter=0.10),
        battery=BatterySpec(
            capacity_joules=400.0,
            compute_watts=2.5,
            transfer_joules_per_mb=0.5,
            recharge_watts=1.0,
            min_charge_fraction=0.10,
            resume_charge_fraction=0.40,
        ),
        over_selection=1,
    )


@register_scenario("paper_testbed")
def paper_testbed() -> ScenarioSpec:
    """The paper's 17-device test-bed (§4.5, Table 5), no dynamics.

    Device parameters mirror
    :data:`repro.devices.testbed.TESTBED_DEVICE_SPECS` exactly; the
    resulting static scenario reproduces the legacy
    :class:`~repro.devices.testbed.TestbedSimulator` wall-clock numbers
    bit-for-bit (asserted by the parity test-suite).
    """
    return ScenarioSpec(
        name="paper_testbed",
        description="the paper's 4xPi/10xNano/3xAGX test-bed; legacy-clock parity",
        devices=tuple(
            DeviceTemplate(
                name=spec.name,
                device_class=spec.device_class,
                flops_per_second=spec.flops_per_second,
                bandwidth_mbps=spec.bandwidth_mbps,
                memory_gb=spec.memory_gb,
                count=spec.count,
            )
            for spec in TESTBED_DEVICE_SPECS
        ),
    )
