"""Cohort-sharded streaming selection primitives for million-device fleets.

The scale problem this module solves: at 10⁶ devices the server cannot
materialise "the online population" as a Python list (or even an index
array) every time it wants to sample participants.  Instead the fleet is
sharded into fixed-size **cohorts** — contiguous ``cohort_size`` runs of
client ids — and selection streams over per-cohort summaries:

* :func:`masked_choice_without_replacement` samples ``k`` distinct
  clients uniformly from a boolean availability mask.  It draws the same
  positions a dense ``flatnonzero(mask)[rng.choice(M, k)]`` would (so the
  reference equality is testable bit-for-bit) but only expands the
  cohorts that were actually hit, keeping the transient footprint
  O(cohorts + k·cohort_size) instead of O(population).
* :func:`cohort_counts` / :func:`nth_masked_index` are the building
  blocks: per-cohort online tallies via one ``np.add.reduceat`` pass and
  rank→id translation inside a single cohort.
* :func:`reservoir_sample` and :func:`streaming_top_k` are the classic
  one-pass selectors for candidate streams of unknown length (Vitter's
  algorithm R and a bounded min-heap respectively); they back planning
  paths that must never hold the full candidate set.

Everything here is pure and deterministic given the caller's
:class:`numpy.random.Generator`, which keeps the repo's bit-identical
replay guarantees intact.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "STREAMING_SELECTION_THRESHOLD",
    "DEFAULT_COHORT_SIZE",
    "cohort_counts",
    "nth_masked_index",
    "masked_choice_without_replacement",
    "reservoir_sample",
    "streaming_top_k",
    "iter_cohort_slices",
    "expand_cohort",
]

#: population size at which servers switch from dense list-based selection
#: to mask/streaming selection (below it, the historical code paths run
#: unchanged and stay bit-identical to the pre-scale implementation)
STREAMING_SELECTION_THRESHOLD = 4096

#: default cohort width: large enough that per-cohort overhead vanishes,
#: small enough that expanding one cohort is cheap (512 KB of indices)
DEFAULT_COHORT_SIZE = 65536


def cohort_counts(mask: np.ndarray, cohort_size: int = DEFAULT_COHORT_SIZE) -> np.ndarray:
    """Per-cohort ``True`` tallies of a boolean mask.

    Cohort ``j`` covers clients ``[j * cohort_size, (j + 1) * cohort_size)``;
    the last cohort may be short.  One vectorised pass, no Python loop.
    """
    if cohort_size <= 0:
        raise ValueError("cohort_size must be positive")
    mask = np.asarray(mask, dtype=bool)
    if mask.size == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.arange(0, mask.size, cohort_size)
    return np.add.reduceat(mask.astype(np.int64), starts)


def nth_masked_index(mask: np.ndarray, rank: int) -> int:
    """The index of the ``rank``-th ``True`` in ``mask`` (0-based).

    Rank→id translation inside one cohort; callers locate the cohort via
    :func:`cohort_counts` prefix sums first, so ``mask`` here is a short
    slice, never the full population.
    """
    mask = np.asarray(mask, dtype=bool)
    indices = np.flatnonzero(mask)
    if not 0 <= rank < indices.size:
        raise IndexError(f"rank {rank} out of range for mask with {indices.size} set bits")
    return int(indices[rank])


def masked_choice_without_replacement(
    rng: np.random.Generator,
    mask: np.ndarray,
    k: int,
    cohort_size: int = DEFAULT_COHORT_SIZE,
) -> np.ndarray:
    """Sample ``k`` distinct client ids uniformly from a boolean mask.

    Draw-equivalent to the dense reference
    ``np.flatnonzero(mask)[rng.choice(mask.sum(), k, replace=False)]`` —
    it consumes the generator identically and returns the same ids in the
    same order — but translates sampled ranks to ids cohort by cohort, so
    only the cohorts actually hit are ever expanded.  Raises when fewer
    than ``k`` clients are online.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    mask = np.asarray(mask, dtype=bool)
    counts = cohort_counts(mask, cohort_size)
    total = int(counts.sum())
    if k > total:
        raise ValueError(f"cannot sample {k} clients from {total} online")
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    positions = np.asarray(rng.choice(total, size=k, replace=False), dtype=np.int64)
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
    cohort_of = np.searchsorted(offsets, positions, side="right") - 1
    result = np.empty(k, dtype=np.int64)
    for cohort in np.unique(cohort_of):
        hit = cohort_of == cohort
        base = int(cohort) * cohort_size
        local_ids = np.flatnonzero(mask[base : base + cohort_size]) + base
        result[hit] = local_ids[positions[hit] - offsets[cohort]]
    return result


def reservoir_sample(
    candidates: Iterable[int], k: int, rng: np.random.Generator
) -> list[int]:
    """Uniform ``k``-sample from a candidate stream of unknown length.

    Vitter's algorithm R: O(k) memory, one pass, every candidate ends up
    in the reservoir with probability ``k / n``.  Returns fewer than
    ``k`` items only when the stream itself is shorter than ``k``.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    reservoir: list[int] = []
    for seen, candidate in enumerate(candidates):
        if seen < k:
            reservoir.append(candidate)
            continue
        slot = int(rng.integers(0, seen + 1))
        if slot < k:
            reservoir[slot] = candidate
    return reservoir


def streaming_top_k(
    scored: Iterable[tuple[int, float]], k: int
) -> list[tuple[int, float]]:
    """The ``k`` highest-scoring ``(item, score)`` pairs from a stream.

    Bounded min-heap: O(k) memory, O(n log k) time, one pass.  Ties break
    toward the earlier stream position (deterministic for deterministic
    streams).  The result is sorted best-first.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return []
    heap: list[tuple[float, int, int]] = []  # (score, -arrival, item): min-heap
    for arrival, (item, score) in enumerate(scored):
        entry = (float(score), -arrival, item)
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)
    ranked = sorted(heap, key=lambda entry: (-entry[0], -entry[1]))
    return [(item, score) for score, _, item in ranked]


def iter_cohort_slices(
    num_clients: int, cohort_size: int = DEFAULT_COHORT_SIZE
) -> Iterator[slice]:
    """Contiguous cohort slices covering ``[0, num_clients)`` in order.

    The canonical sharding used everywhere in this module; exposed so
    aggregation and planning code shard the population identically.
    """
    if cohort_size <= 0:
        raise ValueError("cohort_size must be positive")
    for start in range(0, num_clients, cohort_size):
        yield slice(start, min(start + cohort_size, num_clients))


def expand_cohort(mask_or_ids: np.ndarray | Sequence[int], cohort: slice) -> np.ndarray:
    """Client ids of one cohort from a population mask.

    Convenience for callers iterating :func:`iter_cohort_slices` over an
    availability mask: the cohort's online ids, absolute (not
    cohort-relative).
    """
    mask = np.asarray(mask_or_ids, dtype=bool)
    return np.flatnonzero(mask[cohort]) + (cohort.start or 0)
