"""``repro.sim`` — the discrete-event AIoT fleet simulator.

The paper evaluates AdaptiveFL on a physical test-bed of Raspberry Pi and
Jetson devices (§4.5); this package replaces the closed-form
``max(download + compute + upload)`` clock of :mod:`repro.devices.testbed`
with a deterministic discrete-event simulation of a whole device fleet:

* :mod:`repro.sim.events` — the virtual clock + event heap that orders
  every simulated action deterministically (FIFO tie-breaking, cancellable
  events).
* :mod:`repro.sim.scenario` — serialisable :class:`ScenarioSpec`
  dataclasses (device mixes, network, availability, battery, deadline)
  and the ``@register_scenario`` registry.
* :mod:`repro.sim.library` — the shipped scenario library:
  ``stable_lab``, ``flaky_edge``, ``diurnal``, ``congested_network``,
  ``battery_constrained`` and ``paper_testbed`` (bit-identical to the
  legacy :class:`~repro.devices.testbed.TestbedSimulator` numbers).
* :mod:`repro.sim.fleet` — :class:`FleetSimulator`, the per-run stateful
  engine the federated algorithms talk to: availability traces, per-round
  outcome simulation (compute jitter, link latency/jitter, server
  transfer-slot contention, mid-round dropouts, battery budgets) and
  deadline-aware arrival accounting.

All randomness derives from :class:`numpy.random.SeedSequence` streams
keyed on ``(seed, tag, round, client)`` — disjoint from the training
streams of :mod:`repro.engine.rng` — so scenario dynamics never perturb
local training and same-seed runs are bit-identical across the serial,
thread and process executors.
"""

from __future__ import annotations

import importlib
from typing import Any

_EXPORTS: dict[str, str] = {
    # event engine
    "Event": "repro.sim.events",
    "EventQueue": "repro.sim.events",
    "TransferGate": "repro.sim.events",
    # scenario specs + registry
    "DeviceTemplate": "repro.sim.scenario",
    "AvailabilitySpec": "repro.sim.scenario",
    "BatterySpec": "repro.sim.scenario",
    "NetworkSpec": "repro.sim.scenario",
    "ScenarioSpec": "repro.sim.scenario",
    "register_scenario": "repro.sim.scenario",
    "unregister_scenario": "repro.sim.scenario",
    "get_scenario": "repro.sim.scenario",
    "available_scenarios": "repro.sim.scenario",
    "validate_scenario_choice": "repro.sim.scenario",
    "ensure_builtin_scenarios": "repro.sim.scenario",
    # fleet runtime
    "ClientDispatch": "repro.sim.fleet",
    "ClientOutcome": "repro.sim.fleet",
    "RoundOutcome": "repro.sim.fleet",
    "FleetSimulator": "repro.sim.fleet",
    # vectorized fleet engine (array-first round API)
    "DispatchBatch": "repro.sim.fleet",
    "RoundOutcomeBatch": "repro.sim.fleet",
    "BATCHED_DRAW_THRESHOLD": "repro.sim.fleet",
    # cohort-sharded streaming selection
    "STREAMING_SELECTION_THRESHOLD": "repro.sim.cohorts",
    "DEFAULT_COHORT_SIZE": "repro.sim.cohorts",
    "cohort_counts": "repro.sim.cohorts",
    "nth_masked_index": "repro.sim.cohorts",
    "masked_choice_without_replacement": "repro.sim.cohorts",
    "reservoir_sample": "repro.sim.cohorts",
    "streaming_top_k": "repro.sim.cohorts",
    "iter_cohort_slices": "repro.sim.cohorts",
    "expand_cohort": "repro.sim.cohorts",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.sim' has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
