"""Serialisable scenario specifications and the scenario registry.

A :class:`ScenarioSpec` is a frozen, JSON-round-trippable description of
an AIoT deployment: the device mix (throughput, link, memory, per-device
jitter), the server network (bounded transfer concurrency), the
availability process (always-on, Markov churn or diurnal), optional
battery budgets, mid-round dropout probability, the synchronous-round
deadline and the over-selection margin the server dispatches beyond
``clients_per_round``.

Scenarios register through the :func:`register_scenario` decorator —
mirroring :func:`repro.api.registry.register_algorithm` — so
``FederatedConfig(scenario="flaky_edge")``, the CLI's ``--scenario`` flag
and ``repro scenarios`` are pure registry lookups.  The shipped library
lives in :mod:`repro.sim.library` and is imported lazily by
:func:`ensure_builtin_scenarios`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.serialization import checked_payload

__all__ = [
    "DeviceTemplate",
    "AvailabilitySpec",
    "BatterySpec",
    "NetworkSpec",
    "ScenarioSpec",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "available_scenarios",
    "validate_scenario_choice",
    "ensure_builtin_scenarios",
]

#: capacity classes understood by the rest of the repository
DEVICE_CLASSES = ("weak", "medium", "strong")


@dataclass(frozen=True)
class DeviceTemplate:
    """One device type of a scenario's fleet.

    ``count`` fixes an absolute number of devices (the paper's test-bed is
    exactly 4+10+3); ``fraction`` scales with the experiment's client
    count.  Exactly one of the two must be set.  ``compute_jitter`` is the
    log-normal sigma of the per-round training-throughput fluctuation;
    ``link_latency_s``/``link_jitter_s`` model per-transfer latency and
    exponential jitter.
    """

    name: str
    device_class: str
    flops_per_second: float
    bandwidth_mbps: float
    memory_gb: float = 4.0
    count: int | None = None
    fraction: float | None = None
    compute_jitter: float = 0.0
    link_latency_s: float = 0.0
    link_jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.device_class not in DEVICE_CLASSES:
            raise ValueError(f"device_class must be one of {DEVICE_CLASSES}")
        if self.flops_per_second <= 0 or self.bandwidth_mbps <= 0 or self.memory_gb <= 0:
            raise ValueError("device throughput, bandwidth and memory must be positive")
        if (self.count is None) == (self.fraction is None):
            raise ValueError("exactly one of count/fraction must be set")
        if self.count is not None and self.count <= 0:
            raise ValueError("count must be positive when set")
        if self.fraction is not None and self.fraction <= 0:
            raise ValueError("fraction must be positive when set")
        if self.compute_jitter < 0 or self.link_latency_s < 0 or self.link_jitter_s < 0:
            raise ValueError("jitter and latency parameters must be non-negative")

    @property
    def is_static(self) -> bool:
        """True when this device adds no timing randomness of its own."""
        return self.compute_jitter == 0.0 and self.link_latency_s == 0.0 and self.link_jitter_s == 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "device_class": self.device_class,
            "flops_per_second": self.flops_per_second,
            "bandwidth_mbps": self.bandwidth_mbps,
            "memory_gb": self.memory_gb,
            "count": self.count,
            "fraction": self.fraction,
            "compute_jitter": self.compute_jitter,
            "link_latency_s": self.link_latency_s,
            "link_jitter_s": self.link_jitter_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeviceTemplate":
        return cls(**checked_payload(cls, payload))


@dataclass(frozen=True)
class AvailabilitySpec:
    """The on/off process governing which clients are reachable per round.

    * ``always`` — every client is reachable every round.
    * ``markov`` — per-client two-state chain: ``P(on→off) = p_drop``,
      ``P(off→on) = p_join`` per round, started from the stationary
      distribution.
    * ``diurnal`` — each client is on for ``on_fraction`` of a
      ``period_rounds``-round day, with a per-client phase offset.
    """

    kind: str = "always"
    p_drop: float = 0.0
    p_join: float = 1.0
    period_rounds: int = 24
    on_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in {"always", "markov", "diurnal"}:
            raise ValueError("availability kind must be 'always', 'markov' or 'diurnal'")
        if not 0.0 <= self.p_drop <= 1.0 or not 0.0 <= self.p_join <= 1.0:
            raise ValueError("markov probabilities must be in [0, 1]")
        if self.kind == "markov" and self.p_drop > 0 and self.p_join == 0:
            raise ValueError("markov availability with p_join=0 would strand every client offline")
        if self.period_rounds <= 0:
            raise ValueError("period_rounds must be positive")
        if not 0.0 < self.on_fraction <= 1.0:
            raise ValueError("on_fraction must be in (0, 1]")

    @property
    def is_static(self) -> bool:
        return self.kind == "always"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "p_drop": self.p_drop,
            "p_join": self.p_join,
            "period_rounds": self.period_rounds,
            "on_fraction": self.on_fraction,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AvailabilitySpec":
        return cls(**checked_payload(cls, payload))


@dataclass(frozen=True)
class BatterySpec:
    """Per-client energy budget (battery-powered fleets).

    Training drains ``compute_watts`` for the compute phase and
    ``transfer_joules_per_mb`` per transferred megabyte; idle clients
    recharge at ``recharge_watts`` over the round's simulated duration.  A
    client whose charge falls below ``min_charge_fraction`` sits out until
    it recovers above ``resume_charge_fraction``; one whose remaining
    charge cannot cover a dispatched round dies mid-round (a dropout).
    """

    capacity_joules: float
    compute_watts: float = 2.0
    transfer_joules_per_mb: float = 0.5
    recharge_watts: float = 0.5
    min_charge_fraction: float = 0.05
    resume_charge_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.capacity_joules <= 0:
            raise ValueError("capacity_joules must be positive")
        if self.compute_watts < 0 or self.transfer_joules_per_mb < 0 or self.recharge_watts < 0:
            raise ValueError("energy rates must be non-negative")
        if not 0.0 <= self.min_charge_fraction <= self.resume_charge_fraction <= 1.0:
            raise ValueError("need 0 <= min_charge_fraction <= resume_charge_fraction <= 1")

    def to_dict(self) -> dict:
        return {
            "capacity_joules": self.capacity_joules,
            "compute_watts": self.compute_watts,
            "transfer_joules_per_mb": self.transfer_joules_per_mb,
            "recharge_watts": self.recharge_watts,
            "min_charge_fraction": self.min_charge_fraction,
            "resume_charge_fraction": self.resume_charge_fraction,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BatterySpec":
        return cls(**checked_payload(cls, payload))


@dataclass(frozen=True)
class NetworkSpec:
    """Server-side network model.

    ``server_concurrency`` bounds how many uploads/downloads the server
    serves at once (a FIFO :class:`~repro.sim.events.TransferGate`); the
    overflow queues, which is what creates congestion stragglers.  ``None``
    means uncontended.
    """

    server_concurrency: int | None = None

    def __post_init__(self) -> None:
        if self.server_concurrency is not None and self.server_concurrency <= 0:
            raise ValueError("server_concurrency must be positive (or None for unlimited)")

    @property
    def is_static(self) -> bool:
        return self.server_concurrency is None

    def to_dict(self) -> dict:
        return {"server_concurrency": self.server_concurrency}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NetworkSpec":
        return cls(**checked_payload(cls, payload))


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serialisable AIoT deployment scenario."""

    name: str
    devices: tuple[DeviceTemplate, ...]
    description: str = ""
    network: NetworkSpec = field(default_factory=NetworkSpec)
    availability: AvailabilitySpec = field(default_factory=AvailabilitySpec)
    battery: BatterySpec | None = None
    #: per-(client, round) probability of a mid-round failure
    dropout_rate: float = 0.0
    #: absolute synchronous-round deadline (seconds); None = no fixed deadline
    deadline_seconds: float | None = None
    #: relative deadline: this factor × the round's median client finish time
    deadline_factor: float | None = None
    #: extra clients dispatched beyond ``clients_per_round`` (over-selection)
    over_selection: int = 0
    #: per-round transfer budget in bytes (downlinks + admitted uploads);
    #: once spent, later-arriving uploads are refused (metered backhaul).
    #: None = unmetered.  Admission is deterministic: uploads are admitted
    #: in simulated-arrival order, dispatch position breaking ties.
    round_byte_budget: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        object.__setattr__(self, "devices", tuple(self.devices))
        if not self.devices:
            raise ValueError("a scenario needs at least one device template")
        kinds = {device.count is None for device in self.devices}
        if len(kinds) > 1:
            raise ValueError("device templates must be uniformly count-based or fraction-based")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError("dropout_rate must be in [0, 1)")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive when set")
        if self.deadline_factor is not None and self.deadline_factor <= 0:
            raise ValueError("deadline_factor must be positive when set")
        if self.deadline_seconds is not None and self.deadline_factor is not None:
            raise ValueError("set at most one of deadline_seconds/deadline_factor")
        if self.over_selection < 0:
            raise ValueError("over_selection must be non-negative")
        if self.round_byte_budget is not None and self.round_byte_budget <= 0:
            raise ValueError("round_byte_budget must be positive when set")

    @property
    def has_deadline(self) -> bool:
        return self.deadline_seconds is not None or self.deadline_factor is not None

    @property
    def is_static(self) -> bool:
        """True when the scenario has no dynamics at all.

        A static scenario degenerates to the closed-form
        ``max(download + compute + upload)`` round clock of the legacy
        :class:`~repro.devices.testbed.TestbedSimulator`, and the fleet
        reproduces those numbers bit-for-bit.
        """
        return (
            all(device.is_static for device in self.devices)
            and self.network.is_static
            and self.availability.is_static
            and self.battery is None
            and self.dropout_rate == 0.0
            and not self.has_deadline
            and self.over_selection == 0
            and self.round_byte_budget is None
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "devices": [device.to_dict() for device in self.devices],
            "network": self.network.to_dict(),
            "availability": self.availability.to_dict(),
            "battery": self.battery.to_dict() if self.battery is not None else None,
            "dropout_rate": self.dropout_rate,
            "deadline_seconds": self.deadline_seconds,
            "deadline_factor": self.deadline_factor,
            "over_selection": self.over_selection,
            "round_byte_budget": self.round_byte_budget,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        data = checked_payload(cls, payload)
        if "devices" in data:
            devices = data["devices"]
            if not isinstance(devices, (list, tuple)):
                raise ValueError("devices must be a list of device templates")
            data["devices"] = tuple(
                device if isinstance(device, DeviceTemplate) else DeviceTemplate.from_dict(device)
                for device in devices
            )
        if isinstance(data.get("network"), Mapping):
            data["network"] = NetworkSpec.from_dict(data["network"])
        if isinstance(data.get("availability"), Mapping):
            data["availability"] = AvailabilitySpec.from_dict(data["availability"])
        if isinstance(data.get("battery"), Mapping):
            data["battery"] = BatterySpec.from_dict(data["battery"])
        return cls(**data)


# -- registry ---------------------------------------------------------------------------

_SCENARIOS: dict[str, Callable[[], ScenarioSpec]] = {}


def register_scenario(name: str) -> Callable[[Callable[[], ScenarioSpec]], Callable[[], ScenarioSpec]]:
    """Decorator registering a zero-arg factory producing a :class:`ScenarioSpec`."""

    def decorator(factory: Callable[[], ScenarioSpec]) -> Callable[[], ScenarioSpec]:
        existing = _SCENARIOS.get(name)
        if existing is not None and existing is not factory:
            raise ValueError(f"scenario {name!r} is already registered ({existing!r})")
        _SCENARIOS[name] = factory
        return factory

    return decorator


def unregister_scenario(name: str) -> None:
    """Remove a registration (plugin teardown / tests); unknown names are a no-op."""
    _SCENARIOS.pop(name, None)


def ensure_builtin_scenarios() -> None:
    """Import the module whose decorators register the shipped library."""
    import repro.sim.library  # noqa: F401  (registers the shipped fleet scenarios)


def available_scenarios() -> tuple[str, ...]:
    """All registered scenario names, sorted."""
    ensure_builtin_scenarios()
    return tuple(sorted(_SCENARIOS))


def get_scenario(name: str) -> ScenarioSpec:
    """Build the spec for a registered scenario; unknown names list valid ones."""
    ensure_builtin_scenarios()
    try:
        factory = _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {', '.join(available_scenarios())}"
        ) from None
    spec = factory()
    if spec.name != name:
        raise ValueError(f"scenario factory for {name!r} produced a spec named {spec.name!r}")
    return spec


def validate_scenario_choice(name: str | None) -> None:
    """Fail fast on unknown scenario names (used by config validation)."""
    if name is None:
        return
    ensure_builtin_scenarios()
    if name not in _SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; registered: {', '.join(available_scenarios())}")
