"""Profiling and optimization layer for the NumPy training stack.

Three concerns live here:

* :mod:`repro.perf.profiler` — scoped wall-clock timers + counters
  threaded through :meth:`repro.core.fl_base.FederatedAlgorithm.run`
  and exposed on the CLI as ``--profile``.
* :mod:`repro.perf.workspace` — reusable ndarray buffers that remove
  per-batch allocation from the conv/pool/optimizer hot paths.
* :mod:`repro.perf.flops` — parameter and FLOP counting (promoted from
  ``repro.nn.profiling``), used for Table 1 and the test-bed clock.

Exports resolve lazily so low-level modules (``repro.nn.layers`` needs
:mod:`repro.perf.workspace`; :mod:`repro.perf.flops` needs
``repro.nn.layers``) never form an import cycle through this package.
"""

from __future__ import annotations

import importlib
from typing import Any

__all__ = [
    "Profiler",
    "ScopeStats",
    "Workspace",
    "workspace_stats",
    "reset_workspace_stats",
    "FlopReport",
    "count_flops",
    "count_params",
]

_EXPORTS: dict[str, str] = {
    "Profiler": "repro.perf.profiler",
    "ScopeStats": "repro.perf.profiler",
    "Workspace": "repro.perf.workspace",
    "workspace_stats": "repro.perf.workspace",
    "reset_workspace_stats": "repro.perf.workspace",
    "FlopReport": "repro.perf.flops",
    "count_flops": "repro.perf.flops",
    "count_params": "repro.perf.flops",
}


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.perf' has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
