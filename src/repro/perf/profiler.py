"""Scoped wall-clock timers and allocation counters for the training loop.

A :class:`Profiler` accumulates named scopes (`round.training`,
`round.aggregate`, `evaluate`, ...) with call counts and total seconds,
plus free-form counters (bytes shipped by the transport layer, workspace
hits/misses).  It is deliberately phase-grained: per-op instrumentation
in the NumPy kernels would cost more than the ops themselves, so kernels
stay clean and the op-level story is told by
``benchmarks/bench_hotpaths.py`` instead.

Since the :mod:`repro.obs` telemetry subsystem landed, the profiler's
storage *is* an :class:`repro.obs.metrics.MetricsRegistry` — each scope
a histogram, each counter a gauge — so phase totals live in the same
primitives as the rest of the stack's metrics and the registry can be
layered into Prometheus exposition (:attr:`Profiler.registry`).  The
public ``summary()``/``render()`` surface is unchanged.

The active profiler is installed per algorithm
(:attr:`repro.core.fl_base.FederatedAlgorithm.profiler`) and surfaces on
the CLI as ``--profile``, which prints the summary table and writes
``profile.json`` next to the run's results.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.clock import perf_counter
from repro.obs.metrics import Gauge, Histogram, MetricsRegistry

__all__ = ["Profiler", "ScopeStats", "render_summary"]

#: characters legal in a Prometheus metric name (scope names carry dots)
_METRIC_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _metric_name(prefix: str, name: str) -> str:
    """Map a free-form scope/counter name onto a legal metric name."""
    sanitized = "".join(ch if ch in _METRIC_OK else "_" for ch in name)
    return f"{prefix}{sanitized}"


def render_summary(summary: dict, title: str | None = None) -> str:
    """Human-readable table of a ``Profiler.summary()`` dict.

    Shared by :meth:`Profiler.render` and the CLI's ``--profile`` output
    (which renders summaries reloaded from ``<algorithm>_profile.json``).
    """
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'scope':<28} {'calls':>7} {'seconds':>10} {'avg ms':>9}")
    for scope in summary.get("scopes", []):
        avg_ms = 1000.0 * scope["seconds"] / scope["calls"] if scope["calls"] else 0.0
        lines.append(f"{scope['name']:<28} {scope['calls']:>7} {scope['seconds']:>10.4f} {avg_ms:>9.3f}")
    counters = summary.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':<40} {'value':>14}")
        for name in sorted(counters):
            value = counters[name]
            rendered = f"{value:,.0f}" if float(value).is_integer() else f"{value:,.3f}"
            lines.append(f"{name:<40} {rendered:>14}")
    return "\n".join(lines)


class ScopeStats:
    """Read view of one named scope's accumulated totals.

    Kept as the ``Profiler.scopes`` value type for back-compat; since
    the registry migration it is a snapshot built from the underlying
    histogram, not the storage itself.
    """

    __slots__ = ("name", "calls", "seconds")

    def __init__(self, name: str, calls: int = 0, seconds: float = 0.0):
        self.name = name
        self.calls = calls
        self.seconds = seconds

    def add(self, seconds: float) -> None:
        """Accumulate one call of ``seconds`` duration."""
        self.calls += 1
        self.seconds += seconds

    def to_dict(self) -> dict:
        """JSON form used by ``summary()`` and ``profile.json``."""
        return {"name": self.name, "calls": self.calls, "seconds": round(self.seconds, 6)}


class Profiler:
    """Collects scoped timings and counters; cheap enough to leave enabled.

    A disabled profiler (the default) reduces :meth:`scope` to a no-op
    context manager and :meth:`count` to nothing, so the training loop
    carries it unconditionally.  Storage is a private
    :class:`MetricsRegistry` (scopes as histograms under
    ``profile_scope_*``, counters as gauges under ``profile_counter_*``)
    exposed as :attr:`registry` for Prometheus layering.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self._scope_metrics: dict[str, Histogram] = {}
        self._counter_metrics: dict[str, Gauge] = {}

    # -- timing -------------------------------------------------------------------
    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        start = perf_counter()
        try:
            yield
        finally:
            histogram = self._scope_metrics.get(name)
            if histogram is None:
                histogram = self.registry.histogram(_metric_name("profile_scope_", name))
                self._scope_metrics[name] = histogram
            histogram.observe(perf_counter() - start)

    # -- counters -----------------------------------------------------------------
    def _counter(self, name: str) -> Gauge:
        gauge = self._counter_metrics.get(name)
        if gauge is None:
            gauge = self.registry.gauge(_metric_name("profile_counter_", name))
            self._counter_metrics[name] = gauge
        return gauge

    def count(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter ``name`` (no-op when disabled)."""
        if self.enabled:
            self._counter(name).inc(amount)

    def set_counter(self, name: str, value: float) -> None:
        """Overwrite the counter ``name`` (no-op when disabled)."""
        if self.enabled:
            self._counter(name).set(value)

    # -- reporting ----------------------------------------------------------------
    @property
    def scopes(self) -> dict[str, ScopeStats]:
        """Snapshot of every scope's (calls, seconds) totals, by name."""
        return {
            name: ScopeStats(name, histogram.calls, histogram.total)
            for name, histogram in self._scope_metrics.items()
        }

    @property
    def counters(self) -> dict[str, float]:
        """Snapshot of every counter's current value, by name."""
        return {name: gauge.value for name, gauge in self._counter_metrics.items()}

    def reset(self) -> None:
        """Drop all accumulated scopes and counters."""
        self.registry.reset()
        self._scope_metrics.clear()
        self._counter_metrics.clear()

    def summary(self) -> dict:
        """JSON-friendly summary: scopes sorted by total time, then counters."""
        ordered = sorted(self.scopes.values(), key=lambda s: s.seconds, reverse=True)
        counters = self.counters
        return {
            "scopes": [stats.to_dict() for stats in ordered],
            "counters": {name: counters[name] for name in sorted(counters)},
        }

    def render(self) -> str:
        """A human-readable table of the summary (used by ``--profile``)."""
        return render_summary(self.summary())
