"""Scoped wall-clock timers and allocation counters for the training loop.

A :class:`Profiler` accumulates named scopes (`round.training`,
`round.aggregate`, `evaluate`, ...) with call counts and total seconds,
plus free-form counters (bytes shipped by the transport layer, workspace
hits/misses).  It is deliberately phase-grained: per-op instrumentation
in the NumPy kernels would cost more than the ops themselves, so kernels
stay clean and the op-level story is told by
``benchmarks/bench_hotpaths.py`` instead.

The active profiler is installed per algorithm
(:attr:`repro.core.fl_base.FederatedAlgorithm.profiler`) and surfaces on
the CLI as ``--profile``, which prints the summary table and writes
``profile.json`` next to the run's results.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Profiler", "ScopeStats", "render_summary"]


def render_summary(summary: dict, title: str | None = None) -> str:
    """Human-readable table of a ``Profiler.summary()`` dict.

    Shared by :meth:`Profiler.render` and the CLI's ``--profile`` output
    (which renders summaries reloaded from ``<algorithm>_profile.json``).
    """
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'scope':<28} {'calls':>7} {'seconds':>10} {'avg ms':>9}")
    for scope in summary.get("scopes", []):
        avg_ms = 1000.0 * scope["seconds"] / scope["calls"] if scope["calls"] else 0.0
        lines.append(f"{scope['name']:<28} {scope['calls']:>7} {scope['seconds']:>10.4f} {avg_ms:>9.3f}")
    counters = summary.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':<40} {'value':>14}")
        for name in sorted(counters):
            value = counters[name]
            rendered = f"{value:,.0f}" if float(value).is_integer() else f"{value:,.3f}"
            lines.append(f"{name:<40} {rendered:>14}")
    return "\n".join(lines)


class ScopeStats:
    """Accumulated totals of one named scope."""

    __slots__ = ("name", "calls", "seconds")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.seconds = 0.0

    def add(self, seconds: float) -> None:
        self.calls += 1
        self.seconds += seconds

    def to_dict(self) -> dict:
        return {"name": self.name, "calls": self.calls, "seconds": round(self.seconds, 6)}


class Profiler:
    """Collects scoped timings and counters; cheap enough to leave enabled.

    A disabled profiler (the default) reduces :meth:`scope` to a no-op
    context manager and :meth:`count` to a dict update, so the training
    loop carries it unconditionally.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._scopes: dict[str, ScopeStats] = {}
        self._counters: dict[str, float] = {}

    # -- timing -------------------------------------------------------------------
    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            stats = self._scopes.get(name)
            if stats is None:
                stats = self._scopes[name] = ScopeStats(name)
            stats.add(time.perf_counter() - start)

    # -- counters -----------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter ``name`` (no-op when disabled)."""
        if self.enabled:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_counter(self, name: str, value: float) -> None:
        if self.enabled:
            self._counters[name] = value

    # -- reporting ----------------------------------------------------------------
    @property
    def scopes(self) -> dict[str, ScopeStats]:
        return dict(self._scopes)

    @property
    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    def reset(self) -> None:
        self._scopes.clear()
        self._counters.clear()

    def summary(self) -> dict:
        """JSON-friendly summary: scopes sorted by total time, then counters."""
        ordered = sorted(self._scopes.values(), key=lambda s: s.seconds, reverse=True)
        return {
            "scopes": [stats.to_dict() for stats in ordered],
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
        }

    def render(self) -> str:
        """A human-readable table of the summary (used by ``--profile``)."""
        return render_summary(self.summary())
