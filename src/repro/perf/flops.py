"""Parameter and FLOP counting (promoted from ``repro.nn.profiling``).

Used to regenerate Table 1 of the paper (the #PARAMS / #FLOPS columns of
the VGG16 split settings).  Following the convention of the paper (and of
HeteroFL/ScaleFL), "FLOPs" here counts multiply–accumulate operations of
conv and linear layers; batch-norm, activation and pooling costs are
ignored because they are negligible and the paper's numbers match the
MAC-only count.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
)
from repro.nn.module import Module, Sequential

__all__ = ["count_params", "count_flops", "FlopReport"]


class FlopReport:
    """Result of a FLOP trace: total MACs plus the final output shape."""

    def __init__(self, flops: int, output_shape: tuple[int, ...]):
        self.flops = int(flops)
        self.output_shape = tuple(output_shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlopReport(flops={self.flops}, output_shape={self.output_shape})"


def count_params(module: Module, trainable_only: bool = True) -> int:
    """Total number of scalar parameters in ``module``.

    With ``trainable_only=False`` batch-norm running statistics (buffers)
    are included as well.
    """
    total = sum(p.size for p in module.parameters())
    if not trainable_only:
        total += sum(int(np.asarray(b).size) for _, b in module.named_buffers())
    return int(total)


def _trace_layer(layer: Module, shape: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
    """FLOPs and output shape of a single primitive layer.

    ``shape`` excludes the batch dimension: ``(C, H, W)`` for spatial
    tensors or ``(features,)`` after flattening.
    """
    if isinstance(layer, Conv2d):
        c, h, w = shape
        out_h = F.conv_output_size(h, layer.kernel_size, layer.stride, layer.padding)
        out_w = F.conv_output_size(w, layer.kernel_size, layer.stride, layer.padding)
        macs = layer.out_channels * layer.in_channels * layer.kernel_size**2 * out_h * out_w
        return macs, (layer.out_channels, out_h, out_w)
    if isinstance(layer, DepthwiseConv2d):
        c, h, w = shape
        out_h = F.conv_output_size(h, layer.kernel_size, layer.stride, layer.padding)
        out_w = F.conv_output_size(w, layer.kernel_size, layer.stride, layer.padding)
        macs = layer.channels * layer.kernel_size**2 * out_h * out_w
        return macs, (layer.channels, out_h, out_w)
    if isinstance(layer, Linear):
        return layer.out_features * layer.in_features, (layer.out_features,)
    if isinstance(layer, (MaxPool2d, AvgPool2d)):
        c, h, w = shape
        out_h = F.conv_output_size(h, layer.kernel_size, layer.stride, 0)
        out_w = F.conv_output_size(w, layer.kernel_size, layer.stride, 0)
        return 0, (c, out_h, out_w)
    if isinstance(layer, GlobalAvgPool2d):
        c, _, _ = shape
        return 0, (c,)
    if isinstance(layer, Flatten):
        return 0, (int(np.prod(shape)),)
    if isinstance(layer, (BatchNorm2d, ReLU, ReLU6, Dropout, Identity)):
        return 0, shape
    raise TypeError(f"count_flops does not know how to trace layer type {type(layer).__name__}")


def count_flops(module: Module, input_shape: tuple[int, ...]) -> FlopReport:
    """Count multiply–accumulates of a forward pass on one sample.

    ``input_shape`` excludes the batch dimension.  Composite models may
    implement ``compute_flops(input_shape) -> FlopReport`` to describe
    non-sequential control flow (residual blocks, early exits); that hook
    takes precedence over the generic trace.
    """
    custom = getattr(module, "compute_flops", None)
    if callable(custom):
        report = custom(input_shape)
        if not isinstance(report, FlopReport):
            raise TypeError("compute_flops must return a FlopReport")
        return report
    if isinstance(module, Sequential):
        total = 0
        shape = tuple(input_shape)
        for layer in module:
            report = count_flops(layer, shape)
            total += report.flops
            shape = report.output_shape
        return FlopReport(total, shape)
    flops, shape = _trace_layer(module, tuple(input_shape))
    return FlopReport(flops, shape)
