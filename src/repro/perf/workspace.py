"""Reusable array workspaces for per-batch hot-path buffers.

The pure-NumPy training loop used to allocate (and garbage-collect) the
same large intermediates — im2col column matrices, scatter-index arrays,
optimizer scratch — once per batch.  A :class:`Workspace` keeps those
buffers alive across batches: callers ask for ``(key, shape, dtype)``
and get the cached buffer back whenever shape and dtype still match,
paying a fresh allocation only when the batch geometry changes (e.g. the
last partial batch of an epoch).

Buffers are returned *unzeroed* — every consumer overwrites the region
it reads, which is exactly what makes reuse safe.  Callers that need
zeroed memory use :meth:`Workspace.zeros`.

Workspaces are owned by the module/optimizer instance that uses them, so
their lifetime and thread-affinity mirror the owning model: the engine
builds one model per client task, never sharing workspaces across
threads or processes.  The global :func:`workspace_stats` counters feed
the ``repro.perf`` profiler's allocation accounting.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

__all__ = ["Workspace", "workspace_stats", "reset_workspace_stats"]

#: process-wide reuse counters: {"hits": buffers reused, "misses": buffers (re)allocated}
_STATS = {"hits": 0, "misses": 0}


def workspace_stats() -> dict[str, int]:
    """A snapshot of the process-wide workspace reuse counters."""
    return dict(_STATS)


def reset_workspace_stats() -> None:
    """Zero the process-wide workspace reuse counters."""
    _STATS["hits"] = 0
    _STATS["misses"] = 0


class Workspace:
    """A keyed cache of reusable ndarray buffers.

    ``get`` returns an *uninitialised* buffer (contents are whatever the
    previous batch left behind — consumers must fully overwrite what they
    read); ``zeros`` returns the same buffer zero-filled.  A key whose
    requested shape or dtype changed is transparently reallocated, so a
    trailing partial batch can never read stale regions sized for the
    full batch.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[Hashable, np.ndarray] = {}

    def get(self, key: Hashable, shape: tuple[int, ...], dtype) -> np.ndarray:
        """The reusable buffer for ``key`` (uninitialised contents)."""
        buffer = self._buffers.get(key)
        if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
            _STATS["misses"] += 1
        else:
            _STATS["hits"] += 1
        return buffer

    def zeros(self, key: Hashable, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Like :meth:`get` but zero-filled."""
        buffer = self.get(key, shape, dtype)
        buffer.fill(0)
        return buffer

    def put(self, key: Hashable, value: np.ndarray) -> np.ndarray:
        """Store a precomputed array (e.g. scatter indices) under ``key``."""
        self._buffers[key] = value
        return value

    def lookup(self, key: Hashable) -> np.ndarray | None:
        """The cached array for ``key``, or None (no counters touched)."""
        return self._buffers.get(key)

    def clear(self) -> None:
        self._buffers.clear()

    def __len__(self) -> int:
        return len(self._buffers)
