"""The shipped reprolint rules, one module per invariant family.

Importing this package registers every built-in rule; the explicit
imports below are the side-effect-import idiom rule ``RPL007`` itself
enforces (each carries an explanatory ``noqa``).
"""

from __future__ import annotations

import repro.analysis.rules.determinism  # noqa: F401  (registers RPL001)
import repro.analysis.rules.dtype  # noqa: F401  (registers RPL002)
import repro.analysis.rules.pickling  # noqa: F401  (registers RPL003)
import repro.analysis.rules.serialization  # noqa: F401  (registers RPL004)
import repro.analysis.rules.shared_state  # noqa: F401  (registers RPL005)
import repro.analysis.rules.atomic_writes  # noqa: F401  (registers RPL006)
import repro.analysis.rules.registries  # noqa: F401  (registers RPL007)
import repro.analysis.rules.hooks  # noqa: F401  (registers RPL008)
