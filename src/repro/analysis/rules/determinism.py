"""RPL001 — nondeterminism sources outside the sanctioned RNG plumbing.

Every guarantee the parity suites enforce at runtime — bit-identical
serial/thread/process histories, scenario and resume parity — rests on
randomness being a pure function of ``(seed, round, client)``.  One call
into process-global RNG state (``np.random.shuffle``, ``random.random``)
or the wall clock (``time.time``, ``datetime.now``) silently breaks that
for every configuration the runtime suites do not happen to run.  This
rule bans those calls everywhere in ``src/`` except
:mod:`repro.engine.rng`, the one module allowed to construct entropy,
and :mod:`repro.obs.clock`, the one module allowed to read the wall
clock (telemetry timestamps are observations, never inputs — nothing
read from an event log may feed run keys, checkpoints or randomness).

Measurement clocks (``time.perf_counter``, ``time.monotonic``) are
allowed: they time work, they never feed results.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.registry import Rule, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import FileContext
    from repro.analysis.findings import Finding

#: numpy.random attributes that do NOT touch the global generator
_NUMPY_SANCTIONED = {
    "default_rng",
    "SeedSequence",
    "Generator",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: calls that read the wall clock or OS entropy (never reproducible)
_BANNED_EXACT = {
    "time.time": "wall-clock entropy",
    "time.time_ns": "wall-clock entropy",
    "datetime.datetime.now": "wall-clock entropy",
    "datetime.datetime.utcnow": "wall-clock entropy",
    "datetime.datetime.today": "wall-clock entropy",
    "datetime.date.today": "wall-clock entropy",
    "uuid.uuid1": "host/clock entropy",
    "uuid.uuid4": "OS entropy",
    "os.urandom": "OS entropy",
}

#: seedable constructors that fall back to OS entropy when called bare
_NEEDS_SEED = {"numpy.random.default_rng", "numpy.random.SeedSequence"}


@register_rule(
    "RPL001",
    name="global-rng",
    summary="global RNG, wall-clock or OS-entropy call outside repro.engine.rng",
    rationale=(
        "randomness must be a pure function of (seed, round, client) or the "
        "serial/thread/process and resume parity guarantees silently break"
    ),
    exempt=("repro/engine/rng.py", "repro/obs/clock.py"),
)
class GlobalRandomnessRule(Rule):
    """Flag calls into process-global RNG state and wall-clock entropy."""

    def check_file(self, ctx: "FileContext") -> Iterator["Finding"]:
        """Scan every call; report the resolved dotted name that is banned."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node)
            if resolved is None:
                continue
            if resolved in _BANNED_EXACT:
                yield self.finding(
                    ctx,
                    node,
                    f"{resolved}() is {_BANNED_EXACT[resolved]}; results must be a pure "
                    "function of (seed, round, client) — derive times from the virtual "
                    "clock and randomness from repro.engine.rng streams",
                )
            elif resolved in _NEEDS_SEED and not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    f"{resolved}() without a seed draws OS entropy; pass explicit "
                    "entropy (a seed tuple or a SeedSequence from repro.engine.rng)",
                )
            elif resolved.startswith("numpy.random."):
                attr = resolved[len("numpy.random."):]
                if attr not in _NUMPY_SANCTIONED and "." not in attr:
                    yield self.finding(
                        ctx,
                        node,
                        f"{resolved}() mutates numpy's process-global generator; use a "
                        "per-task Generator from repro.engine.rng.client_stream instead",
                    )
            elif resolved.startswith("random.") and resolved != "random.Random":
                yield self.finding(
                    ctx,
                    node,
                    f"{resolved}() uses the stdlib's process-global generator; use a "
                    "seeded numpy Generator from repro.engine.rng instead",
                )
