"""RPL002 — dtype discipline in the numeric hot paths.

The PR-4 hot-path overhaul moved the whole training stack to float32;
an un-dtyped ``np.zeros``/``np.arange`` silently materialises float64,
which both doubles memory traffic and — worse — changes rounding, so a
single stray allocation can break the bit-parity contract between the
optimized kernels and their ``*_reference`` twins.  Under
``repro/nn`` and ``repro/engine`` every array constructor whose default
dtype is not derived from an input array must say what it means.

``np.array`` is only flagged when its first argument is a literal
(list/tuple/number/comprehension): ``np.array(existing, copy=True)``
inherits the source's dtype and stays exact.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.registry import Rule, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import FileContext
    from repro.analysis.findings import Finding

#: constructors whose dtype defaults to float64 regardless of use site
_CONSTRUCTORS = {"zeros", "ones", "empty", "full", "arange", "array"}

_LITERAL_FIRST_ARG = (ast.List, ast.Tuple, ast.Set, ast.Constant, ast.ListComp, ast.GeneratorExp)


@register_rule(
    "RPL002",
    name="implicit-dtype",
    summary="numpy array constructor without an explicit dtype= in a hot path",
    rationale=(
        "the training stack is float32 end-to-end (repro.nn.dtype); a stray "
        "float64 allocation changes rounding and breaks kernel/reference parity"
    ),
    scopes=("repro/nn", "repro/engine"),
)
class ImplicitDtypeRule(Rule):
    """Flag ``np.zeros/ones/empty/full/arange/array`` calls without ``dtype=``."""

    def check_file(self, ctx: "FileContext") -> Iterator["Finding"]:
        """Scan calls resolving to numpy constructors for a missing dtype."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node)
            if resolved is None or not resolved.startswith("numpy."):
                continue
            constructor = resolved[len("numpy."):]
            if constructor not in _CONSTRUCTORS:
                continue
            if any(keyword.arg == "dtype" for keyword in node.keywords):
                continue
            if constructor == "zeros" and len(node.args) >= 2:
                continue  # positional dtype: np.zeros(shape, np.float32)
            if constructor in {"ones", "empty"} and len(node.args) >= 2:
                continue
            if constructor == "arange" and any(
                isinstance(arg, ast.Constant) and isinstance(arg.value, float) for arg in node.args
            ):
                continue  # float step/bounds pin the dtype on purpose
            if constructor == "array":
                if not node.args or not isinstance(node.args[0], _LITERAL_FIRST_ARG):
                    continue  # dtype inherited from an existing array-like
            yield self.finding(
                ctx,
                node,
                f"numpy.{constructor} without dtype= defaults to float64 in a float32 "
                "hot path; state the dtype (np.intp for indices, resolve_dtype() for data)",
            )
