"""RPL005 — module-level mutable state mutated from function bodies.

A module-level dict or list mutated inside functions is shared across
every thread of the thread executor and silently *diverges* across the
processes of the process executor — the exact class of bug the parity
suites exist to catch, except these only misbehave under load.  The
rule finds module-level mutable containers and reports every mutation
site inside a function body.

Two idioms are sanctioned by design rather than baselined:

* registries — mutations inside functions named ``register*`` /
  ``unregister*`` / ``ensure_*`` (including nested decorator closures),
  which are import-time-only writes protected by the duplicate check;
* intentional per-process caches (``_SCATTER_INDEX_CACHE``, worker
  transport caches) — these are *meant* to diverge per process and are
  grandfathered in the committed baseline where each entry documents
  the why.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.registry import Rule, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import FileContext
    from repro.analysis.findings import Finding

#: constructor calls that build a mutable container
_MUTABLE_FACTORIES = {"dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter"}

#: method names that mutate their receiver in place
_MUTATOR_METHODS = {
    "append",
    "add",
    "update",
    "pop",
    "popitem",
    "clear",
    "setdefault",
    "extend",
    "insert",
    "remove",
    "discard",
    "appendleft",
    "popleft",
}

#: enclosing-function name prefixes whose writes are sanctioned registry plumbing
_SANCTIONED_PREFIXES = ("register", "unregister", "_register", "_unregister", "ensure_", "_ensure_")


def _module_level_mutables(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for statement in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        if value is None:
            continue
        is_mutable = isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp))
        if isinstance(value, ast.Call):
            callee = value.func
            bare = callee.id if isinstance(callee, ast.Name) else callee.attr if isinstance(callee, ast.Attribute) else None
            is_mutable = bare in _MUTABLE_FACTORIES
        if not is_mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_sanctioned(stack: list[ast.FunctionDef]) -> bool:
    return any(func.name.startswith(_SANCTIONED_PREFIXES) for func in stack)


def _root_name(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@register_rule(
    "RPL005",
    name="shared-mutable-state",
    summary="module-level mutable container mutated from a function body",
    rationale=(
        "module globals are shared across executor threads and diverge across "
        "processes; only registries and documented per-process caches may do this"
    ),
)
class SharedMutableStateRule(Rule):
    """Flag function-body mutations of module-level containers."""

    def check_file(self, ctx: "FileContext") -> Iterator["Finding"]:
        """Find module-level containers, then walk functions for mutations."""
        mutables = _module_level_mutables(ctx.tree)
        if not mutables:
            return
        yield from self._walk(ctx, ctx.tree, mutables, [])

    def _walk(
        self,
        ctx: "FileContext",
        node: ast.AST,
        mutables: set[str],
        stack: list[ast.FunctionDef],
    ) -> Iterator["Finding"]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # a local rebinding shadows the global inside this function
                shadowed = {
                    target.id
                    for sub in ast.walk(child)
                    for target in getattr(sub, "targets", [])
                    if isinstance(sub, ast.Assign) and isinstance(target, ast.Name)
                }
                declared_global = {
                    name for sub in ast.walk(child) if isinstance(sub, ast.Global) for name in sub.names
                }
                visible = (mutables - shadowed) | (mutables & declared_global)
                yield from self._walk(ctx, child, visible, [*stack, child])
            else:
                if stack and not _is_sanctioned(stack):
                    yield from self._check_statement(ctx, child, mutables, stack[-1])
                yield from self._walk(ctx, child, mutables, stack)

    def _check_statement(
        self, ctx: "FileContext", node: ast.AST, mutables: set[str], func: ast.FunctionDef
    ) -> Iterator["Finding"]:
        target: ast.expr | None = None
        if isinstance(node, (ast.Assign, ast.Delete)):
            for tgt in node.targets:
                if isinstance(tgt, ast.Subscript) and _root_name(tgt) in mutables:
                    target = tgt
                    break
        elif isinstance(node, ast.AugAssign):
            if _root_name(node.target) in mutables:
                target = node.target
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            if isinstance(call.func, ast.Attribute) and call.func.attr in _MUTATOR_METHODS:
                if _root_name(call.func.value) in mutables:
                    target = call
        if target is not None:
            name = _root_name(target if not isinstance(target, ast.Call) else target.func.value)
            yield self.finding(
                ctx,
                node if hasattr(node, "lineno") else target,
                f"{func.name}() mutates module-level container {name!r}; shared across "
                "executor threads and divergent across processes — pass state "
                "explicitly, or document a deliberate per-process cache in the baseline",
            )
