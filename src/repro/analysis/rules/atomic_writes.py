"""RPL006 — store writes that bypass the atomic-write path.

Every artifact under ``repro/store`` is contractually crash-safe: a
reader either sees the previous complete file or the new complete file,
never a torn half-write.  That guarantee lives in one place —
:func:`repro.store.objects.write_atomic` (temp file + ``os.replace``)
— so any direct ``open(..., "w")``, ``Path.write_text`` or
``json.dump`` inside the store layer is a durability hole: a crash
mid-write corrupts the manifest the next resume will try to load.

Only ``repro/store/objects.py`` itself may perform raw writes; it is
where the atomic primitive is implemented.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.registry import Rule, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import FileContext
    from repro.analysis.findings import Finding

#: attribute calls that write a file directly, whatever the receiver
_WRITE_METHODS = {"write_text", "write_bytes"}

#: resolved callees that open a writable handle or serialise to one
_WRITE_CALLS = {
    "json.dump": "serialises straight into a file handle",
    "numpy.save": "writes the array file directly",
    "numpy.savez": "writes the archive directly",
    "numpy.savez_compressed": "writes the archive directly",
}

_WRITE_MODES = set("wax")


def _open_mode(call: ast.Call) -> str | None:
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic mode: assume the worst


@register_rule(
    "RPL006",
    name="non-atomic-store-write",
    summary="direct file write inside repro.store not routed through write_atomic",
    rationale=(
        "store artifacts are crash-safe by contract; a raw write torn by a "
        "crash corrupts the manifest the next resume loads"
    ),
    scopes=("repro/store",),
    exempt=("repro/store/objects.py",),
)
class NonAtomicStoreWriteRule(Rule):
    """Flag raw file writes in the store layer."""

    def check_file(self, ctx: "FileContext") -> Iterator["Finding"]:
        """Scan calls for writable open(), write_text/bytes and dump-style writers."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr in _WRITE_METHODS:
                yield self.finding(
                    ctx,
                    node,
                    f".{node.func.attr}() writes the file in place; a crash mid-write "
                    "tears it — route through repro.store.objects.write_atomic",
                )
                continue
            resolved = ctx.resolve_call(node)
            if resolved == "open":
                mode = _open_mode(node)
                if mode is None or any(flag in mode for flag in _WRITE_MODES):
                    yield self.finding(
                        ctx,
                        node,
                        "open() with a write mode bypasses the atomic-write path; build "
                        "the payload in memory and hand it to write_atomic",
                    )
            elif resolved in _WRITE_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{resolved}() {_WRITE_CALLS[resolved]}; serialise to bytes first "
                    "and persist via write_atomic",
                )
