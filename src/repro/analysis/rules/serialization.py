"""RPL004 — strict serialization pairing for payload dataclasses.

Round histories, checkpoints and sweep manifests all persist through
``to_dict``/``from_dict`` pairs, and resume parity depends on the read
side rejecting payloads it does not fully understand.  A dataclass that
grows a ``to_dict`` without a ``from_dict`` becomes write-only on-disk
state the next session cannot reload; a ``from_dict`` that does not go
through :func:`repro.core.serialization.checked_payload` silently drops
unknown keys instead of failing the resume.

Output-only dataclasses (results rendered for humans, never reloaded)
carry an inline ``# reprolint: disable=RPL004`` on the ``def to_dict``
line, which documents the one-way contract at the definition site.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.registry import Rule, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import FileContext
    from repro.analysis.findings import Finding


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for statement in node.body:
        if isinstance(statement, ast.FunctionDef) and statement.name == name:
            return statement
    return None


def _calls_checked_payload(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id == "checked_payload":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "checked_payload":
            return True
    return False


@register_rule(
    "RPL004",
    name="one-way-serialization",
    summary="dataclass with to_dict but no strict from_dict counterpart",
    rationale=(
        "resume parity requires the read side to reject unknown keys; a "
        "missing or lax from_dict turns persisted state write-only or lossy"
    ),
)
class OneWaySerializationRule(Rule):
    """Flag ``to_dict`` dataclasses whose ``from_dict`` is missing or lax."""

    def check_file(self, ctx: "FileContext") -> Iterator["Finding"]:
        """Pair up to_dict/from_dict on every dataclass in the file."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
                continue
            to_dict = _method(node, "to_dict")
            if to_dict is None:
                continue
            from_dict = _method(node, "from_dict")
            if from_dict is None:
                yield self.finding(
                    ctx,
                    to_dict,
                    f"dataclass {node.name} defines to_dict but no from_dict; persisted "
                    "payloads become write-only — add a strict from_dict via "
                    "checked_payload, or mark one-way output with an inline disable",
                )
            elif not _calls_checked_payload(from_dict):
                yield self.finding(
                    ctx,
                    from_dict,
                    f"{node.name}.from_dict does not validate through checked_payload; "
                    "unknown keys would be silently dropped instead of failing the resume",
                )
