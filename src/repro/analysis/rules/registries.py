"""RPL007 — registry hygiene: explained side-effect imports, unique names.

The codebase's registries (algorithms, scenarios, lint rules) fill in
at import time, which forces ``import x  # noqa: F401`` lines whose
whole purpose is the side effect.  Those are legitimate exactly when
they say so: a bare ``# noqa: F401`` with no explanation is
indistinguishable from a stale import someone silenced instead of
deleting.  This rule requires the explanation text, and — project-wide
— flags two ``register_*`` calls claiming the same string name, which
at import time raises at best and last-writer-wins at worst.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.registry import Rule, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import FileContext
    from repro.analysis.findings import Finding

# a noqa is "bare" when nothing but line end (or another comment, e.g. an
# inline reprolint suppression) follows the code list — explanation text counts
_BARE_NOQA = re.compile(r"#\s*noqa(?::\s*([A-Z0-9, ]+?))?\s*(?:#|$)")

#: keyword args that carry the registered name when it is not positional
_NAME_KEYWORDS = ("name", "code")


def _registered_name(call: ast.Call) -> str | None:
    candidate: ast.expr | None = call.args[0] if call.args else None
    for keyword in call.keywords:
        if keyword.arg in _NAME_KEYWORDS:
            candidate = keyword.value
    if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
        return candidate.value
    return None


def _register_calls(ctx: "FileContext") -> Iterator[tuple[ast.Call, str, str]]:
    """Yield (call, registry function name, registered string name) triples."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        bare = func.id if isinstance(func, ast.Name) else func.attr if isinstance(func, ast.Attribute) else None
        if bare is None or not bare.startswith("register_"):
            continue
        name = _registered_name(node)
        if name is not None:
            yield node, bare, name


@register_rule(
    "RPL007",
    name="registry-hygiene",
    summary="unexplained side-effect import or duplicate registration name",
    rationale=(
        "import-time registries depend on noqa'd imports that say why they "
        "exist, and on names being unique across the whole project"
    ),
)
class RegistryHygieneRule(Rule):
    """Check side-effect imports per file and registration names project-wide."""

    def check_file(self, ctx: "FileContext") -> Iterator["Finding"]:
        """Require explanation text after ``# noqa`` on import lines."""
        import_lines = {
            node.lineno
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.Import, ast.ImportFrom))
        }
        for lineno in sorted(import_lines):
            line = ctx.lines[lineno - 1] if lineno <= len(ctx.lines) else ""
            if _BARE_NOQA.search(line):
                yield from self._finding_at(
                    ctx,
                    lineno,
                    "side-effect import silenced with a bare noqa; say why it exists, "
                    'e.g. "# noqa: F401  (registers the four baselines)", or delete it',
                )

    def check_project(self, contexts: Iterable["FileContext"]) -> Iterator["Finding"]:
        """Flag the second (and later) registration of a duplicated name."""
        seen: dict[tuple[str, str], str] = {}
        for ctx in contexts:
            for call, registry, name in _register_calls(ctx):
                key = (registry, name)
                first = seen.get(key)
                if first is None:
                    seen[key] = f"{ctx.display_path}:{call.lineno}"
                else:
                    yield self.finding(
                        ctx,
                        call,
                        f"{registry}({name!r}) also registered at {first}; registry names "
                        "must be unique or import order decides which wins",
                    )

    def _finding_at(self, ctx: "FileContext", lineno: int, message: str) -> Iterator["Finding"]:
        from repro.analysis.findings import Finding

        yield Finding(
            path=ctx.display_path,
            line=lineno,
            column=0,
            code=self.spec.code,
            message=message,
            symbol=self.spec.name,
        )
