"""RPL003 — pickle-safety of executor task dataclasses.

Everything dispatched through an :class:`repro.engine.base.Executor`
must survive a round-trip through ``pickle`` or the process executor
dies at fan-out time — on exactly the configurations the serial CI legs
never exercise.  This rule inspects every class deriving from
``ClientTask`` and flags fields that cannot pickle: lambdas as
defaults, open file handles, thread locks and live generator/iterator
objects in the annotations.

``default_factory=lambda: ...`` is fine (only the *result* is stored on
the instance); a field whose default *is* a lambda is not.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.registry import Rule, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import FileContext
    from repro.analysis.findings import Finding

#: annotations naming objects that cannot cross a process boundary
_FORBIDDEN_TYPES = {
    "typing.Generator",
    "typing.Iterator",
    "typing.IO",
    "typing.TextIO",
    "typing.BinaryIO",
    "collections.abc.Generator",
    "collections.abc.Iterator",
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.Event",
    "threading.Thread",
    "io.TextIOWrapper",
    "io.BufferedReader",
    "io.BufferedWriter",
}

#: the same names spelled bare (``from typing import Iterator``)
_FORBIDDEN_BARE = {
    "Generator",
    "Iterator",
    "IO",
    "TextIO",
    "BinaryIO",
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "Event",
    "Thread",
    "TextIOWrapper",
    "BufferedReader",
    "BufferedWriter",
}

#: default-value calls that produce unpicklable objects
_FORBIDDEN_CALLS = {"open", "threading.Lock", "threading.RLock", "threading.Condition", "threading.Event"}


def _is_task_class(node: ast.ClassDef, task_bases: set[str]) -> bool:
    for base in node.bases:
        if isinstance(base, ast.Name) and base.id in task_bases:
            return True
        if isinstance(base, ast.Attribute) and base.attr in task_bases:
            return True
    return False


@register_rule(
    "RPL003",
    name="unpicklable-task-field",
    summary="executor task dataclass field that cannot cross a process boundary",
    rationale=(
        "tasks fan out through thread AND process executors; a lambda, lock, "
        "file handle or generator field only fails on the process leg"
    ),
)
class UnpicklableTaskFieldRule(Rule):
    """Flag unpicklable fields on classes deriving from ``ClientTask``."""

    def check_file(self, ctx: "FileContext") -> Iterator["Finding"]:
        """Walk task subclasses; vet each field annotation and default."""
        # transitive within the file: a class deriving from a local task
        # subclass is itself a task class
        task_bases = {"ClientTask"}
        changed = True
        class_defs = [node for node in ast.walk(ctx.tree) if isinstance(node, ast.ClassDef)]
        while changed:
            changed = False
            for node in class_defs:
                if node.name not in task_bases and _is_task_class(node, task_bases):
                    task_bases.add(node.name)
                    changed = True
        for node in class_defs:
            if not _is_task_class(node, task_bases):
                continue
            yield from self._check_fields(ctx, node)

    def _check_fields(self, ctx: "FileContext", class_def: ast.ClassDef) -> Iterator["Finding"]:
        for statement in class_def.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
                name = statement.target.id
                yield from self._check_annotation(ctx, class_def, name, statement.annotation)
                if statement.value is not None:
                    yield from self._check_default(ctx, class_def, name, statement.value)
            elif isinstance(statement, ast.Assign) and len(statement.targets) == 1 and isinstance(
                statement.targets[0], ast.Name
            ):
                yield from self._check_default(ctx, class_def, statement.targets[0].id, statement.value)

    def _check_annotation(
        self, ctx: "FileContext", class_def: ast.ClassDef, field_name: str, annotation: ast.AST
    ) -> Iterator["Finding"]:
        for node in ast.walk(annotation):
            resolved = None
            if isinstance(node, (ast.Name, ast.Attribute)):
                resolved = ctx.resolve(node)
            if resolved is None:
                continue
            bare = resolved.rsplit(".", 1)[-1]
            if resolved in _FORBIDDEN_TYPES or (resolved == bare and bare in _FORBIDDEN_BARE):
                yield self.finding(
                    ctx,
                    node,
                    f"task {class_def.name}.{field_name} is annotated {resolved}, which "
                    "cannot pickle to a worker process; carry plain data and rebuild "
                    "the live object inside run()",
                )
                return

    def _check_default(
        self, ctx: "FileContext", class_def: ast.ClassDef, field_name: str, value: ast.AST
    ) -> Iterator["Finding"]:
        if isinstance(value, ast.Lambda):
            yield self.finding(
                ctx,
                value,
                f"task {class_def.name}.{field_name} defaults to a lambda; lambdas "
                "cannot pickle — use a module-level function (default_factory is fine)",
            )
            return
        if isinstance(value, ast.Call):
            resolved = ctx.resolve_call(value)
            if resolved in _FORBIDDEN_CALLS:
                yield self.finding(
                    ctx,
                    value,
                    f"task {class_def.name}.{field_name} defaults to {resolved}(), an "
                    "unpicklable live resource; open it inside run() on the worker",
                )
