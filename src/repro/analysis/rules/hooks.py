"""RPL008 — callback ordering: ``on_checkpoint`` closes the round.

The callback contract (:mod:`repro.api.callbacks`) promises that when
``on_checkpoint`` fires, the round record it receives is final — the
:class:`repro.store.runstore.RunRecorder` persists exactly what it is
handed, and resume replays exactly what was persisted.  A driver that
calls ``on_round_end`` or ``on_evaluate`` *after* ``on_checkpoint`` in
the same function hands durable storage a stale record: the resumed
run then diverges from the original, failing resume parity in a way no
unit test of either callback alone can see.

``on_fit_end`` is exempt — it is the run-level epilogue, defined to
fire after the last checkpoint.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.registry import Rule, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import FileContext
    from repro.analysis.findings import Finding

#: round-scoped hooks that must precede the round's checkpoint
_ROUND_HOOKS = {"on_round_start", "on_evaluate", "on_round_end"}

_CHECKPOINT = "on_checkpoint"


@register_rule(
    "RPL008",
    name="checkpoint-not-last",
    summary="round hook invoked after on_checkpoint in the same driver function",
    rationale=(
        "on_checkpoint persists the record as final; any round hook after it "
        "mutates state durable storage already wrote, breaking resume parity"
    ),
)
class CheckpointNotLastRule(Rule):
    """Flag round-hook calls textually after an ``on_checkpoint`` call."""

    def check_file(self, ctx: "FileContext") -> Iterator["Finding"]:
        """Per function, compare hook call positions against the last checkpoint."""
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            checkpoint_lines: list[int] = []
            round_hook_calls: list[tuple[ast.Call, str]] = []
            for node in ast.walk(func):
                if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr == _CHECKPOINT:
                    checkpoint_lines.append(node.lineno)
                elif node.func.attr in _ROUND_HOOKS:
                    round_hook_calls.append((node, node.func.attr))
            if not checkpoint_lines:
                continue
            last_checkpoint = max(checkpoint_lines)
            for call, hook in round_hook_calls:
                if call.lineno > last_checkpoint:
                    yield self.finding(
                        ctx,
                        call,
                        f"{hook}() runs after on_checkpoint (line {last_checkpoint}) in "
                        f"{func.name}(); the persisted record is already final — move the "
                        "hook before the checkpoint or re-fire on_checkpoint after it",
                    )
