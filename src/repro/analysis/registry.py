"""The rule registry: every reprolint rule self-describes itself.

Rules register with the :func:`register_rule` decorator — the same
import-time registration idiom as the algorithm registry
(:mod:`repro.api.registry`) and the scenario registry
(:mod:`repro.sim.scenario`): adding a rule is one decorated class in
:mod:`repro.analysis.rules`, no engine edits.  Each registration binds a
:class:`RuleSpec` carrying the rule's code, symbol, one-line summary,
the *rationale* (which runtime guarantee the rule proves statically) and
its path scopes, so the CLI's rule catalogue and the docs render straight
from the registry.

A rule class implements ``check_file(ctx)`` yielding
:class:`~repro.analysis.findings.Finding` objects for one parsed file,
and may implement ``check_project(contexts)`` for cross-file invariants
(e.g. duplicate registration names).  The engine instantiates one rule
object per lint invocation, so rules may accumulate per-run state.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import FileContext
    from repro.analysis.findings import Finding

__all__ = [
    "Rule",
    "RuleSpec",
    "register_rule",
    "unregister_rule",
    "get_rule",
    "available_rules",
    "ensure_builtin_rules",
]

_CODE_PATTERN = re.compile(r"^RPL\d{3}$")


class Rule:
    """Base class of every lint rule; both check hooks default to nothing."""

    #: bound by the registry at registration time
    spec: "RuleSpec"

    def check_file(self, ctx: "FileContext") -> Iterable["Finding"]:
        """Yield findings for one parsed file (already scope-filtered)."""
        return ()

    def check_project(self, contexts: "list[FileContext]") -> Iterable["Finding"]:
        """Yield cross-file findings once, after every file was visited.

        ``contexts`` holds only the files within the rule's scope; rules
        with purely local reasoning never override this.
        """
        return ()

    def finding(
        self, ctx: "FileContext", node, message: str
    ) -> "Finding":
        """Build a :class:`Finding` for an ast node in ``ctx`` (convenience)."""
        from repro.analysis.findings import Finding

        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", 0),
            code=self.spec.code,
            message=message,
            symbol=self.spec.name,
        )


@dataclass(frozen=True)
class RuleSpec:
    """A registered rule plus the metadata the catalogue and docs render."""

    #: rule code (``RPL`` + three digits)
    code: str
    #: short kebab-case symbol, e.g. ``"global-rng"``
    name: str
    #: one-line description of what the rule flags
    summary: str
    #: the runtime guarantee this rule proves at the AST level
    rationale: str = ""
    #: path fragments the rule applies to (empty = every linted file);
    #: a fragment matches when it appears as a contiguous path-segment
    #: sequence, e.g. ``"repro/nn"`` matches ``src/repro/nn/functional.py``
    scopes: tuple[str, ...] = ()
    #: path fragments exempt from the rule (sanctioned plumbing)
    exempt: tuple[str, ...] = ()
    #: the registered rule class (instantiated once per lint invocation)
    factory: Callable[[], Rule] = field(default=Rule, repr=False)

    def build(self) -> Rule:
        """Instantiate the rule and bind this spec onto it."""
        rule = self.factory()
        rule.spec = self
        return rule


_RULES: dict[str, RuleSpec] = {}


def register_rule(
    code: str,
    *,
    name: str,
    summary: str,
    rationale: str = "",
    scopes: tuple[str, ...] = (),
    exempt: tuple[str, ...] = (),
) -> Callable[[type], type]:
    """Class decorator that registers a lint rule under ``code``."""
    if not _CODE_PATTERN.match(code):
        raise ValueError(f"rule code must match RPLxxx, got {code!r}")

    def decorator(factory: type) -> type:
        existing = _RULES.get(code)
        if existing is not None and existing.factory is not factory:
            raise ValueError(f"rule {code!r} is already registered ({existing.factory!r})")
        clashing = next((spec for spec in _RULES.values() if spec.name == name and spec.code != code), None)
        if clashing is not None:
            raise ValueError(f"rule symbol {name!r} is already taken by {clashing.code}")
        _RULES[code] = RuleSpec(
            code=code,
            name=name,
            summary=summary,
            rationale=rationale,
            scopes=tuple(scopes),
            exempt=tuple(exempt),
            factory=factory,
        )
        return factory

    return decorator


def unregister_rule(code: str) -> None:
    """Remove a registration (plugin teardown / tests); unknown codes are a no-op."""
    _RULES.pop(code, None)


def ensure_builtin_rules() -> None:
    """Import the modules whose decorators register the shipped rules."""
    import repro.analysis.rules  # noqa: F401  (registers the eight RPL rules)


def available_rules() -> tuple[RuleSpec, ...]:
    """All registered rule specs, sorted by code."""
    ensure_builtin_rules()
    return tuple(_RULES[code] for code in sorted(_RULES))


def get_rule(code: str) -> RuleSpec:
    """Look up a registered rule; unknown codes list every valid one."""
    ensure_builtin_rules()
    try:
        return _RULES[code]
    except KeyError:
        raise KeyError(
            f"unknown rule {code!r}; registered: {', '.join(spec.code for spec in available_rules())}"
        ) from None


def iter_rules(codes: Iterable[str] | None = None) -> Iterator[RuleSpec]:
    """The specs for ``codes`` (or every registered rule when ``None``)."""
    if codes is None:
        yield from available_rules()
        return
    for code in codes:
        yield get_rule(code)
