"""The ``repro lint`` entry point: arguments in, exit code out.

Exit codes follow the repo-wide CLI convention: ``0`` clean, ``1``
findings (or — under ``--strict`` — stale baseline entries), ``2``
usage errors such as a nonexistent path or an unknown rule code.  The
argparse flags themselves live in :mod:`repro.api.cli` next to every
other subcommand so ``repro --help`` stays the single source of truth.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline, BaselineMatch
from repro.analysis.engine import lint_paths
from repro.analysis.registry import available_rules, ensure_builtin_rules
from repro.analysis.report import render_json, render_text
from repro.store.objects import write_atomic

__all__ = ["run_lint"]


def _print_rules() -> int:
    ensure_builtin_rules()
    for spec in available_rules():
        scopes = f"  [scopes: {', '.join(spec.scopes)}]" if spec.scopes else ""
        print(f"{spec.code}  {spec.name:<24} {spec.summary}{scopes}")
    return 0


def _resolve_baseline(args: argparse.Namespace, root: Path) -> Path | None:
    if getattr(args, "no_baseline", False):
        return None
    if args.baseline is not None:
        path = Path(args.baseline)
        if not path.exists():
            raise OSError(f"baseline file does not exist: {path}")
        return path
    default = root / DEFAULT_BASELINE_NAME
    return default if default.exists() else None


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` with parsed arguments; return the exit code."""
    if getattr(args, "list_rules", False):
        return _print_rules()

    root = Path.cwd()
    rules = args.rules.split(",") if getattr(args, "rules", None) else None
    result = lint_paths(args.paths, rules=rules, relative_to=root)

    baseline_path = _resolve_baseline(args, root)
    if getattr(args, "write_baseline", False):
        target = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
        Baseline.from_findings(result.findings).save(target)
        print(f"wrote {len(result.findings)} entr{'y' if len(result.findings) == 1 else 'ies'} to {target}")
        return 0

    if baseline_path is not None:
        match = Baseline.load(baseline_path).match(result.findings)
    else:
        match = BaselineMatch(new=list(result.findings))

    if args.format == "json":
        rendered = render_json(result, match)
    else:
        rendered = render_text(result, match)
    if getattr(args, "output", None):
        write_atomic(Path(args.output), rendered)
        print(f"report written to {args.output}", file=sys.stderr)
    if args.format == "json" and not getattr(args, "output", None):
        print(rendered, end="")
    elif args.format != "json":
        print(rendered, end="")

    if match.new:
        return 1
    if match.stale and getattr(args, "strict", False):
        return 1
    return 0
