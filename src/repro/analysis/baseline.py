"""The committed findings baseline: grandfathered, not forgotten.

Some findings are intentional (per-process caches the rules flag by
design); the baseline file — ``reprolint_baseline.json`` at the repo
root — records them so ``repro lint`` stays actionable: a clean run
means *zero findings that are not explicitly accounted for*.

Matching is a multiset over :meth:`Finding.fingerprint` — ``(code,
path, message)``, deliberately excluding line numbers so unrelated
edits to a file do not invalidate its entries.  Drift fails in *both*
directions: a new finding is a regression, and a baseline entry that no
longer matches anything is stale and must be removed — the baseline
can only shrink through honest cleanup, never rot silently.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.store.objects import write_atomic

__all__ = ["Baseline", "BaselineMatch", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "reprolint_baseline.json"

_SCHEMA_VERSION = 1


@dataclass
class BaselineMatch:
    """The three-way split of a lint run against a baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    #: entries in the baseline that matched no current finding
    stale: list[dict[str, object]] = field(default_factory=list)


@dataclass
class Baseline:
    """The grandfathered findings, as (code, path, message) fingerprints."""

    entries: list[dict[str, object]] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; reject unknown schema versions."""
        payload = json.loads(path.read_text(encoding="utf-8"))
        version = payload.get("schema_version")
        if version != _SCHEMA_VERSION:
            raise ValueError(f"unsupported baseline schema_version {version!r} in {path}")
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise ValueError(f"baseline {path} has no entry list")
        for entry in entries:
            missing = {"code", "path", "message"} - set(entry)
            if missing:
                raise ValueError(f"baseline entry missing keys {sorted(missing)} in {path}")
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Build a baseline covering every given finding (line kept as advisory)."""
        entries = [
            {
                "code": finding.code,
                "path": finding.path,
                "message": finding.message,
                "line": finding.line,
            }
            for finding in sorted(findings)
        ]
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        """Persist atomically with a stable key order for reviewable diffs."""
        payload = {
            "schema_version": _SCHEMA_VERSION,
            "tool": "reprolint",
            "entries": self.entries,
        }
        write_atomic(path, (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8"))

    def match(self, findings: Sequence[Finding]) -> BaselineMatch:
        """Split ``findings`` into new vs baselined; report stale entries.

        Multiset semantics: two identical findings need two baseline
        entries, so dropping one of a pair still registers as progress
        (one stale entry) rather than being absorbed.
        """
        budget = Counter(
            (str(entry["code"]), str(entry["path"]), str(entry["message"])) for entry in self.entries
        )
        match = BaselineMatch()
        for finding in findings:
            key = finding.fingerprint()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                match.baselined.append(finding)
            else:
                match.new.append(finding)
        remaining = Counter(budget)
        for entry in self.entries:
            key = (str(entry["code"]), str(entry["path"]), str(entry["message"]))
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                match.stale.append(entry)
        return match
