"""Per-file lint context: parsed tree, import aliases and suppressions.

A :class:`FileContext` is built once per file and shared by every rule,
so the file is read, parsed and its imports resolved exactly once.  The
central service is :meth:`FileContext.resolve` — mapping an ast
expression like ``np.random.shuffle`` (under ``import numpy as np``)
to the canonical dotted name ``numpy.random.shuffle`` — which is what
lets rules reason about *what is called* rather than what it happens to
be spelled like in one file.

Inline suppressions use the ``# reprolint: disable=RPL001`` comment on
the offending line (several codes comma-separated).  Suppressed
findings are dropped from the report but counted, so a clean run still
shows how much was waved through.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

__all__ = ["FileContext", "path_matches"]

_SUPPRESSION = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9,\s]+)")


def path_matches(path: str, fragment: str) -> bool:
    """True when ``fragment`` occurs as a contiguous segment sequence of ``path``.

    ``"repro/nn"`` matches ``src/repro/nn/functional.py`` but not
    ``src/repro/nnext/x.py``; a fragment naming a file matches that file
    exactly (``"repro/engine/rng.py"``).
    """
    haystack = "/" + path.strip("/") + "/"
    needle = "/" + fragment.strip("/") + "/"
    if needle in haystack:
        return True
    return haystack.rstrip("/").endswith(needle.rstrip("/"))


class FileContext:
    """Everything the rules need to know about one parsed source file."""

    def __init__(self, path: Path, display_path: str, source: str, tree: ast.Module):
        self.path = path
        #: posix path reported in findings (relative to the lint root)
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: local name -> canonical dotted name, built from every import
        self.aliases = self._collect_aliases(tree)
        #: 1-based line -> set of rule codes disabled on that line
        self.suppressions = self._collect_suppressions(self.lines)

    # -- imports ------------------------------------------------------------------------
    @staticmethod
    def _collect_aliases(tree: ast.Module) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".", 1)[0]
                    target = name.name if name.asname else name.name.split(".", 1)[0]
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                module = ("." * node.level) + (node.module or "")
                for name in node.names:
                    if name.name == "*":
                        continue
                    local = name.asname or name.name
                    aliases[local] = f"{module}.{name.name}" if module else name.name
        return aliases

    def resolve(self, node: ast.AST) -> str | None:
        """The canonical dotted name of an expression, or ``None``.

        ``Name`` nodes resolve through the import aliases and fall back
        to their own identifier (so builtins like ``open`` resolve to
        ``"open"``); ``Attribute`` chains resolve their base name the
        same way and refuse chains rooted in non-imported objects
        (``self.rng.shuffle`` resolves to ``None``, not a false match).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            if parts:  # attribute chain on a plain local object: unknowable
                return None
            return node.id
        return ".".join([base, *reversed(parts)])

    def resolve_call(self, call: ast.Call) -> str | None:
        """The canonical dotted name of a call's callee, or ``None``."""
        return self.resolve(call.func)

    # -- suppressions -------------------------------------------------------------------
    @staticmethod
    def _collect_suppressions(lines: list[str]) -> dict[int, set[str]]:
        suppressions: dict[int, set[str]] = {}
        for index, line in enumerate(lines, start=1):
            match = _SUPPRESSION.search(line)
            if match is None:
                continue
            codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
            if codes:
                suppressions[index] = codes
        return suppressions

    def is_suppressed(self, code: str, line: int) -> bool:
        """True when ``code`` is disabled on ``line`` by an inline comment."""
        return code in self.suppressions.get(line, ())
