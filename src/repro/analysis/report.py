"""Rendering lint results: human text and schema-stable JSON.

The JSON document is a published interface — CI uploads it as an
artifact and downstream tooling parses it — so its shape is versioned
(``REPORT_SCHEMA_VERSION``) and locked by tests.  Fields are only ever
added, never renamed or removed, without a version bump.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import TYPE_CHECKING, Sequence

from repro.analysis.registry import available_rules

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.baseline import BaselineMatch
    from repro.analysis.engine import LintResult
    from repro.analysis.findings import Finding

__all__ = ["REPORT_SCHEMA_VERSION", "render_json", "render_text"]

REPORT_SCHEMA_VERSION = 1


def _finding_payload(finding: "Finding", baselined: bool) -> dict[str, object]:
    return {
        "code": finding.code,
        "symbol": finding.symbol,
        "path": finding.path,
        "line": finding.line,
        "column": finding.column,
        "message": finding.message,
        "baselined": baselined,
    }


def render_json(result: "LintResult", match: "BaselineMatch") -> str:
    """The versioned JSON report (see docs/guides/lint.md for the schema)."""
    baselined_budget = Counter(finding.fingerprint() for finding in match.baselined)
    findings = []
    for finding in result.findings:
        baselined = baselined_budget.get(finding.fingerprint(), 0) > 0
        if baselined:
            baselined_budget[finding.fingerprint()] -= 1
        findings.append(_finding_payload(finding, baselined))
    rule_counts: dict[str, int] = {}
    for finding in match.new:
        rule_counts[finding.code] = rule_counts.get(finding.code, 0) + 1
    document = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "tool": "reprolint",
        "summary": {
            "files_scanned": result.files_scanned,
            "findings": len(match.new),
            "baselined": len(match.baselined),
            "suppressed": result.suppressed,
            "stale_baseline": len(match.stale),
            "clean": not match.new and not match.stale,
        },
        "rules": [
            {
                "code": spec.code,
                "name": spec.name,
                "summary": spec.summary,
                "scopes": list(spec.scopes),
                "findings": rule_counts.get(spec.code, 0),
            }
            for spec in available_rules()
        ],
        "findings": findings,
        "stale_baseline": list(match.stale),
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"


def _text_lines(findings: Sequence["Finding"], tag: str) -> list[str]:
    return [f"{finding.location()}: {finding.code} [{finding.symbol}]{tag} {finding.message}" for finding in findings]


def render_text(result: "LintResult", match: "BaselineMatch", *, show_baselined: bool = False) -> str:
    """The human report: one line per finding, then a one-line summary."""
    lines = _text_lines(match.new, "")
    if show_baselined and match.baselined:
        lines += _text_lines(match.baselined, " (baselined)")
    for entry in match.stale:
        lines.append(
            f"{entry['path']}: stale baseline entry for {entry['code']} "
            f"({str(entry['message'])[:60]}...) — remove it from the baseline"
        )
    summary = (
        f"{result.files_scanned} files scanned: {len(match.new)} finding(s), "
        f"{len(match.baselined)} baselined, {result.suppressed} suppressed, "
        f"{len(match.stale)} stale baseline entr{'y' if len(match.stale) == 1 else 'ies'}"
    )
    if not match.new and not match.stale:
        summary += " — clean"
    lines.append(summary)
    return "\n".join(lines) + "\n"
