"""The unit of lint output: one :class:`Finding` per rule violation.

A finding pins a rule code to a file position and carries the
human-readable message plus the rule's short symbol.  Findings are
value objects: hashable, totally ordered by location (so reports and
baselines are deterministic) and strictly JSON round-trippable via
:meth:`Finding.to_dict` / :meth:`Finding.from_dict` — the same
contract every config dataclass in this repository honours (and that
rule ``RPL004`` enforces).

Baselines match findings on their :meth:`Finding.fingerprint` —
``(code, path, message)``, deliberately excluding the line number so
unrelated edits to a baselined file do not invalidate its grandfathered
entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.serialization import checked_payload

__all__ = ["Finding", "PARSE_ERROR_CODE"]

#: pseudo-rule code attached to files the engine cannot parse
PARSE_ERROR_CODE = "RPL000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source position."""

    #: posix path of the offending file (relative to the lint root)
    path: str
    #: 1-based source line
    line: int
    #: 0-based column (ast convention)
    column: int
    #: rule code, e.g. ``"RPL001"``
    code: str
    #: human-readable explanation of the violation
    message: str
    #: the rule's short kebab-case symbol, e.g. ``"global-rng"``
    symbol: str = ""

    def location(self) -> str:
        """``path:line:column`` — the clickable anchor used in text output."""
        return f"{self.path}:{self.line}:{self.column}"

    def fingerprint(self) -> tuple[str, str, str]:
        """The baseline identity ``(code, path, message)``.

        Line and column are excluded on purpose: a baselined finding
        survives unrelated edits that shift it around the file.
        """
        return (self.code, self.path, self.message)

    def to_dict(self) -> dict:
        """JSON-friendly representation; round-trips through :meth:`from_dict`."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "message": self.message,
            "symbol": self.symbol,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Finding":
        """Strict reconstruction of :meth:`to_dict` output (unknown keys raise)."""
        data = checked_payload(cls, payload)
        for key in ("path", "code", "message"):
            if key not in data:
                raise ValueError(f"Finding payload is missing required key {key!r}")
        return cls(
            path=str(data["path"]),
            line=int(data.get("line", 0)),
            column=int(data.get("column", 0)),
            code=str(data["code"]),
            message=str(data["message"]),
            symbol=str(data.get("symbol", "")),
        )
