"""repro.analysis — *reprolint*, the determinism & invariant linter.

A plugin-based static-analysis framework purpose-built for this
repository's invariants: the rules encode guarantees the runtime parity
suites can only spot-check — sanctioned randomness (RPL001), dtype
discipline (RPL002), pickle-safe executor tasks (RPL003), strict
serialization pairing (RPL004), shared-state hygiene (RPL005), atomic
store writes (RPL006), registry hygiene (RPL007) and callback ordering
(RPL008).

Rules register via the same decorator idiom as algorithms and
scenarios (:func:`register_rule`); :func:`lint_paths` drives a run;
``repro lint`` is the CLI face.  See ``docs/guides/lint.md``.
"""

from repro.analysis.baseline import Baseline, BaselineMatch
from repro.analysis.engine import LintResult, lint_paths
from repro.analysis.findings import PARSE_ERROR_CODE, Finding
from repro.analysis.registry import (
    Rule,
    RuleSpec,
    available_rules,
    ensure_builtin_rules,
    get_rule,
    register_rule,
    unregister_rule,
)

__all__ = [
    "Baseline",
    "BaselineMatch",
    "Finding",
    "LintResult",
    "PARSE_ERROR_CODE",
    "Rule",
    "RuleSpec",
    "available_rules",
    "ensure_builtin_rules",
    "get_rule",
    "lint_paths",
    "register_rule",
    "unregister_rule",
]
