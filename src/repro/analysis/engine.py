"""The lint driver: collect files, build contexts, run every rule.

:func:`lint_paths` is the single entry point both the CLI and the tests
use.  It expands the given paths to ``.py`` files, parses each once
into a shared :class:`repro.analysis.context.FileContext`, runs every
selected rule's per-file pass and then the project-wide passes, applies
inline suppressions and scope/exempt filters, and returns a
:class:`LintResult` with deterministically sorted findings.

Unreadable syntax is not swallowed: a file that fails to parse yields a
synthetic ``RPL000`` finding so a broken file can never make the lint
look cleaner than the code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.context import FileContext, path_matches
from repro.analysis.findings import PARSE_ERROR_CODE, Finding
from repro.analysis.registry import Rule, ensure_builtin_rules, iter_rules

__all__ = ["LintResult", "lint_paths"]


@dataclass
class LintResult:
    """Everything one lint run produced.

    ``findings`` is the reportable list (already filtered for scope and
    inline suppressions); ``suppressed`` counts findings waved through
    by inline comments so a clean run still shows what it ignored.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        """True when no reportable findings remain."""
        return not self.findings


def _collect_files(paths: Sequence[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(f"lint path does not exist: {path}")
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(part == "__pycache__" or part.startswith(".") for part in parts):
                continue
            files.append(candidate)
    # dedupe while keeping deterministic order
    unique: dict[Path, None] = {}
    for file in files:
        unique[file.resolve()] = None
    return list(unique)


def _display_path(file: Path, relative_to: Path | None) -> str:
    if relative_to is not None:
        try:
            return file.relative_to(relative_to.resolve()).as_posix()
        except ValueError:
            pass
    return file.as_posix()


def _rule_applies(rule: Rule, display_path: str) -> bool:
    spec = rule.spec
    if any(path_matches(display_path, fragment) for fragment in spec.exempt):
        return False
    if spec.scopes:
        return any(path_matches(display_path, fragment) for fragment in spec.scopes)
    return True


def lint_paths(
    paths: Iterable[Path | str],
    *,
    rules: Sequence[str] | None = None,
    relative_to: Path | str | None = None,
) -> LintResult:
    """Lint ``paths`` (files or directory trees) with the selected rules.

    ``rules`` narrows the run to specific codes (default: all registered
    rules); ``relative_to`` controls how paths are spelled in findings —
    pass the repo root so findings and baseline entries stay portable
    across checkouts.  Missing paths raise :class:`FileNotFoundError`,
    which the CLI maps to a usage error (exit 2).
    """
    ensure_builtin_rules()
    active_rules = [spec.build() for spec in iter_rules(rules)]
    root = Path(relative_to).resolve() if relative_to is not None else None
    files = _collect_files([Path(p) for p in paths])

    result = LintResult(files_scanned=len(files))
    contexts: list[FileContext] = []
    raw: list[tuple[Finding, FileContext | None]] = []

    for file in files:
        display = _display_path(file, root)
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as error:
            raw.append(
                (
                    Finding(
                        path=display,
                        line=error.lineno or 1,
                        column=(error.offset or 1) - 1,
                        code=PARSE_ERROR_CODE,
                        message=f"file does not parse: {error.msg}",
                        symbol="parse-error",
                    ),
                    None,
                )
            )
            continue
        ctx = FileContext(file, display, source, tree)
        contexts.append(ctx)
        for rule in active_rules:
            if not _rule_applies(rule, display):
                continue
            for finding in rule.check_file(ctx):
                raw.append((finding, ctx))

    for rule in active_rules:
        scoped = [ctx for ctx in contexts if _rule_applies(rule, ctx.display_path)]
        by_path = {ctx.display_path: ctx for ctx in scoped}
        for finding in rule.check_project(scoped):
            raw.append((finding, by_path.get(finding.path)))

    for finding, ctx in raw:
        if ctx is not None and ctx.is_suppressed(finding.code, finding.line):
            result.suppressed += 1
            continue
        result.findings.append(finding)

    result.findings.sort()
    return result
