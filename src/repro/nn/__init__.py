"""A minimal-but-complete deep-learning framework on top of numpy.

This package is the training substrate for the AdaptiveFL reproduction.  It
provides:

* a :class:`~repro.nn.module.Module` system with named parameters, buffers
  and a ``state_dict`` API (the interface the federated-learning code
  aggregates over),
* convolutional / batch-norm / pooling / linear layers with full backward
  passes (``repro.nn.layers``),
* losses (cross-entropy, KL divergence for ScaleFL's self-distillation),
* an SGD optimizer with momentum and weight decay,
* parameter and FLOP counting (``repro.nn.profiling``) used to reproduce
  Table 1 of the paper,
* a zoo of *slimmable* architectures (VGG16, ResNet18, MobileNetV2-lite and
  a small FEMNIST CNN) under ``repro.nn.models``.

The framework intentionally mirrors a small subset of the PyTorch API
(``forward``, ``state_dict``, ``load_state_dict``, ``parameters``) so the
federated-learning layers read like their PyTorch/Flower counterparts.
"""

from repro.nn.module import Module, Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.losses import CrossEntropyLoss, KLDivergenceLoss
from repro.nn.optim import SGD, ConstantLR, StepLR


def __getattr__(name: str):
    # lazy: repro.perf.flops traces layer types from this package, so an
    # eager import here would be circular
    if name in {"count_flops", "count_params", "FlopReport"}:
        from repro.perf import flops

        return getattr(flops, name)
    raise AttributeError(f"module 'repro.nn' has no attribute {name!r}")

__all__ = [
    "Module",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "CrossEntropyLoss",
    "KLDivergenceLoss",
    "SGD",
    "ConstantLR",
    "StepLR",
    "count_params",
    "count_flops",
]
