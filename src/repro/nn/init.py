"""Weight initialisation helpers.

All initialisers take an explicit :class:`numpy.random.Generator` so model
construction is fully deterministic given a seed — a requirement for
reproducible federated-learning experiments where every client must start
from the identical global model.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.dtype import resolve_dtype

__all__ = [
    "kaiming_uniform",
    "kaiming_normal",
    "xavier_uniform",
    "zeros",
    "ones",
    "uniform_bias",
]


def _fan_in_fan_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute fan-in / fan-out for a weight tensor.

    Linear weights are ``(out, in)``; conv weights are
    ``(out, in, kh, kw)`` where the receptive-field size multiplies both
    fans.
    """
    if len(shape) < 2:
        raise ValueError(f"fan computation requires >=2 dims, got shape {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, a: float = math.sqrt(5)) -> np.ndarray:
    """He/Kaiming uniform initialisation (PyTorch's default for conv/linear)."""
    fan_in, _ = _fan_in_fan_out(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(resolve_dtype())


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialisation (fan-in mode, ReLU gain)."""
    fan_in, _ = _fan_in_fan_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype())


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(resolve_dtype())


def uniform_bias(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style bias initialisation: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = 1.0 / math.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(resolve_dtype())


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero tensor (stack dtype)."""
    return np.zeros(shape, dtype=resolve_dtype())


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-one tensor (stack dtype)."""
    return np.ones(shape, dtype=resolve_dtype())
