"""Optimizers and learning-rate schedules.

The paper trains every method with SGD (lr=0.01, momentum=0.5), so SGD with
momentum and optional weight decay is the only optimizer the reproduction
needs; schedules are provided for ablation convenience.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter

__all__ = ["SGD", "ConstantLR", "StepLR", "CosineLR"]


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        # one flat scratch buffer, viewed per parameter shape, makes the
        # whole update allocation-free (fused in-place SGD + momentum)
        max_size = max(p.size for p in self.parameters)
        max_itemsize = max(p.data.dtype.itemsize for p in self.parameters)
        self._scratch = np.empty(max_size * max_itemsize, dtype=np.uint8)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def _scratch_view(self, param) -> np.ndarray:
        nbytes = param.size * param.data.dtype.itemsize
        return self._scratch[:nbytes].view(param.data.dtype).reshape(param.data.shape)

    def step(self) -> None:
        lr = self.lr
        for param, velocity in zip(self.parameters, self._velocity):
            scratch = self._scratch_view(param)
            if self.weight_decay:
                # temp-free weight decay into scratch; param.grad itself is
                # never mutated (callers may read it after step())
                np.multiply(param.data, self.weight_decay, out=scratch, casting="unsafe")
                scratch += param.grad
                effective_grad = scratch
            else:
                effective_grad = param.grad
            if self.momentum:
                velocity *= self.momentum
                velocity += effective_grad
                update = velocity
            else:
                update = effective_grad
            # in place is fine even when update aliases scratch
            np.multiply(update, lr, out=scratch, casting="unsafe")
            param.data -= scratch


class ConstantLR:
    """A learning rate that never changes."""

    def __init__(self, lr: float):
        self.lr = lr

    def __call__(self, round_index: int) -> float:
        return self.lr


class StepLR:
    """Decay the learning rate by ``gamma`` every ``step_size`` rounds."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.lr = lr
        self.step_size = step_size
        self.gamma = gamma

    def __call__(self, round_index: int) -> float:
        return self.lr * (self.gamma ** (round_index // self.step_size))


class CosineLR:
    """Cosine annealing from ``lr`` to ``min_lr`` over ``total_rounds``."""

    def __init__(self, lr: float, total_rounds: int, min_lr: float = 0.0):
        if total_rounds <= 0:
            raise ValueError("total_rounds must be positive")
        self.lr = lr
        self.total_rounds = total_rounds
        self.min_lr = min_lr

    def __call__(self, round_index: int) -> float:
        progress = min(round_index, self.total_rounds) / self.total_rounds
        return self.min_lr + 0.5 * (self.lr - self.min_lr) * (1.0 + np.cos(np.pi * progress))
