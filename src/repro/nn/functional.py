"""Stateless numerical operations used by the layers.

The convolution is implemented with the classic im2col/col2im lowering so
both forward and backward passes are expressed as large matrix multiplies,
which is the only way to get acceptable throughput out of numpy.

Hot-path design (see ``repro.perf``):

* operations that need large per-batch intermediates (`im2col` columns,
  padded inputs, scatter targets) accept an optional
  :class:`repro.perf.workspace.Workspace` and write into reusable
  buffers instead of allocating per batch — conv/pool *modules* own one
  workspace each and pass it down;
* the fold/scatter adjoints (:func:`col2im`,
  :func:`maxpool2d_backward`) are vectorised over precomputed flat
  scatter indices (cached per geometry, shared process-wide) instead of
  Python ``kh×kw`` loops or 4-axis fancy indexing;
* 1×1 stride-1 unpadded convolutions skip the im2col lowering entirely
  and run as batched GEMMs on reshaped views — no column copy at all
  (the "contiguity-aware" fast path: the strides of an NCHW tensor
  already permit BLAS-friendly GEMM for pointwise kernels).

Reference implementations of the scatter adjoints
(:func:`col2im_reference`, :func:`maxpool2d_backward_reference`) are
kept for equivalence tests and microbenchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import resolve_dtype
from repro.perf.workspace import Workspace

__all__ = [
    "pad2d",
    "im2col",
    "col2im",
    "col2im_reference",
    "conv2d_forward",
    "conv2d_backward",
    "depthwise_conv2d_forward",
    "depthwise_conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "maxpool2d_backward_reference",
    "avgpool2d_forward",
    "avgpool2d_backward",
    "softmax",
    "log_softmax",
    "one_hot",
    "conv_output_size",
]

#: immutable precomputed scatter-index arrays, keyed by geometry.  Shared
#: process-wide (read-only after construction, so thread-safe) — worker
#: processes build a fresh model per task but pay for index construction
#: only once per conv/pool geometry.
_SCATTER_INDEX_CACHE: dict[tuple, np.ndarray] = {}


def _owned_or_fresh(ws: "Workspace | None") -> Workspace:
    """The caller's workspace, or a throwaway one for direct functional calls.

    ``ws=None`` must NOT share a process-wide workspace: two interleaved
    calls with the same geometry would alias one buffer and silently
    corrupt a cached ``cols`` between a forward and its backward.  A
    fresh workspace degrades to plain allocation, which is the historical
    (correct) behaviour for the bare functional API.
    """
    return ws if ws is not None else Workspace()


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a conv/pool along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size ({out}) for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def pad2d(x: np.ndarray, padding: int, ws: Workspace | None = None) -> np.ndarray:
    """Zero-pad the two trailing spatial dimensions of an NCHW tensor."""
    if padding == 0:
        return x
    if ws is None:
        return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    n, c, h, w = x.shape
    padded = ws.get(("pad2d", x.shape), (n, c, h + 2 * padding, w + 2 * padding), x.dtype)
    padded.fill(0)
    padded[:, :, padding:-padding, padding:-padding] = x
    return padded


def _patch_view(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Strided sliding-window view of shape (N, C, out_h, out_w, kh, kw)."""
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    s = x.strides
    shape = (n, c, out_h, out_w, kh, kw)
    strides = (s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3])
    return np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    ws: Workspace | None = None,
) -> tuple[np.ndarray, int, int]:
    """Unfold an NCHW tensor into per-sample column matrices.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has the batched
    "NC layout" ``(N, C * kh * kw, out_h * out_w)``: one C-contiguous
    strided gather into the (reusable) workspace buffer whose innermost
    copied axis is the full output row — far longer contiguous runs than
    the classic ``(N·P, C·k²)`` layout — and whose GEMMs
    (``weight @ cols``) produce *contiguous NCHW* outputs with no
    transposed views downstream.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    ws = _owned_or_fresh(ws)
    xp = pad2d(x, padding, ws)
    patches = _patch_view(xp, kh, kw, stride)

    cols = ws.get(
        ("im2col", x.shape, kh, kw, stride, padding), (n, c * kh * kw, out_h * out_w), x.dtype
    )
    # one strided gather: (N, C, oh, ow, kh, kw) -> (N, C, kh, kw, oh, ow)
    np.copyto(cols.reshape(n, c, kh, kw, out_h, out_w), patches.transpose(0, 1, 4, 5, 2, 3))
    return cols, out_h, out_w


def _col2im_indices(
    x_shape: tuple[int, int, int, int], kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    """Flat scatter indices mapping im2col column elements into the padded
    input, laid out exactly like ``cols.ravel()``: (N, C, kh, kw, oh, ow)."""
    key = ("col2im", x_shape, kh, kw, stride, padding)
    cached = _SCATTER_INDEX_CACHE.get(key)
    if cached is not None:
        return cached
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    oi = np.arange(out_h, dtype=np.intp)
    oj = np.arange(out_w, dtype=np.intp)
    ci = np.arange(c, dtype=np.intp)
    ki = np.arange(kh, dtype=np.intp)
    kj = np.arange(kw, dtype=np.intp)
    # rows/cols of each column element inside the padded frame,
    # iterated in (C, kh, kw, oh, ow) order to match the NC layout
    rows = oi[None, None, None, :, None] * stride + ki[None, :, None, None, None]
    cols = oj[None, None, None, None, :] * stride + kj[None, None, :, None, None]
    per_sample = (ci[:, None, None, None, None] * hp + rows) * wp + cols  # (c, kh, kw, oh, ow)
    per_sample = np.broadcast_to(per_sample, (c, kh, kw, out_h, out_w)).reshape(-1)
    offsets = np.arange(n, dtype=np.intp) * (c * hp * wp)
    indices = (offsets[:, None] + per_sample[None, :]).reshape(-1)
    _SCATTER_INDEX_CACHE[key] = indices
    return indices


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    ws: Workspace | None = None,
) -> np.ndarray:
    """Fold a column matrix back into an NCHW tensor, accumulating overlaps.

    This is the adjoint of :func:`im2col` (it produces the gradient with
    respect to the convolution input), vectorised as one flat
    ``np.add.at`` scatter over precomputed indices.
    """
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    ws = _owned_or_fresh(ws)
    indices = _col2im_indices(x_shape, kh, kw, stride, padding)
    xp = ws.zeros(("col2im", x_shape, kh, kw, stride, padding), (n * c * hp * wp,), cols.dtype)
    np.add.at(xp, indices, cols.reshape(-1))
    xp = xp.reshape(n, c, hp, wp)
    if padding == 0:
        return xp
    return xp[:, :, padding:-padding, padding:-padding]


def col2im_reference(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """The historical ``kh×kw``-loop col2im (kept for equivalence tests).

    Accepts the same NC-layout ``(N, C·kh·kw, oh·ow)`` columns as
    :func:`col2im` but folds them with the original strided-slice loop.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding

    patches = cols.reshape(n, c, kh, kw, out_h, out_w)
    xp = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            xp[:, :, i:i_max:stride, j:j_max:stride] += patches[:, :, i, j]
    if padding == 0:
        return xp
    return xp[:, :, padding:-padding, padding:-padding]


def _is_pointwise(kh: int, kw: int, stride: int, padding: int) -> bool:
    return kh == 1 and kw == 1 and stride == 1 and padding == 0


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    ws: Workspace | None = None,
) -> tuple[np.ndarray, tuple]:
    """Standard (dense) 2-D convolution forward pass.

    ``weight`` has shape ``(C_out, C_in, kh, kw)``.  Returns the output and a
    cache used by :func:`conv2d_backward`.
    """
    n = x.shape[0]
    c_out, c_in, kh, kw = weight.shape
    if x.shape[1] != c_in:
        raise ValueError(f"input has {x.shape[1]} channels, weight expects {c_in}")
    if _is_pointwise(kh, kw, stride, padding):
        # 1x1 fast path: batched GEMM straight over the NCHW layout
        h, w = x.shape[2], x.shape[3]
        x_flat = x.reshape(n, c_in, h * w)
        out = np.matmul(weight.reshape(c_out, c_in), x_flat)  # (n, c_out, h*w)
        if bias is not None:
            out += bias[None, :, None]
        out = out.reshape(n, c_out, h, w)
        cache = (x.shape, x_flat, weight, stride, padding, True)
        return out, cache
    cols, out_h, out_w = im2col(x, kh, kw, stride, padding, ws)
    w_mat = weight.reshape(c_out, -1)
    # batched GEMM over the NC layout: (c_out, C·k²) @ (N, C·k², P)
    out = np.matmul(w_mat, cols)
    if bias is not None:
        out += bias[None, :, None]
    out = out.reshape(n, c_out, out_h, out_w)
    cache = (x.shape, cols, weight, stride, padding, False)
    return out, cache


def conv2d_backward(
    grad_out: np.ndarray, cache: tuple, ws: Workspace | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_x, grad_weight, grad_bias)``.
    """
    x_shape, cols, weight, stride, padding, pointwise = cache
    c_out, c_in, kh, kw = weight.shape
    n = grad_out.shape[0]

    if pointwise:
        h, w = x_shape[2], x_shape[3]
        x_flat = cols  # the (n, c_in, h*w) view stored by the forward pass
        grad_flat = grad_out.reshape(n, c_out, h * w)
        grad_bias = grad_flat.sum(axis=(0, 2))
        grad_w = np.matmul(grad_flat, x_flat.transpose(0, 2, 1)).sum(axis=0).reshape(weight.shape)
        grad_x = np.matmul(weight.reshape(c_out, c_in).T, grad_flat).reshape(x_shape)
        return grad_x, grad_w, grad_bias

    # NC layout throughout: grad_out (N, c_out, P), cols (N, C·k², P)
    grad_flat = grad_out.reshape(n, c_out, -1)
    grad_bias = grad_flat.sum(axis=(0, 2))
    grad_w = np.matmul(grad_flat, cols.transpose(0, 2, 1)).sum(axis=0).reshape(c_out, c_in, kh, kw)
    grad_cols = np.matmul(weight.reshape(c_out, -1).T, grad_flat)  # (N, C·k², P)
    grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding, ws)
    return grad_x, grad_w, grad_bias


def depthwise_conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    ws: Workspace | None = None,
) -> tuple[np.ndarray, tuple]:
    """Depthwise 2-D convolution (one filter per input channel).

    ``weight`` has shape ``(C, 1, kh, kw)``; channel ``c`` of the output is
    produced only from channel ``c`` of the input, as used by MobileNetV2.
    """
    n, c, h, w = x.shape
    if weight.shape[0] != c or weight.shape[1] != 1:
        raise ValueError(f"depthwise weight shape {weight.shape} incompatible with {c} input channels")
    kh, kw = weight.shape[2], weight.shape[3]
    cols, out_h, out_w = im2col(x, kh, kw, stride, padding, ws)
    # cols: (N, C*kh*kw, P) -> (N, C, kh*kw, P)
    cols_c = cols.reshape(n, c, kh * kw, -1)
    w_mat = weight.reshape(c, kh * kw)
    out = np.einsum("ck,nckp->ncp", w_mat, cols_c, optimize=True)
    if bias is not None:
        out += bias[None, :, None]
    out = out.reshape(n, c, out_h, out_w)
    cache = (x.shape, cols_c, weight, stride, padding)
    return out, cache


def depthwise_conv2d_backward(
    grad_out: np.ndarray, cache: tuple, ws: Workspace | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`depthwise_conv2d_forward`."""
    x_shape, cols_c, weight, stride, padding = cache
    n = grad_out.shape[0]
    c = weight.shape[0]
    kh, kw = weight.shape[2], weight.shape[3]

    grad_flat = grad_out.reshape(n, c, -1)
    grad_bias = grad_flat.sum(axis=(0, 2))
    grad_w = np.einsum("ncp,nckp->ck", grad_flat, cols_c, optimize=True).reshape(c, 1, kh, kw)
    grad_cols_c = np.einsum("ncp,ck->nckp", grad_flat, weight.reshape(c, kh * kw), optimize=True)
    grad_cols = grad_cols_c.reshape(n, c * kh * kw, -1)
    grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding, ws)
    return grad_x, grad_w, grad_bias


def maxpool2d_forward(
    x: np.ndarray,
    kernel: int,
    stride: int,
    ws: Workspace | None = None,
    need_argmax: bool = True,
) -> tuple[np.ndarray, tuple]:
    """Max pooling forward pass (no padding).

    ``need_argmax=False`` (inference) skips the patch gather and argmax
    entirely: the maximum is reduced over ``kernel²`` strided window
    views, which is both allocation-free and much faster — the returned
    cache is then unusable for :func:`maxpool2d_backward`.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    if not need_argmax:
        out = None
        for i in range(kernel):
            for j in range(kernel):
                window = x[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride]
                if out is None:
                    out = np.array(window, copy=True)
                else:
                    np.maximum(out, window, out=out)
        return out, (x.shape, None, kernel, stride)
    ws = _owned_or_fresh(ws)
    patches = _patch_view(x, kernel, kernel, stride)
    flat = ws.get(("maxpool", x.shape, kernel, stride), (n, c, out_h, out_w, kernel * kernel), x.dtype)
    np.copyto(flat.reshape(patches.shape), patches)
    argmax = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
    cache = (x.shape, argmax, kernel, stride)
    return out, cache


def _pool_base_indices(x_shape: tuple[int, int, int, int], out_h: int, out_w: int) -> np.ndarray:
    """Per-(n, c) flat offsets of the pooling grid origin (cached)."""
    key = ("poolbase", x_shape, out_h, out_w)
    cached = _SCATTER_INDEX_CACHE.get(key)
    if cached is not None:
        return cached
    n, c, h, w = x_shape
    base = (np.arange(n * c, dtype=np.intp) * (h * w))[:, None, None]
    base = np.ascontiguousarray(np.broadcast_to(base, (n * c, out_h, out_w))).reshape(n, c, out_h, out_w)
    _SCATTER_INDEX_CACHE[key] = base
    return base


def maxpool2d_backward(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    """Backward pass of :func:`maxpool2d_forward`.

    Routes every output gradient to its argmax input position with one
    flat ``bincount`` accumulation (duplicate targets cannot occur within
    a window, but windows may overlap when ``stride < kernel``).
    """
    x_shape, argmax, kernel, stride = cache
    if argmax is None:
        raise RuntimeError("maxpool forward ran without argmax (inference mode); no backward possible")
    n, c, h, w = x_shape
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]

    rows = argmax // kernel
    rows += np.arange(out_h, dtype=argmax.dtype)[None, None, :, None] * stride
    cols = argmax % kernel
    cols += np.arange(out_w, dtype=argmax.dtype)[None, None, None, :] * stride
    indices = _pool_base_indices(x_shape, out_h, out_w) + rows * w + cols
    flat = np.bincount(indices.reshape(-1), weights=grad_out.reshape(-1), minlength=n * c * h * w)
    return flat.reshape(x_shape).astype(grad_out.dtype, copy=False)


def maxpool2d_backward_reference(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    """The historical 4-axis fancy-index ``np.add.at`` scatter (kept for
    the equivalence test against :func:`maxpool2d_backward`)."""
    x_shape, argmax, kernel, stride = cache
    n, c, h, w = x_shape
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    grad_x = np.zeros(x_shape, dtype=grad_out.dtype)

    ki = argmax // kernel
    kj = argmax % kernel
    oi = np.arange(out_h, dtype=np.intp)[None, None, :, None]
    oj = np.arange(out_w, dtype=np.intp)[None, None, None, :]
    rows = oi * stride + ki
    cols = oj * stride + kj
    ni = np.arange(n, dtype=np.intp)[:, None, None, None]
    ci = np.arange(c, dtype=np.intp)[None, :, None, None]
    np.add.at(grad_x, (ni, ci, rows, cols), grad_out)
    return grad_x


def avgpool2d_forward(
    x: np.ndarray, kernel: int, stride: int, ws: Workspace | None = None
) -> tuple[np.ndarray, tuple]:
    """Average pooling forward pass (no padding)."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    patches = _patch_view(x, kernel, kernel, stride)
    out = patches.mean(axis=(4, 5))
    cache = (x.shape, kernel, stride)
    return out, cache


def avgpool2d_backward(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    """Backward pass of :func:`avgpool2d_forward`."""
    x_shape, kernel, stride = cache
    n, c, h, w = x_shape
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
    share = grad_out / (kernel * kernel)
    if stride >= kernel:
        # non-overlapping windows: one broadcast assignment into a strided view
        s = grad_x.strides
        view = np.lib.stride_tricks.as_strided(
            grad_x,
            shape=(n, c, out_h, kernel, out_w, kernel),
            strides=(s[0], s[1], s[2] * stride, s[2], s[3] * stride, s[3]),
        )
        view[:] = share[:, :, :, None, :, None]
        return grad_x
    for i in range(kernel):
        for j in range(kernel):
            grad_x[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += share
    return grad_x


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer label vector."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError(f"labels out of range for {num_classes} classes")
    out = np.zeros((labels.shape[0], num_classes), dtype=resolve_dtype())
    out[np.arange(labels.shape[0], dtype=np.intp), labels] = 1.0
    return out
