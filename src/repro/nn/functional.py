"""Stateless numerical operations used by the layers.

The convolution is implemented with the classic im2col/col2im lowering so
both forward and backward passes are expressed as large matrix multiplies,
which is the only way to get acceptable throughput out of numpy.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pad2d",
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "depthwise_conv2d_forward",
    "depthwise_conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool2d_forward",
    "avgpool2d_backward",
    "softmax",
    "log_softmax",
    "one_hot",
    "conv_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a conv/pool along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size ({out}) for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def pad2d(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two trailing spatial dimensions of an NCHW tensor."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> tuple[np.ndarray, int, int]:
    """Unfold an NCHW tensor into a matrix of receptive-field columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kh * kw)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    xp = pad2d(x, padding)

    # Strided view: (N, C, out_h, out_w, kh, kw)
    s = xp.strides
    shape = (n, c, out_h, out_w, kh, kw)
    strides = (s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3])
    patches = np.lib.stride_tricks.as_strided(xp, shape=shape, strides=strides)
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold a column matrix back into an NCHW tensor, accumulating overlaps.

    This is the adjoint of :func:`im2col` and is used in the convolution
    backward pass to produce the gradient with respect to the input.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding

    patches = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    xp = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            xp[:, :, i:i_max:stride, j:j_max:stride] += patches[:, :, :, :, i, j]
    if padding == 0:
        return xp
    return xp[:, :, padding:-padding, padding:-padding]


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, tuple]:
    """Standard (dense) 2-D convolution forward pass.

    ``weight`` has shape ``(C_out, C_in, kh, kw)``.  Returns the output and a
    cache used by :func:`conv2d_backward`.
    """
    n = x.shape[0]
    c_out, c_in, kh, kw = weight.shape
    if x.shape[1] != c_in:
        raise ValueError(f"input has {x.shape[1]} channels, weight expects {c_in}")
    cols, out_h, out_w = im2col(x, kh, kw, stride, padding)
    w_mat = weight.reshape(c_out, -1)
    out = cols @ w_mat.T
    if bias is not None:
        out = out + bias
    out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    cache = (x.shape, cols, weight, stride, padding)
    return out, cache


def conv2d_backward(grad_out: np.ndarray, cache: tuple) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_x, grad_weight, grad_bias)``.
    """
    x_shape, cols, weight, stride, padding = cache
    c_out, c_in, kh, kw = weight.shape
    n = grad_out.shape[0]

    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c_out)
    grad_bias = grad_flat.sum(axis=0)
    grad_w = (grad_flat.T @ cols).reshape(c_out, c_in, kh, kw)
    grad_cols = grad_flat @ weight.reshape(c_out, -1)
    grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding)
    return grad_x, grad_w, grad_bias


def depthwise_conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, tuple]:
    """Depthwise 2-D convolution (one filter per input channel).

    ``weight`` has shape ``(C, 1, kh, kw)``; channel ``c`` of the output is
    produced only from channel ``c`` of the input, as used by MobileNetV2.
    """
    n, c, h, w = x.shape
    if weight.shape[0] != c or weight.shape[1] != 1:
        raise ValueError(f"depthwise weight shape {weight.shape} incompatible with {c} input channels")
    kh, kw = weight.shape[2], weight.shape[3]
    cols, out_h, out_w = im2col(x, kh, kw, stride, padding)
    # cols: (N*oh*ow, C*kh*kw) -> (N*oh*ow, C, kh*kw)
    cols_c = cols.reshape(-1, c, kh * kw)
    w_mat = weight.reshape(c, kh * kw)
    out = np.einsum("pck,ck->pc", cols_c, w_mat)
    if bias is not None:
        out = out + bias
    out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
    cache = (x.shape, cols_c, weight, stride, padding)
    return out, cache


def depthwise_conv2d_backward(grad_out: np.ndarray, cache: tuple) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`depthwise_conv2d_forward`."""
    x_shape, cols_c, weight, stride, padding = cache
    c = weight.shape[0]
    kh, kw = weight.shape[2], weight.shape[3]

    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c)
    grad_bias = grad_flat.sum(axis=0)
    grad_w = np.einsum("pc,pck->ck", grad_flat, cols_c).reshape(c, 1, kh, kw)
    grad_cols_c = np.einsum("pc,ck->pck", grad_flat, weight.reshape(c, kh * kw))
    grad_cols = grad_cols_c.reshape(grad_flat.shape[0], c * kh * kw)
    grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding)
    return grad_x, grad_w, grad_bias


def maxpool2d_forward(x: np.ndarray, kernel: int, stride: int) -> tuple[np.ndarray, tuple]:
    """Max pooling forward pass (no padding)."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    s = x.strides
    shape = (n, c, out_h, out_w, kernel, kernel)
    strides = (s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3])
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    flat = patches.reshape(n, c, out_h, out_w, kernel * kernel)
    argmax = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
    cache = (x.shape, argmax, kernel, stride)
    return out, cache


def maxpool2d_backward(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    """Backward pass of :func:`maxpool2d_forward`."""
    x_shape, argmax, kernel, stride = cache
    n, c, h, w = x_shape
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    grad_x = np.zeros(x_shape, dtype=grad_out.dtype)

    ki = argmax // kernel
    kj = argmax % kernel
    oi = np.arange(out_h)[None, None, :, None]
    oj = np.arange(out_w)[None, None, None, :]
    rows = oi * stride + ki
    cols = oj * stride + kj
    ni = np.arange(n)[:, None, None, None]
    ci = np.arange(c)[None, :, None, None]
    np.add.at(grad_x, (ni, ci, rows, cols), grad_out)
    return grad_x


def avgpool2d_forward(x: np.ndarray, kernel: int, stride: int) -> tuple[np.ndarray, tuple]:
    """Average pooling forward pass (no padding)."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    s = x.strides
    shape = (n, c, out_h, out_w, kernel, kernel)
    strides = (s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3])
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    out = patches.mean(axis=(4, 5))
    cache = (x.shape, kernel, stride)
    return out, cache


def avgpool2d_backward(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    """Backward pass of :func:`avgpool2d_forward`."""
    x_shape, kernel, stride = cache
    n, c, h, w = x_shape
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
    share = grad_out / (kernel * kernel)
    for i in range(kernel):
        for j in range(kernel):
            grad_x[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += share
    return grad_x


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer label vector."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError(f"labels out of range for {num_classes} classes")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
