"""Deprecated location: parameter/FLOP counting moved to :mod:`repro.perf.flops`.

This shim keeps historical imports (``from repro.nn.profiling import
count_flops``) working; new code should import from :mod:`repro.perf`.
"""

from repro.perf.flops import FlopReport, count_flops, count_params

__all__ = ["count_params", "count_flops", "FlopReport"]
