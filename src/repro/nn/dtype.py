"""The training stack's floating-point dtype policy.

The whole NumPy training substrate — parameters, buffers, datasets,
activations, gradients and aggregation — runs in a single configurable
floating dtype, ``float32`` by default.  Single precision halves the
memory traffic of every kernel and roughly doubles BLAS throughput on
CPUs, and federated aggregation over ~tens of clients is numerically
benign at 24 mantissa bits, so this is a pure hot-path win.

Python-scalar arithmetic cannot silently promote the stack back to
``float64``: NumPy >= 2 (NEP 50) keeps ``float32_array * python_float``
in ``float32``, and the dtype-stability test in ``tests/perf`` guards a
full federated round end-to-end.

Tests that need double precision (e.g. finite-difference gradient
checks, which require ``eps`` far below float32 resolution) wrap model
construction in :func:`default_dtype`::

    with default_dtype(np.float64):
        layer = Conv2d(2, 3, 3, rng=rng)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = ["DEFAULT_DTYPE", "resolve_dtype", "default_dtype", "set_default_dtype"]

#: the stack-wide default floating dtype
DEFAULT_DTYPE: np.dtype = np.dtype(np.float32)

_current: np.dtype = DEFAULT_DTYPE


def resolve_dtype() -> np.dtype:
    """The floating dtype new parameters, buffers and datasets are built with."""
    return _current


def set_default_dtype(dtype) -> np.dtype:
    """Set the stack-wide floating dtype; returns the previous one.

    Prefer the :func:`default_dtype` context manager — a process-wide
    switch mid-run would mix dtypes between existing and new tensors.
    """
    global _current
    dtype = np.dtype(dtype)
    if dtype.kind != "f":
        raise ValueError(f"default dtype must be a floating dtype, got {dtype}")
    previous = _current
    _current = dtype
    return previous


@contextmanager
def default_dtype(dtype) -> Iterator[np.dtype]:
    """Temporarily override the stack dtype (used by double-precision tests)."""
    previous = set_default_dtype(dtype)
    try:
        yield _current
    finally:
        set_default_dtype(previous)
