"""Slimmable architecture zoo used by the AdaptiveFL reproduction."""

from repro.nn.models.mobilenet import SlimmableMobileNetV2
from repro.nn.models.registry import available_architectures, create_architecture, register_architecture
from repro.nn.models.resnet import SlimmableResNet18
from repro.nn.models.simple_cnn import SlimmableSimpleCNN
from repro.nn.models.spec import (
    ChannelGroup,
    ParamSpec,
    SlimmableArchitecture,
    annotate,
    derive_param_specs,
    resolve_group_sizes,
    scaled_size,
)
from repro.nn.models.vgg import SlimmableVGG

__all__ = [
    "ChannelGroup",
    "ParamSpec",
    "SlimmableArchitecture",
    "SlimmableVGG",
    "SlimmableResNet18",
    "SlimmableMobileNetV2",
    "SlimmableSimpleCNN",
    "annotate",
    "derive_param_specs",
    "resolve_group_sizes",
    "scaled_size",
    "create_architecture",
    "available_architectures",
    "register_architecture",
]
