"""Slimmable VGG (VGG16 / VGG11) for the CIFAR-style experiments.

Matches the configuration used in the paper's Table 1: thirteen 3x3 conv
layers with batch normalisation, five max-pool stages and a
512 -> 4096 -> 4096 -> classes classifier, which totals 33.65M parameters
and ~333M MACs on 3x32x32 inputs at full width.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.module import Module, Sequential
from repro.nn.models.spec import ChannelGroup, SlimmableArchitecture, annotate
from repro.perf.flops import FlopReport, count_flops

__all__ = ["VGGModel", "SlimmableVGG", "VGG_CONFIGS"]

# 'M' entries are max-pool stages; integers are conv output channels.
VGG_CONFIGS: dict[str, list] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M"],
}


class VGGModel(Module):
    """A concrete VGG instance (possibly pruned); built by :class:`SlimmableVGG`."""

    def __init__(self, features: Sequential, classifier: Sequential):
        super().__init__()
        self.features = features
        self.flatten = Flatten()
        self.classifier = classifier

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.features(x)
        x = self.flatten(x)
        return self.classifier(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_out)
        grad = self.flatten.backward(grad)
        return self.features.backward(grad)

    def compute_flops(self, input_shape: tuple[int, ...]) -> FlopReport:
        report = count_flops(self.features, input_shape)
        flat = (int(np.prod(report.output_shape)),)
        head = count_flops(self.classifier, flat)
        return FlopReport(report.flops + head.flops, head.output_shape)


class SlimmableVGG(SlimmableArchitecture):
    """VGG family whose conv/linear widths can be pruned layer by layer."""

    def __init__(
        self,
        config: str = "vgg16",
        num_classes: int = 10,
        input_shape: tuple[int, int, int] = (3, 32, 32),
        width_multiplier: float = 1.0,
        classifier_widths: tuple[int, int] = (4096, 4096),
        dropout: float = 0.0,
    ):
        super().__init__(input_shape, num_classes)
        if config not in VGG_CONFIGS:
            raise ValueError(f"unknown VGG config {config!r}; choose from {sorted(VGG_CONFIGS)}")
        if width_multiplier <= 0:
            raise ValueError("width_multiplier must be positive")
        self.name = config
        self.config = config
        self.width_multiplier = width_multiplier
        self.classifier_widths = tuple(classifier_widths)
        self.dropout = dropout
        self._plan = VGG_CONFIGS[config]
        self._conv_channels = [
            max(1, int(round(entry * width_multiplier))) for entry in self._plan if entry != "M"
        ]
        self._pool_count = sum(1 for entry in self._plan if entry == "M")
        spatial_h = self.input_shape[1] // (2**self._pool_count)
        spatial_w = self.input_shape[2] // (2**self._pool_count)
        if spatial_h < 1 or spatial_w < 1:
            raise ValueError(
                f"input {self.input_shape} too small for {self._pool_count} pooling stages"
            )
        self._final_spatial = spatial_h * spatial_w

    # -- description ----------------------------------------------------------------
    def channel_groups(self) -> list[ChannelGroup]:
        groups = []
        for index, channels in enumerate(self._conv_channels, start=1):
            groups.append(ChannelGroup(f"conv{index}", channels, layer_index=index))
        base = len(self._conv_channels)
        for offset, width in enumerate(self.classifier_widths, start=1):
            groups.append(ChannelGroup(f"fc{offset}", width, layer_index=base + offset))
        return groups

    # -- construction -----------------------------------------------------------------
    def build(
        self,
        group_sizes: Mapping[str, int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> VGGModel:
        rng = rng if rng is not None else np.random.default_rng(0)
        sizes = dict(group_sizes) if group_sizes is not None else self.full_group_sizes()
        self.validate_group_sizes(sizes)

        feature_layers: list[Module] = []
        in_channels = self.input_shape[0]
        in_group: str | None = None
        conv_index = 0
        for entry in self._plan:
            if entry == "M":
                feature_layers.append(MaxPool2d(2, 2))
                continue
            conv_index += 1
            group = f"conv{conv_index}"
            out_channels = sizes[group]
            conv = Conv2d(in_channels, out_channels, kernel_size=3, padding=1, bias=True, rng=rng)
            feature_layers.append(annotate(conv, group, in_group))
            feature_layers.append(annotate(BatchNorm2d(out_channels), group))
            feature_layers.append(ReLU())
            in_channels = out_channels
            in_group = group

        classifier_layers: list[Module] = []
        last_group = in_group
        in_features = in_channels * self._final_spatial
        repeat = self._final_spatial
        for offset, _ in enumerate(self.classifier_widths, start=1):
            group = f"fc{offset}"
            out_features = sizes[group]
            linear = Linear(in_features, out_features, rng=rng)
            classifier_layers.append(annotate(linear, group, last_group, in_repeat=repeat))
            classifier_layers.append(ReLU())
            if self.dropout > 0:
                classifier_layers.append(Dropout(self.dropout, rng=rng))
            in_features = out_features
            last_group = group
            repeat = 1
        head = Linear(in_features, self.num_classes, rng=rng)
        classifier_layers.append(annotate(head, None, last_group))

        return VGGModel(Sequential(*feature_layers), Sequential(*classifier_layers))
