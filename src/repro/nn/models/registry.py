"""Architecture registry: build slimmable architectures by name."""

from __future__ import annotations

from typing import Callable

from repro.nn.models.mobilenet import SlimmableMobileNetV2
from repro.nn.models.resnet import SlimmableResNet18
from repro.nn.models.simple_cnn import SlimmableSimpleCNN
from repro.nn.models.spec import SlimmableArchitecture
from repro.nn.models.vgg import SlimmableVGG

__all__ = ["create_architecture", "available_architectures", "register_architecture"]

_FACTORIES: dict[str, Callable[..., SlimmableArchitecture]] = {
    "vgg16": lambda **kw: SlimmableVGG(config="vgg16", **kw),
    "vgg11": lambda **kw: SlimmableVGG(config="vgg11", **kw),
    "resnet18": SlimmableResNet18,
    "mobilenetv2": SlimmableMobileNetV2,
    "simple_cnn": SlimmableSimpleCNN,
}


def available_architectures() -> list[str]:
    """Names accepted by :func:`create_architecture`."""
    return sorted(_FACTORIES)


def register_architecture(name: str, factory: Callable[..., SlimmableArchitecture]) -> None:
    """Register a custom slimmable architecture factory under ``name``."""
    if name in _FACTORIES:
        raise ValueError(f"architecture {name!r} is already registered")
    _FACTORIES[name] = factory


def create_architecture(name: str, **kwargs) -> SlimmableArchitecture:
    """Instantiate a slimmable architecture by registry name.

    Keyword arguments are forwarded to the architecture constructor
    (``num_classes``, ``input_shape``, ``width_multiplier``, ...).
    """
    if name not in _FACTORIES:
        raise KeyError(f"unknown architecture {name!r}; available: {available_architectures()}")
    return _FACTORIES[name](**kwargs)
