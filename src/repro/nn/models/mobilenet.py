"""Slimmable MobileNetV2-lite for the (simulated) real test-bed experiment.

The paper's test-bed experiment trains MobileNetV2 on the Widar gesture
dataset.  This implementation keeps the inverted-residual structure
(1x1 expansion, 3x3 depthwise, 1x1 projection, residual add on stride-1
blocks) with a reduced block schedule suitable for CPU-only simulation.
As in the ResNet implementation, channel mismatches on identity shortcuts
caused by pruning are resolved with a parameter-free slice-or-pad shortcut.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, DepthwiseConv2d, GlobalAvgPool2d, Linear, ReLU6
from repro.nn.module import Module
from repro.nn.models.spec import ChannelGroup, SlimmableArchitecture, annotate
from repro.perf.flops import FlopReport, count_flops

__all__ = ["InvertedResidual", "MobileNetModel", "SlimmableMobileNetV2"]


class InvertedResidual(Module):
    """MobileNetV2 block: expand (1x1) -> depthwise (3x3) -> project (1x1)."""

    def __init__(
        self,
        in_channels: int,
        expand_channels: int,
        out_channels: int,
        stride: int,
        expand_group: str,
        out_group: str,
        in_group: str | None,
        use_residual: bool,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.use_residual = use_residual and stride == 1
        self.has_expand = expand_channels != in_channels or True  # always use an explicit expansion conv

        self.expand_conv = annotate(
            Conv2d(in_channels, expand_channels, 1, bias=False, rng=rng), expand_group, in_group
        )
        self.expand_bn = annotate(BatchNorm2d(expand_channels), expand_group)
        self.expand_act = ReLU6()
        self.dw_conv = annotate(
            DepthwiseConv2d(expand_channels, 3, stride=stride, padding=1, bias=False, rng=rng),
            expand_group,
        )
        self.dw_bn = annotate(BatchNorm2d(expand_channels), expand_group)
        self.dw_act = ReLU6()
        self.project_conv = annotate(
            Conv2d(expand_channels, out_channels, 1, bias=False, rng=rng), out_group, expand_group
        )
        self.project_bn = annotate(BatchNorm2d(out_channels), out_group)
        self._shortcut_in_channels: int | None = None

    def _shortcut_forward(self, x: np.ndarray) -> np.ndarray:
        self._shortcut_in_channels = x.shape[1]
        if x.shape[1] == self.out_channels:
            return x
        if x.shape[1] > self.out_channels:
            return x[:, : self.out_channels]
        padded = np.zeros((x.shape[0], self.out_channels, x.shape[2], x.shape[3]), dtype=x.dtype)
        padded[:, : x.shape[1]] = x
        return padded

    def _shortcut_backward(self, grad: np.ndarray) -> np.ndarray:
        in_channels = self._shortcut_in_channels
        if in_channels is None:
            raise RuntimeError("backward called before forward")
        self._shortcut_in_channels = None
        if in_channels == self.out_channels:
            return grad
        if in_channels > self.out_channels:
            padded = np.zeros((grad.shape[0], in_channels, grad.shape[2], grad.shape[3]), dtype=grad.dtype)
            padded[:, : self.out_channels] = grad
            return padded
        return grad[:, :in_channels]

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.expand_act(self.expand_bn(self.expand_conv(x)))
        out = self.dw_act(self.dw_bn(self.dw_conv(out)))
        out = self.project_bn(self.project_conv(out))
        if self.use_residual:
            return out + self._shortcut_forward(x)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        grad_main = self.project_conv.backward(self.project_bn.backward(grad))
        grad_main = self.dw_conv.backward(self.dw_bn.backward(self.dw_act.backward(grad_main)))
        grad_main = self.expand_conv.backward(self.expand_bn.backward(self.expand_act.backward(grad_main)))
        if self.use_residual:
            return grad_main + self._shortcut_backward(grad)
        return grad_main

    def compute_flops(self, input_shape: tuple[int, ...]) -> FlopReport:
        expand = count_flops(self.expand_conv, input_shape)
        dw = count_flops(self.dw_conv, expand.output_shape)
        project = count_flops(self.project_conv, dw.output_shape)
        return FlopReport(expand.flops + dw.flops + project.flops, project.output_shape)


class MobileNetModel(Module):
    """A concrete (possibly pruned) MobileNetV2-lite instance."""

    def __init__(self, stem: list[Module], blocks: list[InvertedResidual], head_layers: list[Module], classifier: Linear):
        super().__init__()
        self.stem_conv, self.stem_bn, self.stem_act = stem
        self._block_names: list[str] = []
        for index, block in enumerate(blocks, start=1):
            name = f"block{index}"
            setattr(self, name, block)
            self._block_names.append(name)
        self.head_conv, self.head_bn, self.head_act = head_layers
        self.pool = GlobalAvgPool2d()
        self.classifier = classifier

    @property
    def blocks(self) -> list[InvertedResidual]:
        return [getattr(self, name) for name in self._block_names]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem_act(self.stem_bn(self.stem_conv(x)))
        for block in self.blocks:
            x = block(x)
        x = self.head_act(self.head_bn(self.head_conv(x)))
        x = self.pool(x)
        return self.classifier(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_out)
        grad = self.pool.backward(grad)
        grad = self.head_conv.backward(self.head_bn.backward(self.head_act.backward(grad)))
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        return self.stem_conv.backward(self.stem_bn.backward(self.stem_act.backward(grad)))

    def compute_flops(self, input_shape: tuple[int, ...]) -> FlopReport:
        report = count_flops(self.stem_conv, input_shape)
        total = report.flops
        shape = report.output_shape
        for block in self.blocks:
            block_report = block.compute_flops(shape)
            total += block_report.flops
            shape = block_report.output_shape
        head = count_flops(self.head_conv, shape)
        total += head.flops
        total += count_flops(self.classifier, (head.output_shape[0],)).flops
        return FlopReport(total, (self.classifier.out_features,))


class SlimmableMobileNetV2(SlimmableArchitecture):
    """MobileNetV2-lite with per-block prunable expansion and output widths.

    Layer indices: stem conv is layer 1, each inverted-residual block is one
    layer (its expansion and output groups share the index) and the final
    1x1 head conv is the last layer.
    """

    # (expansion factor, output channels, repeats, first stride)
    DEFAULT_SCHEDULE = ((1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 2, 2), (6, 64, 2, 2))

    def __init__(
        self,
        num_classes: int = 22,
        input_shape: tuple[int, int, int] = (1, 32, 32),
        width_multiplier: float = 1.0,
        stem_channels: int = 32,
        head_channels: int = 256,
        schedule: tuple[tuple[int, int, int, int], ...] | None = None,
    ):
        super().__init__(input_shape, num_classes)
        if width_multiplier <= 0:
            raise ValueError("width_multiplier must be positive")
        self.name = "mobilenetv2"
        self.width_multiplier = width_multiplier
        self.schedule = tuple(schedule) if schedule is not None else self.DEFAULT_SCHEDULE
        self._stem_channels = max(1, int(round(stem_channels * width_multiplier)))
        self._head_channels = max(1, int(round(head_channels * width_multiplier)))

    def _block_plan(self) -> list[tuple[int, int, int, int, bool]]:
        """Per-block (index, expand_channels, out_channels, stride, residual)."""
        plan = []
        in_channels = self._stem_channels
        block_index = 0
        for expansion, channels, repeats, first_stride in self.schedule:
            out_channels = max(1, int(round(channels * self.width_multiplier)))
            for position in range(repeats):
                block_index += 1
                stride = first_stride if position == 0 else 1
                expand_channels = max(1, in_channels * expansion)
                residual = stride == 1 and in_channels == out_channels
                plan.append((block_index, expand_channels, out_channels, stride, residual))
                in_channels = out_channels
        return plan

    def channel_groups(self) -> list[ChannelGroup]:
        groups = [ChannelGroup("stem", self._stem_channels, layer_index=1)]
        plan = self._block_plan()
        for block_index, expand_channels, out_channels, _, _ in plan:
            layer_index = block_index + 1
            groups.append(ChannelGroup(f"block{block_index}_exp", expand_channels, layer_index=layer_index))
            groups.append(ChannelGroup(f"block{block_index}_out", out_channels, layer_index=layer_index))
        groups.append(ChannelGroup("head", self._head_channels, layer_index=len(plan) + 2))
        return groups

    def build(
        self,
        group_sizes: Mapping[str, int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> MobileNetModel:
        rng = rng if rng is not None else np.random.default_rng(0)
        sizes = dict(group_sizes) if group_sizes is not None else self.full_group_sizes()
        self.validate_group_sizes(sizes)

        stem_channels = sizes["stem"]
        stem = [
            annotate(Conv2d(self.input_shape[0], stem_channels, 3, stride=1, padding=1, bias=False, rng=rng), "stem", None),
            annotate(BatchNorm2d(stem_channels), "stem"),
            ReLU6(),
        ]

        blocks: list[InvertedResidual] = []
        in_channels = stem_channels
        in_group: str | None = "stem"
        for block_index, _, _, stride, residual in self._block_plan():
            expand_group = f"block{block_index}_exp"
            out_group = f"block{block_index}_out"
            block = InvertedResidual(
                in_channels=in_channels,
                expand_channels=sizes[expand_group],
                out_channels=sizes[out_group],
                stride=stride,
                expand_group=expand_group,
                out_group=out_group,
                in_group=in_group,
                use_residual=residual,
                rng=rng,
            )
            blocks.append(block)
            in_channels = sizes[out_group]
            in_group = out_group

        head_channels = sizes["head"]
        head_layers = [
            annotate(Conv2d(in_channels, head_channels, 1, bias=False, rng=rng), "head", in_group),
            annotate(BatchNorm2d(head_channels), "head"),
            ReLU6(),
        ]
        classifier = annotate(Linear(head_channels, self.num_classes, rng=rng), None, "head")
        return MobileNetModel(stem, blocks, head_layers, classifier)
