"""Slimmable-architecture description.

AdaptiveFL (like HeteroFL and ScaleFL) builds heterogeneous submodels by
keeping a *prefix* of the channels of selected layers of a full global
model.  To implement that generically, every architecture in the zoo
describes itself in terms of:

* **channel groups** — named sets of channels whose width shrinks together
  (e.g. the output channels of one conv layer).  Each group carries the
  1-based ``layer_index`` the paper's starting-pruning-layer hyper-parameter
  ``I`` refers to, plus a ``prunable`` flag (the RGB input and the class
  logits are never pruned).
* **parameter specs** — for every entry of the model ``state_dict``, which
  group governs its output axis (axis 0) and which governs its input axis
  (axis 1), plus an ``in_repeat`` factor for flattened conv→linear
  boundaries where each kept channel contributes ``H*W`` consecutive
  inputs.

Given a mapping ``group name -> kept size`` the federated-learning code can
then slice the global state dict into a submodel state dict, build a
matching smaller network, and scatter trained submodel weights back into
the global coordinate system (Algorithm 2 of the paper) without knowing
anything architecture-specific.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.nn.module import Module

__all__ = [
    "ChannelGroup",
    "ParamSpec",
    "SlimmableArchitecture",
    "annotate",
    "derive_param_specs",
    "resolve_group_sizes",
    "scaled_size",
]


@dataclass(frozen=True)
class ChannelGroup:
    """A named set of channels that are pruned together.

    Attributes:
        name: unique identifier of the group within one architecture.
        full_size: channel count in the unpruned global model.
        layer_index: 1-based position used by the starting-pruning-layer
            hyper-parameter ``I``; groups with ``layer_index > I`` are
            pruned.  Non-prunable groups use index 0.
        prunable: whether width-wise pruning may shrink this group.
    """

    name: str
    full_size: int
    layer_index: int = 0
    prunable: bool = True

    def __post_init__(self) -> None:
        if self.full_size <= 0:
            raise ValueError(f"group {self.name!r} must have positive size")
        if self.prunable and self.layer_index <= 0:
            raise ValueError(f"prunable group {self.name!r} needs a positive layer_index")


@dataclass(frozen=True)
class ParamSpec:
    """How one state-dict tensor maps onto channel groups.

    ``out_group`` governs axis 0, ``in_group`` governs axis 1 (if the
    tensor has a second axis tied to a group).  ``in_repeat`` multiplies the
    input-group size, used when a conv feature map of shape (C, H, W) is
    flattened channel-major before a linear layer (each kept channel then
    owns ``H*W`` consecutive columns).
    """

    name: str
    out_group: str | None
    in_group: str | None = None
    in_repeat: int = 1


def annotate(layer: Module, out_group: str | None, in_group: str | None = None, in_repeat: int = 1) -> Module:
    """Tag a layer with the channel groups its parameters belong to.

    The tags are consumed by :func:`derive_param_specs` after the model has
    been assembled, which avoids hand-maintaining state-dict key lists.
    """
    layer._slim_out_group = out_group  # type: ignore[attr-defined]
    layer._slim_in_group = in_group  # type: ignore[attr-defined]
    layer._slim_in_repeat = in_repeat  # type: ignore[attr-defined]
    return layer


def derive_param_specs(model: Module) -> list[ParamSpec]:
    """Walk a model annotated with :func:`annotate` and emit parameter specs.

    Every parameter and buffer of an annotated layer is mapped: tensors with
    two or more axes get both the out and in group; one-dimensional tensors
    (biases, batch-norm weights and running statistics) get only the out
    group.  Parameters of un-annotated layers are treated as shared
    (never-pruned) tensors with no group attachment.
    """
    specs: list[ParamSpec] = []
    for prefix, module in model.named_modules():
        own_names = list(module._parameters) + list(module._buffers)
        if not own_names:
            continue
        out_group = getattr(module, "_slim_out_group", None)
        in_group = getattr(module, "_slim_in_group", None)
        in_repeat = getattr(module, "_slim_in_repeat", 1)
        for local in own_names:
            full = f"{prefix}.{local}" if prefix else local
            tensor = (
                module._parameters[local].data if local in module._parameters else module._buffers[local]
            )
            if tensor.ndim >= 2:
                specs.append(ParamSpec(full, out_group, in_group, in_repeat))
            else:
                specs.append(ParamSpec(full, out_group, None, 1))
    return specs


def scaled_size(full_size: int, ratio: float) -> int:
    """Number of channels kept when pruning ``full_size`` channels at ``ratio``.

    Uses floor with a minimum of one channel, matching the convention that
    recovers Table 1 of the paper.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"width ratio must be in (0, 1], got {ratio}")
    return max(1, int(np.floor(full_size * ratio)))


def resolve_group_sizes(
    groups: list[ChannelGroup],
    width_ratio: float,
    start_layer: int | None,
) -> dict[str, int]:
    """Kept size of every channel group for a (``r_w``, ``I``) configuration.

    ``start_layer=None`` (or ``width_ratio == 1.0``) keeps the full model.
    Groups whose ``layer_index`` is greater than ``start_layer`` are scaled
    by ``width_ratio``; everything else keeps its full size.
    """
    sizes: dict[str, int] = {}
    for group in groups:
        if (
            width_ratio < 1.0
            and group.prunable
            and start_layer is not None
            and group.layer_index > start_layer
        ):
            sizes[group.name] = scaled_size(group.full_size, width_ratio)
        else:
            sizes[group.name] = group.full_size
    return sizes


class SlimmableArchitecture(ABC):
    """A model family that can be instantiated at arbitrary channel widths."""

    #: short identifier used in configs and registries
    name: str = "slimmable"

    def __init__(self, input_shape: tuple[int, int, int], num_classes: int):
        if num_classes <= 0:
            raise ValueError("num_classes must be positive")
        if len(input_shape) != 3:
            raise ValueError("input_shape must be (channels, height, width)")
        self.input_shape = tuple(input_shape)
        self.num_classes = int(num_classes)
        self._param_specs: list[ParamSpec] | None = None
        self._full_shapes: dict[str, tuple[int, ...]] | None = None

    # -- architecture description -------------------------------------------------
    @abstractmethod
    def channel_groups(self) -> list[ChannelGroup]:
        """Ordered channel groups of the full architecture."""

    @abstractmethod
    def build(
        self,
        group_sizes: Mapping[str, int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> Module:
        """Instantiate the network at the given channel widths.

        ``group_sizes=None`` builds the full model.  The returned module
        must be annotated (see :func:`annotate`) so that parameter specs can
        be derived from it.
        """

    # -- derived helpers -----------------------------------------------------------
    def full_group_sizes(self) -> dict[str, int]:
        """Channel sizes of the unpruned global model."""
        return {g.name: g.full_size for g in self.channel_groups()}

    def num_prunable_layers(self) -> int:
        """Largest ``layer_index`` across prunable groups."""
        return max((g.layer_index for g in self.channel_groups() if g.prunable), default=0)

    def param_specs(self) -> list[ParamSpec]:
        """Parameter specs derived from the full model (cached)."""
        if self._param_specs is None:
            model = self.build(None, rng=np.random.default_rng(0))
            self._param_specs = derive_param_specs(model)
            self._full_shapes = {name: np.asarray(v).shape for name, v in model.state_dict().items()}
        return self._param_specs

    def full_param_shapes(self) -> dict[str, tuple[int, ...]]:
        """Shapes of every state-dict tensor of the full model (cached)."""
        if self._full_shapes is None:
            self.param_specs()
        assert self._full_shapes is not None
        return self._full_shapes

    def group_sizes_for(self, width_ratio: float, start_layer: int | None) -> dict[str, int]:
        """Kept channel sizes for a (``r_w``, ``I``) pruning configuration."""
        return resolve_group_sizes(self.channel_groups(), width_ratio, start_layer)

    def param_shape_for(self, spec: ParamSpec, group_sizes: Mapping[str, int]) -> tuple[int, ...]:
        """Shape of one tensor when the model is built at ``group_sizes``."""
        full_shape = self.full_param_shapes()[spec.name]
        shape = list(full_shape)
        if spec.out_group is not None:
            shape[0] = group_sizes[spec.out_group]
        if spec.in_group is not None and len(shape) > 1:
            shape[1] = group_sizes[spec.in_group] * spec.in_repeat
        return tuple(shape)

    def parameter_count(self, group_sizes: Mapping[str, int] | None = None) -> int:
        """Trainable parameter count at the given widths, without building.

        Buffers (batch-norm running statistics) are excluded so the number
        matches ``count_params(model)`` for the built model.
        """
        sizes = group_sizes if group_sizes is not None else self.full_group_sizes()
        total = 0
        for spec in self.param_specs():
            if spec.name.endswith(("running_mean", "running_var")):
                continue
            total += int(np.prod(self.param_shape_for(spec, sizes)))
        return total

    def validate_group_sizes(self, group_sizes: Mapping[str, int]) -> None:
        """Raise if ``group_sizes`` is missing groups or exceeds full sizes."""
        for group in self.channel_groups():
            if group.name not in group_sizes:
                raise KeyError(f"missing size for channel group {group.name!r}")
            size = group_sizes[group.name]
            if not 1 <= size <= group.full_size:
                raise ValueError(
                    f"size {size} for group {group.name!r} outside [1, {group.full_size}]"
                )
            if not group.prunable and size != group.full_size:
                raise ValueError(f"group {group.name!r} is not prunable but size differs from full")
