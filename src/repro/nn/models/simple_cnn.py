"""Slimmable two-conv CNN for FEMNIST-style grayscale classification.

The LEAF FEMNIST reference model: two 5x5 conv layers with max pooling
followed by a hidden linear layer and the class head.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.module import Module, Sequential
from repro.nn.models.spec import ChannelGroup, SlimmableArchitecture, annotate
from repro.perf.flops import FlopReport, count_flops

__all__ = ["SimpleCNNModel", "SlimmableSimpleCNN"]


class SimpleCNNModel(Module):
    """A concrete (possibly pruned) SimpleCNN instance."""

    def __init__(self, features: Sequential, classifier: Sequential):
        super().__init__()
        self.features = features
        self.flatten = Flatten()
        self.classifier = classifier

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.features(x)
        x = self.flatten(x)
        return self.classifier(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_out)
        grad = self.flatten.backward(grad)
        return self.features.backward(grad)

    def compute_flops(self, input_shape: tuple[int, ...]) -> FlopReport:
        body = count_flops(self.features, input_shape)
        flat = (int(np.prod(body.output_shape)),)
        head = count_flops(self.classifier, flat)
        return FlopReport(body.flops + head.flops, head.output_shape)


class SlimmableSimpleCNN(SlimmableArchitecture):
    """LEAF-style CNN (conv 32 -> conv 64 -> fc hidden -> classes)."""

    def __init__(
        self,
        num_classes: int = 62,
        input_shape: tuple[int, int, int] = (1, 28, 28),
        width_multiplier: float = 1.0,
        conv_channels: tuple[int, int] = (32, 64),
        hidden_features: int = 512,
    ):
        super().__init__(input_shape, num_classes)
        if width_multiplier <= 0:
            raise ValueError("width_multiplier must be positive")
        self.name = "simple_cnn"
        self.width_multiplier = width_multiplier
        self._conv_channels = [max(1, int(round(c * width_multiplier))) for c in conv_channels]
        self._hidden_features = max(1, int(round(hidden_features * width_multiplier)))
        spatial_h = self.input_shape[1] // 4
        spatial_w = self.input_shape[2] // 4
        if spatial_h < 1 or spatial_w < 1:
            raise ValueError(f"input {self.input_shape} too small for two 2x2 pooling stages")
        self._final_spatial = spatial_h * spatial_w

    def channel_groups(self) -> list[ChannelGroup]:
        return [
            ChannelGroup("conv1", self._conv_channels[0], layer_index=1),
            ChannelGroup("conv2", self._conv_channels[1], layer_index=2),
            ChannelGroup("fc1", self._hidden_features, layer_index=3),
        ]

    def build(
        self,
        group_sizes: Mapping[str, int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> SimpleCNNModel:
        rng = rng if rng is not None else np.random.default_rng(0)
        sizes = dict(group_sizes) if group_sizes is not None else self.full_group_sizes()
        self.validate_group_sizes(sizes)

        conv1 = annotate(
            Conv2d(self.input_shape[0], sizes["conv1"], 5, padding=2, rng=rng), "conv1", None
        )
        conv2 = annotate(Conv2d(sizes["conv1"], sizes["conv2"], 5, padding=2, rng=rng), "conv2", "conv1")
        features = Sequential(
            conv1,
            annotate(BatchNorm2d(sizes["conv1"]), "conv1"),
            ReLU(),
            MaxPool2d(2, 2),
            conv2,
            annotate(BatchNorm2d(sizes["conv2"]), "conv2"),
            ReLU(),
            MaxPool2d(2, 2),
        )
        fc1 = annotate(
            Linear(sizes["conv2"] * self._final_spatial, sizes["fc1"], rng=rng),
            "fc1",
            "conv2",
            in_repeat=self._final_spatial,
        )
        head = annotate(Linear(sizes["fc1"], self.num_classes, rng=rng), None, "fc1")
        classifier = Sequential(fc1, ReLU(), head)
        return SimpleCNNModel(features, classifier)
