"""Slimmable ResNet-18 (CIFAR variant: 3x3 stem, no initial max-pool).

Residual blocks complicate width-wise pruning because the skip connection
requires the block input and output to have the same channel count.  The
paper's fine-grained mechanism can prune a block while leaving its
predecessor untouched, so this implementation uses a parameter-free
*slice-or-pad* shortcut whenever pruning creates a channel mismatch on a
connection that is an identity in the full model: the identity tensor is
truncated (or zero-padded) to the block's output width.  Blocks that have a
projection shortcut in the full model (the first block of stages 2-4) keep
it, with its weights sliced like any other conv.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, ReLU
from repro.nn.module import Module
from repro.nn.models.spec import ChannelGroup, SlimmableArchitecture, annotate
from repro.perf.flops import FlopReport, count_flops
from repro.nn import functional as F

__all__ = ["BasicBlock", "ResNetModel", "SlimmableResNet18"]


class BasicBlock(Module):
    """Two 3x3 convs with batch norm plus a residual connection."""

    def __init__(
        self,
        in_channels: int,
        mid_channels: int,
        out_channels: int,
        stride: int,
        mid_group: str,
        out_group: str,
        in_group: str | None,
        use_projection: bool,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.use_projection = use_projection

        self.conv1 = annotate(
            Conv2d(in_channels, mid_channels, 3, stride=stride, padding=1, bias=False, rng=rng),
            mid_group,
            in_group,
        )
        self.bn1 = annotate(BatchNorm2d(mid_channels), mid_group)
        self.relu1 = ReLU()
        self.conv2 = annotate(
            Conv2d(mid_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng),
            out_group,
            mid_group,
        )
        self.bn2 = annotate(BatchNorm2d(out_channels), out_group)
        self.relu2 = ReLU()

        if use_projection:
            self.downsample_conv = annotate(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                out_group,
                in_group,
            )
            self.downsample_bn = annotate(BatchNorm2d(out_channels), out_group)
        self._shortcut_in_channels: int | None = None

    def _shortcut_forward(self, x: np.ndarray) -> np.ndarray:
        if self.use_projection:
            return self.downsample_bn(self.downsample_conv(x))
        self._shortcut_in_channels = x.shape[1]
        if x.shape[1] == self.out_channels:
            return x
        if x.shape[1] > self.out_channels:
            return x[:, : self.out_channels]
        padded = np.zeros((x.shape[0], self.out_channels, x.shape[2], x.shape[3]), dtype=x.dtype)
        padded[:, : x.shape[1]] = x
        return padded

    def _shortcut_backward(self, grad: np.ndarray) -> np.ndarray:
        if self.use_projection:
            return self.downsample_conv.backward(self.downsample_bn.backward(grad))
        in_channels = self._shortcut_in_channels
        if in_channels is None:
            raise RuntimeError("backward called before forward")
        self._shortcut_in_channels = None
        if in_channels == self.out_channels:
            return grad
        if in_channels > self.out_channels:
            padded = np.zeros((grad.shape[0], in_channels, grad.shape[2], grad.shape[3]), dtype=grad.dtype)
            padded[:, : self.out_channels] = grad
            return padded
        return grad[:, :in_channels]

    def forward(self, x: np.ndarray) -> np.ndarray:
        identity = self._shortcut_forward(x)
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu2(out + identity)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.relu2.backward(grad_out)
        grad_main = self.conv1.backward(
            self.bn1.backward(self.relu1.backward(self.conv2.backward(self.bn2.backward(grad))))
        )
        grad_identity = self._shortcut_backward(grad)
        return grad_main + grad_identity

    def compute_flops(self, input_shape: tuple[int, ...]) -> FlopReport:
        main1 = count_flops(self.conv1, input_shape)
        main2 = count_flops(self.conv2, main1.output_shape)
        total = main1.flops + main2.flops
        if self.use_projection:
            total += count_flops(self.downsample_conv, input_shape).flops
        return FlopReport(total, main2.output_shape)


class ResNetModel(Module):
    """A concrete (possibly pruned) ResNet instance."""

    def __init__(self, stem: list[Module], blocks: list[BasicBlock], head: Linear):
        super().__init__()
        self.stem_conv, self.stem_bn, self.stem_relu = stem
        self._block_names: list[str] = []
        for index, block in enumerate(blocks, start=1):
            name = f"block{index}"
            setattr(self, name, block)
            self._block_names.append(name)
        self.pool = GlobalAvgPool2d()
        self.head = head

    @property
    def blocks(self) -> list[BasicBlock]:
        return [getattr(self, name) for name in self._block_names]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem_relu(self.stem_bn(self.stem_conv(x)))
        for block in self.blocks:
            x = block(x)
        x = self.pool(x)
        return self.head(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.head.backward(grad_out)
        grad = self.pool.backward(grad)
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        return self.stem_conv.backward(self.stem_bn.backward(self.stem_relu.backward(grad)))

    def compute_flops(self, input_shape: tuple[int, ...]) -> FlopReport:
        report = count_flops(self.stem_conv, input_shape)
        total = report.flops
        shape = report.output_shape
        for block in self.blocks:
            block_report = block.compute_flops(shape)
            total += block_report.flops
            shape = block_report.output_shape
        total += count_flops(self.head, (shape[0],)).flops
        return FlopReport(total, (self.head.out_features,))


class SlimmableResNet18(SlimmableArchitecture):
    """ResNet-18 whose block widths can be pruned block by block.

    Channel-group layer indices: the stem conv is layer 1 and each of the
    eight basic blocks is one layer (indices 2-9); a block's two convs share
    its index so the residual add inside a block always stays consistent.
    """

    STAGE_CHANNELS = (64, 128, 256, 512)
    BLOCKS_PER_STAGE = 2

    def __init__(
        self,
        num_classes: int = 10,
        input_shape: tuple[int, int, int] = (3, 32, 32),
        width_multiplier: float = 1.0,
    ):
        super().__init__(input_shape, num_classes)
        if width_multiplier <= 0:
            raise ValueError("width_multiplier must be positive")
        self.name = "resnet18"
        self.width_multiplier = width_multiplier
        self._stage_channels = [max(1, int(round(c * width_multiplier))) for c in self.STAGE_CHANNELS]

    def _block_plan(self) -> list[tuple[int, int, int, bool]]:
        """Per-block (index, out_channels, stride, has_projection)."""
        plan = []
        block_index = 0
        for stage, channels in enumerate(self._stage_channels):
            for position in range(self.BLOCKS_PER_STAGE):
                block_index += 1
                stride = 2 if stage > 0 and position == 0 else 1
                projection = stage > 0 and position == 0
                plan.append((block_index, channels, stride, projection))
        return plan

    def channel_groups(self) -> list[ChannelGroup]:
        groups = [ChannelGroup("conv1", self._stage_channels[0], layer_index=1)]
        for block_index, channels, _, _ in self._block_plan():
            layer_index = block_index + 1
            groups.append(ChannelGroup(f"block{block_index}_mid", channels, layer_index=layer_index))
            groups.append(ChannelGroup(f"block{block_index}_out", channels, layer_index=layer_index))
        return groups

    def build(
        self,
        group_sizes: Mapping[str, int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> ResNetModel:
        rng = rng if rng is not None else np.random.default_rng(0)
        sizes = dict(group_sizes) if group_sizes is not None else self.full_group_sizes()
        self.validate_group_sizes(sizes)

        stem_channels = sizes["conv1"]
        stem_conv = annotate(
            Conv2d(self.input_shape[0], stem_channels, 3, stride=1, padding=1, bias=False, rng=rng),
            "conv1",
            None,
        )
        stem_bn = annotate(BatchNorm2d(stem_channels), "conv1")
        stem = [stem_conv, stem_bn, ReLU()]

        blocks: list[BasicBlock] = []
        in_channels = stem_channels
        in_group: str | None = "conv1"
        for block_index, _, stride, projection in self._block_plan():
            mid_group = f"block{block_index}_mid"
            out_group = f"block{block_index}_out"
            block = BasicBlock(
                in_channels=in_channels,
                mid_channels=sizes[mid_group],
                out_channels=sizes[out_group],
                stride=stride,
                mid_group=mid_group,
                out_group=out_group,
                in_group=in_group,
                use_projection=projection,
                rng=rng,
            )
            blocks.append(block)
            in_channels = sizes[out_group]
            in_group = out_group

        head = annotate(Linear(in_channels, self.num_classes, rng=rng), None, in_group)
        return ResNetModel(stem, blocks, head)
