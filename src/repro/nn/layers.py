"""Trainable and stateless layers with explicit forward/backward passes."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = [
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
]


class Conv2d(Module):
    """Dense 2-D convolution over NCHW inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        self.has_bias = bias
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            self.bias = Parameter(init.uniform_bias((out_channels,), fan_in, rng))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.has_bias else None
        out, self._cache = F.conv2d_forward(x, self.weight.data, bias, self.stride, self.padding)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_x, grad_w, grad_b = F.conv2d_backward(grad_out, self._cache)
        self.weight.grad += grad_w
        if self.has_bias:
            self.bias.grad += grad_b
        self._cache = None
        return grad_x


class DepthwiseConv2d(Module):
    """Depthwise 2-D convolution (one filter per channel), as in MobileNetV2."""

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if channels <= 0:
            raise ValueError("channel count must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (channels, 1, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        self.has_bias = bias
        if bias:
            fan_in = kernel_size * kernel_size
            self.bias = Parameter(init.uniform_bias((channels,), fan_in, rng))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.has_bias else None
        out, self._cache = F.depthwise_conv2d_forward(x, self.weight.data, bias, self.stride, self.padding)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_x, grad_w, grad_b = F.depthwise_conv2d_backward(grad_out, self._cache)
        self.weight.grad += grad_w
        if self.has_bias:
            self.bias.grad += grad_b
        self._cache = None
        return grad_x


class Linear(Module):
    """Fully connected layer: ``y = x @ W.T + b`` with ``W`` of shape (out, in)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.has_bias = bias
        if bias:
            self.bias = Parameter(init.uniform_bias((out_features,), in_features, rng))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x
        out = x @ self.weight.data.T
        if self.has_bias:
            out = out + self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache
        self.weight.grad += grad_out.T @ x
        if self.has_bias:
            self.bias.grad += grad_out.sum(axis=0)
        self._cache = None
        return grad_out @ self.weight.data


class BatchNorm2d(Module):
    """Batch normalisation over the channel dimension of NCHW tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.num_features:
            raise ValueError(f"expected {self.num_features} channels, got {x.shape[1]}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self._set_buffer(
                "running_mean", (1 - self.momentum) * self._buffers["running_mean"] + self.momentum * mean
            )
            self._set_buffer(
                "running_var", (1 - self.momentum) * self._buffers["running_var"] + self.momentum * var
            )
        else:
            mean = self._buffers["running_mean"]
            var = self._buffers["running_var"]
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = self.weight.data[None, :, None, None] * x_hat + self.bias.data[None, :, None, None]
        if self.training:
            self._cache = (x_hat, inv_std)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or module in eval mode)")
        x_hat, inv_std = self._cache
        n, c, h, w = grad_out.shape
        m = n * h * w

        self.weight.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.bias.grad += grad_out.sum(axis=(0, 2, 3))

        gamma = self.weight.data[None, :, None, None]
        grad_xhat = grad_out * gamma
        sum_grad = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_grad_xhat = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_x = (inv_std[None, :, None, None] / m) * (m * grad_xhat - sum_grad - x_hat * sum_grad_xhat)
        self._cache = None
        return grad_x


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad = grad_out * self._mask
        self._mask = None
        return grad


class ReLU6(Module):
    """ReLU clipped at 6 (MobileNetV2's activation)."""

    def __init__(self) -> None:
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = (x > 0) & (x < 6.0)
        return np.clip(x, 0.0, 6.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad = grad_out * self._mask
        self._mask = None
        return grad


class MaxPool2d(Module):
    """Max pooling (square window, no padding)."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._cache = F.maxpool2d_forward(x, self.kernel_size, self.stride)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad = F.maxpool2d_backward(grad_out, self._cache)
        self._cache = None
        return grad


class AvgPool2d(Module):
    """Average pooling (square window, no padding)."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._cache = F.avgpool2d_forward(x, self.kernel_size, self.stride)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad = F.avgpool2d_backward(grad_out, self._cache)
        self._cache = None
        return grad


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent, producing (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._shape
        grad = np.broadcast_to(grad_out[:, :, None, None], self._shape) / (h * w)
        self._shape = None
        return grad.copy()


class Flatten(Module):
    """Reshape NCHW activations to (N, C*H*W), channel-major."""

    def __init__(self) -> None:
        super().__init__()
        self._shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        grad = grad_out.reshape(self._shape)
        self._shape = None
        return grad


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        grad = grad_out * self._mask
        self._mask = None
        return grad


class Identity(Module):
    """No-op layer (useful as a placeholder in slimmable architectures)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
