"""Trainable and stateless layers with explicit forward/backward passes."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.perf.workspace import Workspace

__all__ = [
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
]


class Conv2d(Module):
    """Dense 2-D convolution over NCHW inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        self.has_bias = bias
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            self.bias = Parameter(init.uniform_bias((out_channels,), fan_in, rng))
        self._cache = None
        #: reusable per-batch buffers (im2col columns, padded input, col2im
        #: scatter target) — owned by the module so their lifetime and
        #: thread-affinity mirror the model instance
        self._ws = Workspace()

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.has_bias else None
        out, self._cache = F.conv2d_forward(x, self.weight.data, bias, self.stride, self.padding, self._ws)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_x, grad_w, grad_b = F.conv2d_backward(grad_out, self._cache, self._ws)
        self.weight.grad += grad_w
        if self.has_bias:
            self.bias.grad += grad_b
        self._cache = None
        return grad_x


class DepthwiseConv2d(Module):
    """Depthwise 2-D convolution (one filter per channel), as in MobileNetV2."""

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if channels <= 0:
            raise ValueError("channel count must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (channels, 1, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        self.has_bias = bias
        if bias:
            fan_in = kernel_size * kernel_size
            self.bias = Parameter(init.uniform_bias((channels,), fan_in, rng))
        self._cache = None
        self._ws = Workspace()

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.has_bias else None
        out, self._cache = F.depthwise_conv2d_forward(
            x, self.weight.data, bias, self.stride, self.padding, self._ws
        )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_x, grad_w, grad_b = F.depthwise_conv2d_backward(grad_out, self._cache, self._ws)
        self.weight.grad += grad_w
        if self.has_bias:
            self.bias.grad += grad_b
        self._cache = None
        return grad_x


class Linear(Module):
    """Fully connected layer: ``y = x @ W.T + b`` with ``W`` of shape (out, in)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.has_bias = bias
        if bias:
            self.bias = Parameter(init.uniform_bias((out_features,), in_features, rng))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x
        out = x @ self.weight.data.T
        if self.has_bias:
            out += self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache
        self.weight.grad += grad_out.T @ x
        if self.has_bias:
            self.bias.grad += grad_out.sum(axis=0)
        self._cache = None
        return grad_out @ self.weight.data


class BatchNorm2d(Module):
    """Batch normalisation over the channel dimension of NCHW tensors.

    Hot-path notes: the normalised activations and the input gradient are
    computed into module-owned workspace buffers (one fresh output
    allocation per forward, zero per backward), the running statistics
    update in place, and the backward reductions run as ``einsum``
    contractions that never materialise the element-wise products.  The
    layer never mutates its input.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", init.zeros((num_features,)))
        self.register_buffer("running_var", init.ones((num_features,)))
        self._cache = None
        self._ws = Workspace()

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.num_features:
            raise ValueError(f"expected {self.num_features} channels, got {x.shape[1]}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            running_mean = self._buffers["running_mean"]
            running_var = self._buffers["running_var"]
            running_mean *= 1 - self.momentum
            running_mean += self.momentum * mean
            running_var *= 1 - self.momentum
            running_var += self.momentum * var
        else:
            # inference: fold mean/var/gamma/beta into one per-channel affine
            inv_std = 1.0 / np.sqrt(self._buffers["running_var"] + self.eps)
            scale = self.weight.data * inv_std
            shift = self.bias.data - self._buffers["running_mean"] * scale
            out = x * scale[None, :, None, None]
            out += shift[None, :, None, None]
            return out
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = self._ws.get(("x_hat", x.shape), x.shape, x.dtype)
        np.subtract(x, mean[None, :, None, None], out=x_hat, casting="unsafe")
        x_hat *= inv_std[None, :, None, None]
        out = self.weight.data[None, :, None, None] * x_hat
        out += self.bias.data[None, :, None, None]
        if self.training:
            self._cache = (x_hat, inv_std)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or module in eval mode)")
        x_hat, inv_std = self._cache
        n, c, h, w = grad_out.shape
        m = n * h * w

        # einsum contracts without materialising grad_out * x_hat; each
        # O(N*C*H*W) reduction is computed exactly once
        dot = np.einsum("nchw,nchw->c", grad_out, x_hat, optimize=True)
        grad_sum = grad_out.sum(axis=(0, 2, 3))
        self.weight.grad += dot
        self.bias.grad += grad_sum

        gamma = self.weight.data
        # channel-wise sums of grad_xhat (= gamma * grad_out) and of
        # grad_xhat * x_hat, without the (N, C, H, W) temporaries
        sum_grad = gamma * grad_sum
        sum_grad_xhat = gamma * dot

        # grad_x = inv_std/m * (m * gamma * grad_out - sum_grad - x_hat * sum_grad_xhat)
        # assembled in place: x_hat (the cached workspace buffer) is dead
        # after this call, so it doubles as the output buffer
        grad_x = x_hat
        grad_x *= -sum_grad_xhat[None, :, None, None]
        grad_x -= sum_grad[None, :, None, None]
        scaled = self._ws.get(("grad_scaled", grad_out.shape), grad_out.shape, grad_out.dtype)
        np.multiply(grad_out, (m * gamma)[None, :, None, None], out=scaled, casting="unsafe")
        grad_x += scaled
        grad_x *= (inv_std / m)[None, :, None, None]
        self._cache = None
        return grad_x


class ReLU(Module):
    """Rectified linear unit.

    Activations run in place by default: the input is always a dead
    intermediate (a conv/BN/linear output) in this framework, so
    clipping it directly saves a full-size allocation per call — and the
    backward pass likewise masks ``grad_out`` in place, because the
    producing layer never reads a gradient it has already handed down.
    Pass ``inplace=False`` when feeding tensors you want preserved.
    """

    def __init__(self, inplace: bool = True) -> None:
        super().__init__()
        self.inplace = inplace
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training:
            # inference never runs backward: skip the mask entirely
            self._mask = None
            if not self.inplace:
                return np.maximum(x, 0.0)
            np.maximum(x, 0.0, out=x)
            return x
        self._mask = x > 0
        if not self.inplace:
            return x * self._mask
        np.maximum(x, 0.0, out=x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        mask, self._mask = self._mask, None
        if not self.inplace:
            return grad_out * mask
        np.multiply(grad_out, mask, out=grad_out)
        return grad_out


class ReLU6(Module):
    """ReLU clipped at 6 (MobileNetV2's activation).

    In place by default, with the same ownership contract as
    :class:`ReLU`.
    """

    def __init__(self, inplace: bool = True) -> None:
        super().__init__()
        self.inplace = inplace
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training:
            self._mask = None
            if not self.inplace:
                return np.clip(x, 0.0, 6.0)
            np.clip(x, 0.0, 6.0, out=x)
            return x
        self._mask = (x > 0) & (x < 6.0)
        if not self.inplace:
            return np.clip(x, 0.0, 6.0)
        np.clip(x, 0.0, 6.0, out=x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        mask, self._mask = self._mask, None
        if not self.inplace:
            return grad_out * mask
        np.multiply(grad_out, mask, out=grad_out)
        return grad_out


class MaxPool2d(Module):
    """Max pooling (square window, no padding)."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache = None
        self._ws = Workspace()

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, cache = F.maxpool2d_forward(
            x, self.kernel_size, self.stride, self._ws, need_argmax=self.training
        )
        self._cache = cache if self.training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad = F.maxpool2d_backward(grad_out, self._cache)
        self._cache = None
        return grad


class AvgPool2d(Module):
    """Average pooling (square window, no padding)."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._cache = F.avgpool2d_forward(x, self.kernel_size, self.stride)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad = F.avgpool2d_backward(grad_out, self._cache)
        self._cache = None
        return grad


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent, producing (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._shape
        grad = np.broadcast_to(grad_out[:, :, None, None], self._shape) / (h * w)
        self._shape = None
        return grad.copy()


class Flatten(Module):
    """Reshape NCHW activations to (N, C*H*W), channel-major."""

    def __init__(self) -> None:
        super().__init__()
        self._shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        grad = grad_out.reshape(self._shape)
        self._shape = None
        return grad


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        grad = grad_out * self._mask
        self._mask = None
        return grad


class Identity(Module):
    """No-op layer (useful as a placeholder in slimmable architectures)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
