"""Module system: parameters, buffers, state dicts and composition.

The interface intentionally mirrors a small subset of ``torch.nn.Module`` so
the federated-learning code (which dispatches, prunes and aggregates
*state dicts*) reads like its PyTorch counterpart.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn.dtype import resolve_dtype

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter:
    """A trainable tensor: value plus accumulated gradient.

    Floating input keeps its dtype (initialisers already produce the
    stack dtype; double-precision tests build under a ``float64``
    override); non-floating input is cast to the stack dtype.
    """

    __slots__ = ("data", "grad")

    def __init__(self, data: np.ndarray):
        data = np.asarray(data)
        if data.dtype.kind != "f":
            data = data.astype(resolve_dtype())
        self.data = data
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses register parameters, buffers and child modules simply by
    assigning them as attributes; ``named_parameters``/``state_dict`` walk
    the attribute tree in insertion order.  Layers implement ``forward`` and
    ``backward``; ``backward`` receives the gradient of the loss with
    respect to the layer output and must return the gradient with respect to
    the layer input while accumulating parameter gradients in place.
    """

    def __init__(self) -> None:
        self._parameters: OrderedDict[str, Parameter] = OrderedDict()
        self._buffers: OrderedDict[str, np.ndarray] = OrderedDict()
        self._modules: OrderedDict[str, Module] = OrderedDict()
        self.training = True

    # -- attribute registration ------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable tensor that is part of ``state_dict``."""
        value = np.asarray(value)
        if value.dtype.kind != "f":
            value = value.astype(resolve_dtype())
        self._buffers[name] = value
        object.__setattr__(self, name, self._buffers[name])

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place (keeps state_dict in sync)."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} is not registered")
        self._buffers[name] = np.asarray(value, dtype=self._buffers[name].dtype)
        object.__setattr__(self, name, self._buffers[name])

    # -- traversal ---------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), buf
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_buffers(child_prefix)

    # -- state dict ----------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return a copy of all parameters and buffers keyed by dotted name."""
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters and buffers from ``state``.

        With ``strict=True`` every key must be present with a matching
        shape; with ``strict=False`` missing keys are skipped (used when a
        pruned submodel's weights are loaded into a larger model for
        evaluation is *not* allowed — shape mismatches always raise).
        """
        own_params = dict(self.named_parameters())
        own_buffers = self._named_buffer_owners()
        missing = []
        for name, param in own_params.items():
            if name not in state:
                missing.append(name)
                continue
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter {name!r}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            # copy into the existing tensor: keeps the parameter's dtype and
            # lets cached models reload weights without reallocating
            np.copyto(param.data, value, casting="unsafe")
        for name, (owner, local) in own_buffers.items():
            if name not in state:
                missing.append(name)
                continue
            value = np.asarray(state[name])
            if value.shape != owner._buffers[local].shape:
                raise ValueError(
                    f"shape mismatch for buffer {name!r}: "
                    f"expected {owner._buffers[local].shape}, got {value.shape}"
                )
            np.copyto(owner._buffers[local], value, casting="unsafe")
        if strict:
            unexpected = [k for k in state if k not in own_params and k not in own_buffers]
            if missing or unexpected:
                raise KeyError(f"load_state_dict mismatch: missing={missing}, unexpected={unexpected}")

    def _named_buffer_owners(self) -> dict[str, tuple["Module", str]]:
        owners: dict[str, tuple[Module, str]] = {}
        for prefix, module in self.named_modules():
            for local in module._buffers:
                full = f"{prefix}.{local}" if prefix else local
                owners[full] = (module, local)
        return owners

    # -- training / gradients -------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- computation -------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """Run child modules in order; backward runs them in reverse."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: list[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            setattr(self, name, module)
            self._order.append(name)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        setattr(self, name, module)
        self._order.append(name)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self:
            x = module(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for module in reversed(list(self)):
            grad_out = module.backward(grad_out)
        return grad_out
