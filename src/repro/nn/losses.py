"""Loss functions.

Each loss exposes ``forward(logits, targets) -> float`` and
``backward() -> grad_logits``; the gradient is averaged over the batch so it
can be fed straight into ``model.backward``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F

__all__ = ["CrossEntropyLoss", "KLDivergenceLoss", "accuracy"]


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels."""

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"expected 2-D logits, got shape {logits.shape}")
        num_classes = logits.shape[1]
        log_probs = F.log_softmax(logits, axis=1)
        # softmax = exp(log_softmax) exactly — one pass instead of a second
        # stabilised softmax over the logits
        probs = np.exp(log_probs)
        targets = np.asarray(targets, dtype=np.int64)
        if targets.size and (targets.min() < 0 or targets.max() >= num_classes):
            raise ValueError(f"labels out of range for {num_classes} classes")
        if self.label_smoothing > 0.0:
            eps = self.label_smoothing
            target_dist = F.one_hot(targets, num_classes) * (1.0 - eps) + eps / num_classes
            loss = -(target_dist * log_probs).sum(axis=1).mean()
            self._cache = (probs, target_dist, None)
            return float(loss)
        # hard labels: gather the target log-probabilities directly, no
        # one-hot materialisation
        picked = log_probs[np.arange(logits.shape[0], dtype=np.intp), targets]
        self._cache = (probs, None, targets)
        return float(-picked.mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, target_dist, targets = self._cache
        self._cache = None
        if target_dist is not None:
            return (probs - target_dist) / probs.shape[0]
        grad = probs  # freshly exp'd in forward: safe to consume in place
        grad[np.arange(grad.shape[0], dtype=np.intp), targets] -= 1.0
        grad /= grad.shape[0]
        return grad

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)


class KLDivergenceLoss:
    """KL(teacher || student) between softened distributions.

    Used by the ScaleFL baseline for self-distillation between the deepest
    exit (teacher) and earlier exits (students).  Only the student logits
    receive a gradient; the teacher distribution is treated as a constant.
    """

    def __init__(self, temperature: float = 1.0):
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, student_logits: np.ndarray, teacher_logits: np.ndarray) -> float:
        t = self.temperature
        teacher = F.softmax(teacher_logits / t, axis=1)
        student_log = F.log_softmax(student_logits / t, axis=1)
        teacher_log = F.log_softmax(teacher_logits / t, axis=1)
        loss = (teacher * (teacher_log - student_log)).sum(axis=1).mean() * (t * t)
        self._cache = (F.softmax(student_logits / t, axis=1), teacher)
        return float(loss)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        student, teacher = self._cache
        self._cache = None
        # d/d(student_logits) of KL with the temperature-squared scaling.
        return (student - teacher) * self.temperature / student.shape[0]

    def __call__(self, student_logits: np.ndarray, teacher_logits: np.ndarray) -> float:
        return self.forward(student_logits, teacher_logits)


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy of logits against integer labels."""
    if logits.shape[0] == 0:
        return 0.0
    predictions = logits.argmax(axis=1)
    return float((predictions == np.asarray(targets)).mean())
