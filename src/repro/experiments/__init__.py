"""Experiment harness: configurations, runners and report rendering."""

from repro.experiments.reporting import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    format_table,
    render_accuracy_table,
    render_learning_curves,
    render_waste_table,
)
from repro.experiments.runner import ALL_ALGORITHM_NAMES, AlgorithmResult, run_algorithm, run_comparison
from repro.experiments.scaling import SCALES, ExperimentScale, get_scale
from repro.experiments.settings import (
    DATASET_BUILDERS,
    ExperimentSetting,
    PreparedExperiment,
    paper_pool_config,
    prepare_experiment,
    vgg16_table1_settings,
)

__all__ = [
    "ExperimentSetting",
    "PreparedExperiment",
    "prepare_experiment",
    "paper_pool_config",
    "vgg16_table1_settings",
    "DATASET_BUILDERS",
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "AlgorithmResult",
    "run_algorithm",
    "run_comparison",
    "ALL_ALGORITHM_NAMES",
    "format_table",
    "render_accuracy_table",
    "render_learning_curves",
    "render_waste_table",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
]
