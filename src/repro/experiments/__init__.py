"""Experiment harness: configurations, runners and report rendering.

The runners are registry-driven (see :mod:`repro.api.registry`):
``run_algorithm`` instantiates any registered algorithm from its declared
spec, and ``run_comparison`` prepares the experiment once and runs every
algorithm on the identical snapshot.  Application code should usually go
through :mod:`repro.api` (``ExperimentSession``, ``ExperimentSpec``, the
CLI); this package remains the home of the setting/scale definitions and
of the paper's reference tables.
"""

from repro.experiments.reporting import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    format_table,
    render_accuracy_table,
    render_learning_curves,
    render_waste_table,
)
from repro.experiments.runner import AlgorithmResult, run_algorithm, run_comparison
from repro.experiments.scaling import SCALES, ExperimentScale, get_scale
from repro.experiments.settings import (
    DATASET_BUILDERS,
    ExperimentSetting,
    PreparedExperiment,
    paper_pool_config,
    prepare_experiment,
    vgg16_table1_settings,
)

__all__ = [
    "ExperimentSetting",
    "PreparedExperiment",
    "prepare_experiment",
    "paper_pool_config",
    "vgg16_table1_settings",
    "DATASET_BUILDERS",
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "AlgorithmResult",
    "run_algorithm",
    "run_comparison",
    "ALL_ALGORITHM_NAMES",
    "format_table",
    "render_accuracy_table",
    "render_learning_curves",
    "render_waste_table",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
]


def __getattr__(name: str):
    # ALL_ALGORITHM_NAMES is a live view of the algorithm registry; keep it
    # lazy here too so plugins registered after import are visible
    if name == "ALL_ALGORITHM_NAMES":
        from repro.api.registry import available_algorithms

        return available_algorithms()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
