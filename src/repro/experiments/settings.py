"""Concrete experiment settings mirroring the paper's evaluation section.

This module turns a (dataset, model, distribution, scale) tuple into the
objects the algorithms need: the synthetic dataset pair, the federated
partition, the device profiles, the resource model and the architecture.
It also exposes the paper's Table 1 split settings for VGG16.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig, ModelPoolConfig
from repro.core.serialization import checked_payload
from repro.data.datasets import Dataset, make_cifar10_like, make_cifar100_like, make_femnist_like, make_widar_like
from repro.engine.factory import validate_executor_choice
from repro.data.partition import ClientPartition, partition_dataset
from repro.devices.profiles import DeviceProfile, build_device_profiles
from repro.devices.resources import ResourceModel
from repro.experiments.scaling import ExperimentScale, get_scale
from repro.nn.models import create_architecture
from repro.nn.models.spec import SlimmableArchitecture
from repro.sim.fleet import FleetSimulator
from repro.sim.scenario import get_scenario, validate_scenario_choice

__all__ = [
    "DATASET_BUILDERS",
    "ExperimentSetting",
    "PreparedExperiment",
    "prepare_experiment",
    "vgg16_table1_settings",
    "paper_pool_config",
]

DATASET_BUILDERS = {
    "cifar10": make_cifar10_like,
    "cifar100": make_cifar100_like,
    "femnist": make_femnist_like,
    "widar": make_widar_like,
}

_DATASET_CLASSES = {"cifar10": 10, "cifar100": 100, "femnist": 62, "widar": 22}
_DATASET_CHANNELS = {"cifar10": 3, "cifar100": 3, "femnist": 1, "widar": 1}


@dataclass(frozen=True)
class ExperimentSetting:
    """One cell of the paper's evaluation grid."""

    dataset: str = "cifar10"
    model: str = "vgg16"
    #: "iid", "dirichlet" or "natural"
    distribution: str = "iid"
    alpha: float | None = None
    proportion: str = "4:3:3"
    scale: str = "ci"
    seed: int = 0
    resource_uncertainty: float = 0.1
    #: client-execution engine: "serial", "thread" or "process" (bit-identical)
    executor: str = "serial"
    #: worker count for pool-based executors (None = the usable CPU count)
    max_workers: int | None = None
    #: registered fleet scenario (repro.sim) driving system dynamics, or None
    scenario: str | None = None
    #: weight transport: "delta" (slice download + XOR-delta upload, the
    #: default) or "full" (legacy per-task weight shipping); bit-identical
    transport: str = "delta"
    #: lossy update codec on the uplink ("none", "fp16", "int8", "topk");
    #: see :mod:`repro.engine.codecs` — "none" keeps exact transport
    transport_codec: str = "none"
    overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.dataset not in DATASET_BUILDERS:
            raise ValueError(f"unknown dataset {self.dataset!r}")
        if self.distribution not in {"iid", "dirichlet", "natural"}:
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if self.distribution == "dirichlet" and self.alpha is None:
            raise ValueError("dirichlet distribution requires alpha")
        validate_executor_choice(self.executor, self.max_workers)
        validate_scenario_choice(self.scenario)
        if self.transport not in {"delta", "full"}:
            raise ValueError("transport must be 'delta' or 'full'")
        from repro.engine.codecs import available_codecs

        if self.transport_codec not in available_codecs():
            raise ValueError(
                f"transport_codec must be one of {sorted(available_codecs())}, "
                f"got {self.transport_codec!r}"
            )

    def to_dict(self) -> dict:
        """JSON-friendly representation; round-trips through :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSetting":
        data = checked_payload(cls, payload)
        if "overrides" in data:
            overrides = data["overrides"]
            if not isinstance(overrides, Mapping):
                raise ValueError("overrides must be a mapping of scale fields")
            data["overrides"] = dict(overrides)
        return cls(**data)


@dataclass
class PreparedExperiment:
    """Everything needed to instantiate an algorithm for one setting."""

    setting: ExperimentSetting
    scale: ExperimentScale
    architecture: SlimmableArchitecture
    train_dataset: Dataset
    test_dataset: Dataset
    partition: ClientPartition
    profiles: list[DeviceProfile]
    resource_model: ResourceModel
    federated_config: FederatedConfig
    local_config: LocalTrainingConfig
    pool_config: ModelPoolConfig

    def algorithm_kwargs(self) -> dict:
        """Keyword arguments accepted by every :class:`FederatedAlgorithm`."""
        return {
            "architecture": self.architecture,
            "train_dataset": self.train_dataset,
            "partition": self.partition,
            "test_dataset": self.test_dataset,
            "profiles": self.profiles,
            "federated_config": self.federated_config,
            "local_config": self.local_config,
            "resource_model": self.resource_model,
            "seed": self.setting.seed,
        }

    def adaptivefl_config(self, selection_strategy: str = "rl-cs") -> AdaptiveFLConfig:
        """AdaptiveFL configuration matching this experiment."""
        return AdaptiveFLConfig(
            federated=self.federated_config,
            local=self.local_config,
            pool=self.pool_config,
            selection_strategy=selection_strategy,
        )


def paper_pool_config(architecture: SlimmableArchitecture) -> ModelPoolConfig:
    """The paper's p=3 pool (Table 1) adjusted to the architecture's depth.

    The published start layers (8/6/4) assume the 16-layer VGG16; for
    shallower architectures the start layers are scaled proportionally so
    the pool keeps the same relative fine-grained structure.
    """
    max_layer = architecture.num_prunable_layers()
    if max_layer >= 10:
        start_layers = (8, 6, 4)
        tau = 4
    else:
        top = max(2, max_layer - 1)
        mid = max(1, int(round(top * 0.75)))
        low = max(1, int(round(top * 0.5)))
        if mid >= top:
            mid = top - 1 if top > 1 else top
        if low >= mid:
            low = max(1, mid - 1)
        start_layers = (top, mid, low)
        tau = low
    return ModelPoolConfig(
        models_per_level=3,
        level_width_ratios={"L": 1.0, "M": 0.66, "S": 0.40},
        start_layers=start_layers,
        min_start_layer=tau,
    )


def _build_architecture(setting: ExperimentSetting, scale: ExperimentScale) -> SlimmableArchitecture:
    num_classes = _DATASET_CLASSES[setting.dataset]
    channels = _DATASET_CHANNELS[setting.dataset]
    input_shape = (channels, scale.image_size, scale.image_size)
    kwargs: dict = {
        "num_classes": num_classes,
        "input_shape": input_shape,
        "width_multiplier": scale.width_multiplier,
    }
    if setting.model in {"vgg16", "vgg11"}:
        kwargs["classifier_widths"] = (scale.classifier_width, scale.classifier_width)
    if setting.model == "simple_cnn":
        kwargs["hidden_features"] = scale.classifier_width
    return create_architecture(setting.model, **kwargs)


def prepare_experiment(setting: ExperimentSetting) -> PreparedExperiment:
    """Materialise datasets, partition, devices and configs for one setting."""
    scale = get_scale(setting.scale, **setting.overrides)
    rng = np.random.default_rng(setting.seed)

    architecture = _build_architecture(setting, scale)
    builder = DATASET_BUILDERS[setting.dataset]
    dataset_kwargs: dict = {
        "train_samples": scale.train_samples,
        "test_samples": scale.test_samples,
        "image_size": scale.image_size,
        "seed": setting.seed,
    }
    if setting.dataset == "femnist":
        dataset_kwargs["num_writers"] = max(scale.num_clients, 2)
    if setting.dataset == "widar":
        dataset_kwargs["num_users"] = max(scale.num_clients, 2)
    train_dataset, test_dataset = builder(**dataset_kwargs)

    partition = partition_dataset(
        train_dataset,
        scale.num_clients,
        scheme=setting.distribution,
        rng=rng,
        alpha=setting.alpha,
    )
    if setting.scenario is not None:
        # the scenario's device mix defines the fleet: capacity profiles come
        # from the same deterministic expansion the per-run FleetSimulator uses
        fleet = FleetSimulator(get_scenario(setting.scenario), num_clients=scale.num_clients, seed=setting.seed)
        profiles = fleet.build_profiles()
    else:
        profiles = build_device_profiles(scale.num_clients, setting.proportion, rng)
    resource_model = ResourceModel(
        profiles,
        architecture.parameter_count(),
        uncertainty=setting.resource_uncertainty,
        seed=setting.seed,
    )
    federated_config = FederatedConfig(
        num_rounds=scale.num_rounds,
        clients_per_round=scale.clients_per_round,
        eval_every=scale.eval_every,
        seed=setting.seed,
        executor=setting.executor,
        max_workers=setting.max_workers,
        scenario=setting.scenario,
        transport=setting.transport,
        transport_codec=setting.transport_codec,
    )
    local_config = LocalTrainingConfig(
        local_epochs=scale.local_epochs,
        batch_size=scale.batch_size,
        max_batches_per_epoch=scale.max_batches_per_epoch,
    )
    return PreparedExperiment(
        setting=setting,
        scale=scale,
        architecture=architecture,
        train_dataset=train_dataset,
        test_dataset=test_dataset,
        partition=partition,
        profiles=profiles,
        resource_model=resource_model,
        federated_config=federated_config,
        local_config=local_config,
        pool_config=paper_pool_config(architecture),
    )


def vgg16_table1_settings() -> list[dict]:
    """The paper's Table 1: VGG16 split settings for p = 3.

    Returns one row per pool entry with the pruning configuration and the
    paper-reported sizes, to be compared against the measured sizes by the
    Table 1 benchmark.
    """
    return [
        {"level": "L1", "r_w": 1.00, "start_layer": None, "paper_params_m": 33.65, "paper_flops_m": 333.22, "paper_ratio": 1.00},
        {"level": "M1", "r_w": 0.66, "start_layer": 8, "paper_params_m": 16.81, "paper_flops_m": 272.17, "paper_ratio": 0.50},
        {"level": "M2", "r_w": 0.66, "start_layer": 6, "paper_params_m": 15.41, "paper_flops_m": 239.95, "paper_ratio": 0.46},
        {"level": "M3", "r_w": 0.66, "start_layer": 4, "paper_params_m": 14.84, "paper_flops_m": 203.41, "paper_ratio": 0.44},
        {"level": "S1", "r_w": 0.40, "start_layer": 8, "paper_params_m": 8.39, "paper_flops_m": 239.00, "paper_ratio": 0.25},
        {"level": "S2", "r_w": 0.40, "start_layer": 6, "paper_params_m": 6.48, "paper_flops_m": 191.31, "paper_ratio": 0.19},
        {"level": "S3", "r_w": 0.40, "start_layer": 4, "paper_params_m": 5.67, "paper_flops_m": 139.07, "paper_ratio": 0.17},
    ]
