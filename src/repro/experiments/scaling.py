"""Experiment scale presets.

The paper trains VGG16/ResNet18 for up to 1000 rounds on 100-500 clients
with a GPU; this repository's substrate is pure numpy on CPU, so every
experiment can be run at three scales:

* ``ci`` — seconds-scale configurations used by the test-suite and the
  pytest benchmarks (tiny models, few clients, few rounds),
* ``small`` — minutes-scale configurations that already show the paper's
  qualitative orderings,
* ``paper`` — the paper's nominal settings (100/180 clients, 10%
  participation, full-width models); provided for completeness and only
  practical on a fast machine with patience.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ExperimentScale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity against wall-clock time."""

    name: str
    #: dataset synthesis
    train_samples: int
    test_samples: int
    image_size: int
    #: model capacity
    width_multiplier: float
    classifier_width: int
    #: federated loop
    num_clients: int
    clients_per_round: int
    num_rounds: int
    local_epochs: int
    batch_size: int
    eval_every: int
    #: cap on batches per local epoch (None = no cap); keeps CI runs bounded
    max_batches_per_epoch: int | None = None

    def with_overrides(self, **overrides) -> "ExperimentScale":
        """Copy of the scale with selected fields replaced."""
        return replace(self, **overrides)


SCALES: dict[str, ExperimentScale] = {
    "ci": ExperimentScale(
        name="ci",
        train_samples=600,
        test_samples=240,
        image_size=16,
        width_multiplier=0.25,
        classifier_width=64,
        num_clients=10,
        clients_per_round=4,
        num_rounds=6,
        local_epochs=1,
        batch_size=20,
        eval_every=3,
        max_batches_per_epoch=4,
    ),
    "small": ExperimentScale(
        name="small",
        train_samples=4_000,
        test_samples=1_000,
        image_size=16,
        width_multiplier=0.5,
        classifier_width=128,
        num_clients=30,
        clients_per_round=6,
        num_rounds=40,
        local_epochs=2,
        batch_size=32,
        eval_every=5,
        max_batches_per_epoch=None,
    ),
    "paper": ExperimentScale(
        name="paper",
        train_samples=50_000,
        test_samples=10_000,
        image_size=32,
        width_multiplier=1.0,
        classifier_width=4096,
        num_clients=100,
        clients_per_round=10,
        num_rounds=1000,
        local_epochs=5,
        batch_size=50,
        eval_every=10,
        max_batches_per_epoch=None,
    ),
}


def get_scale(name: str, **overrides) -> ExperimentScale:
    """Look up a preset by name and optionally override fields."""
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; available: {sorted(SCALES)}")
    scale = SCALES[name]
    return scale.with_overrides(**overrides) if overrides else scale
