"""End-to-end experiment execution.

``run_algorithm`` instantiates one algorithm on a prepared experiment and
trains it; ``run_comparison`` does the same for a list of algorithms on
the *same* data/partition/devices so the comparison is paired, as in the
paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import ALGORITHMS
from repro.core.history import TrainingHistory
from repro.core.server import AdaptiveFL
from repro.devices.testbed import TestbedSimulator
from repro.experiments.settings import ExperimentSetting, PreparedExperiment, prepare_experiment

__all__ = ["AlgorithmResult", "run_algorithm", "run_comparison", "ALL_ALGORITHM_NAMES"]

ALL_ALGORITHM_NAMES = ("all_large", "decoupled", "heterofl", "scalefl", "adaptivefl")


@dataclass
class AlgorithmResult:
    """Summary of one algorithm's run on one experiment setting."""

    algorithm: str
    history: TrainingHistory
    full_accuracy: float
    avg_accuracy: float
    communication_waste: float

    @classmethod
    def from_history(cls, algorithm: str, history: TrainingHistory) -> "AlgorithmResult":
        return cls(
            algorithm=algorithm,
            history=history,
            full_accuracy=history.final_accuracy("full"),
            avg_accuracy=history.final_accuracy("avg"),
            communication_waste=history.mean_communication_waste(),
        )


def run_algorithm(
    name: str,
    prepared: PreparedExperiment,
    selection_strategy: str = "rl-cs",
    num_rounds: int | None = None,
    testbed: TestbedSimulator | None = None,
) -> AlgorithmResult:
    """Train one algorithm (``"adaptivefl"`` or a baseline name)."""
    kwargs = prepared.algorithm_kwargs()
    if testbed is not None:
        kwargs["testbed"] = testbed
    if name == "adaptivefl":
        algorithm = AdaptiveFL(
            algorithm_config=prepared.adaptivefl_config(selection_strategy),
            pool_config=prepared.pool_config,
            **kwargs,
        )
    elif name in ALGORITHMS:
        if name != "heterofl":
            kwargs["pool_config"] = prepared.pool_config
        algorithm = ALGORITHMS[name](**kwargs)
    else:
        raise KeyError(f"unknown algorithm {name!r}; available: {ALL_ALGORITHM_NAMES}")
    history = algorithm.run(num_rounds=num_rounds)
    label = name if name != "adaptivefl" or selection_strategy == "rl-cs" else f"adaptivefl+{selection_strategy}"
    return AlgorithmResult.from_history(label, history)


def run_comparison(
    setting: ExperimentSetting,
    algorithms: tuple[str, ...] = ALL_ALGORITHM_NAMES,
    num_rounds: int | None = None,
    testbed: TestbedSimulator | None = None,
) -> dict[str, AlgorithmResult]:
    """Run several algorithms on the identical prepared experiment."""
    results: dict[str, AlgorithmResult] = {}
    for name in algorithms:
        prepared = prepare_experiment(setting)
        results[name] = run_algorithm(name, prepared, num_rounds=num_rounds, testbed=testbed)
    return results
