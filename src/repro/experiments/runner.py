"""End-to-end experiment execution, driven purely by the algorithm registry.

``run_algorithm`` looks the algorithm up in :mod:`repro.api.registry` and
instantiates it from its declared :class:`~repro.api.registry.AlgorithmSpec`
— no per-algorithm branches live here.  ``run_comparison`` validates every
name against the registry *before* preparing any data, then prepares the
experiment **once** and runs every algorithm on the identical snapshot
(same dataset, partition and device profiles), so comparisons are paired
as in the paper's tables and N× faster than re-preparing per algorithm.
All shared prepared objects are read-only by construction: each algorithm
builds its own clients, pool and global state, and the resource model
draws are keyed on (seed, client, round), independent of run order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.api.callbacks import Callback
from repro.api.registry import available_algorithms, get_algorithm, validate_algorithm_names
from repro.core.history import TrainingHistory
from repro.devices.testbed import TestbedSimulator
from repro.experiments.settings import ExperimentSetting, PreparedExperiment, prepare_experiment

__all__ = ["AlgorithmResult", "run_algorithm", "run_comparison", "ALL_ALGORITHM_NAMES"]


def __getattr__(name: str):
    # live registry view (PEP 562): reflects plugins registered after import
    if name == "ALL_ALGORITHM_NAMES":
        return available_algorithms()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


#: Callbacks argument accepted by the runners: ready instances, or zero-arg
#: factories (recommended for stateful callbacks shared across a comparison).
CallbackArg = Callback | Callable[[], Callback]


def _materialize_callbacks(callbacks: Sequence[CallbackArg] | None) -> list[Callback] | None:
    if callbacks is None:
        return None
    return [cb if isinstance(cb, Callback) else cb() for cb in callbacks]


@dataclass
class AlgorithmResult:
    """Summary of one algorithm's run on one experiment setting."""

    algorithm: str
    history: TrainingHistory
    full_accuracy: float
    avg_accuracy: float
    communication_waste: float
    #: ``Profiler.summary()`` of the run when profiling was requested
    profile: dict | None = None

    @classmethod
    def from_history(
        cls, algorithm: str, history: TrainingHistory, profile: dict | None = None
    ) -> "AlgorithmResult":
        return cls(
            algorithm=algorithm,
            history=history,
            full_accuracy=history.final_accuracy("full"),
            avg_accuracy=history.final_accuracy("avg"),
            communication_waste=history.mean_communication_waste(),
            profile=profile,
        )

    def to_dict(self) -> dict:  # reprolint: disable=RPL004  (one-way result output)
        """JSON-friendly summary plus the full round-by-round history."""
        payload = {
            "algorithm": self.algorithm,
            "full_accuracy": self.full_accuracy,
            "avg_accuracy": self.avg_accuracy,
            "communication_waste": self.communication_waste,
            "history": self.history.to_dict(),
        }
        if self.profile is not None:
            payload["profile"] = self.profile
        return payload


def run_algorithm(
    name: str,
    prepared: PreparedExperiment,
    selection_strategy: str | None = None,
    num_rounds: int | None = None,
    testbed: TestbedSimulator | None = None,
    scenario: str | None = None,
    callbacks: Sequence[CallbackArg] | None = None,
    profile: bool = False,
    store: "object | str | None" = None,
    resume: bool = False,
    checkpoint_every: int = 1,
    executor: "object | None" = None,
) -> AlgorithmResult:
    """Train one registered algorithm on a prepared experiment.

    ``scenario`` (a registered :mod:`repro.sim` scenario name) overlays the
    scenario's *dynamics* — timing, availability, dropouts, deadlines —
    on this one run; each run builds its own stateful
    :class:`~repro.sim.fleet.FleetSimulator`.  The prepared experiment's
    capacity profiles are kept as-is (useful for paired what-if runs on an
    identical snapshot); to let the scenario's device mix also define the
    capacity profiles, put it in ``ExperimentSetting.scenario`` (or use
    :meth:`repro.api.session.ExperimentSession.with_scenario`) before
    preparing.

    ``store`` (a :class:`repro.store.RunStore` or a directory path)
    persists a checkpoint every ``checkpoint_every`` rounds and the final
    history under the run's canonical key.  With ``resume=True`` a
    completed run returns its stored result without training, and a
    partially checkpointed run restores its latest checkpoint and trains
    only the remaining rounds — bit-identically to an uninterrupted run.

    ``executor`` injects a pre-built, caller-owned executor (see
    :meth:`~repro.core.fl_base.FederatedAlgorithm.set_executor`) — the
    run uses it but never shuts it down, so ``repro serve`` can keep one
    :class:`~repro.serve.executor.RemoteExecutor` (and its connected
    clients) alive across several algorithms.
    """
    spec = get_algorithm(name)
    if store is None:
        algorithm = spec.build(prepared, selection_strategy=selection_strategy, testbed=testbed, scenario=scenario)
        if executor is not None:
            algorithm.set_executor(executor)  # type: ignore[arg-type]
        history = algorithm.run(
            num_rounds=num_rounds, callbacks=_materialize_callbacks(callbacks), profile=profile
        )
        summary = algorithm.profiler.summary() if profile else None
        return AlgorithmResult.from_history(spec.run_label(selection_strategy), history, profile=summary)

    # deferred import: repro.store sits above the runner in the layering
    from repro.store.keys import resolve_num_rounds, run_key
    from repro.store.runstore import RunRecorder, RunStore

    if testbed is not None:
        raise ValueError(
            "the experiment store cannot key runs on an ad-hoc testbed; use the "
            "'paper_testbed' scenario instead (it reproduces the testbed clock exactly)"
        )
    if not isinstance(store, RunStore):
        store = RunStore(store)
    key = run_key(
        prepared.setting,
        name,
        selection_strategy=selection_strategy,
        num_rounds=num_rounds,
        scenario_override=scenario,
    )
    total_rounds = resolve_num_rounds(prepared.setting, num_rounds)
    label = spec.run_label(selection_strategy)
    entry = store.begin_run(key)
    if resume and entry.completed:
        return AlgorithmResult.from_history(label, store.load_history(entry.run_id))

    algorithm = spec.build(prepared, selection_strategy=selection_strategy, scenario=scenario)
    if executor is not None:
        algorithm.set_executor(executor)  # type: ignore[arg-type]
    completed = 0
    if resume:
        checkpoint = store.latest_checkpoint(entry.run_id)
        if checkpoint is not None:
            algorithm.restore_checkpoint(checkpoint)
            completed = len(algorithm.history)
            if checkpoint.stop_reason is not None:
                # the run had already stopped early when this checkpoint was
                # written — the crash merely lost the completion marker;
                # training past the stop would diverge from the original run
                store.finish_run(entry.run_id, algorithm.history, stop_reason=checkpoint.stop_reason)
                return AlgorithmResult.from_history(label, algorithm.history)
    if completed >= total_rounds:
        # every round is already checkpointed; only the completion marker was lost
        store.finish_run(entry.run_id, algorithm.history, stop_reason=None)
        return AlgorithmResult.from_history(label, algorithm.history)
    recorder = RunRecorder(store, entry.run_id, every=checkpoint_every)
    run_callbacks = (_materialize_callbacks(callbacks) or []) + [recorder]
    history = algorithm.run(
        num_rounds=total_rounds - completed, callbacks=run_callbacks, profile=profile
    )
    store.finish_run(entry.run_id, history, stop_reason=algorithm.stop_reason)
    summary = algorithm.profiler.summary() if profile else None
    return AlgorithmResult.from_history(label, history, profile=summary)


def run_comparison(
    setting: ExperimentSetting,
    algorithms: Iterable[str] | None = None,
    num_rounds: int | None = None,
    testbed: TestbedSimulator | None = None,
    scenario: str | None = None,
    callbacks: Sequence[CallbackArg] | None = None,
) -> dict[str, AlgorithmResult]:
    """Run several algorithms on the *same* prepared experiment (paired)."""
    names = validate_algorithm_names(algorithms if algorithms is not None else available_algorithms())
    prepared = prepare_experiment(setting)
    return {
        name: run_algorithm(
            name, prepared, num_rounds=num_rounds, testbed=testbed, scenario=scenario, callbacks=callbacks
        )
        for name in names
    }
