"""Text rendering of the paper's tables and figures plus paper-reported numbers.

Each ``render_*`` helper produces the rows/series the corresponding table
or figure of the paper reports, so benchmark output can be compared line
by line with the publication.  ``PAPER_TABLE2`` etc. hold the published
numbers used in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "format_table",
    "render_accuracy_table",
    "render_learning_curves",
    "render_waste_table",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(value) for value in column) for column in columns]
    lines = []
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(value).ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def render_accuracy_table(results: Mapping[str, object], title: str = "") -> str:
    """Table-2-style rows: algorithm, avg accuracy, full accuracy."""
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                f"{getattr(result, 'avg_accuracy', float('nan')) * 100:.2f}",
                f"{getattr(result, 'full_accuracy', float('nan')) * 100:.2f}",
            ]
        )
    table = format_table(["algorithm", "avg (%)", "full (%)"], rows)
    return f"{title}\n{table}" if title else table


def render_learning_curves(results: Mapping[str, object], kind: str = "avg") -> str:
    """Figure-2-style series: per-algorithm (round, accuracy) points."""
    lines = []
    for name, result in results.items():
        history = getattr(result, "history", result)
        rounds, values = history.accuracy_curve(kind)
        series = ", ".join(f"({r}, {v * 100:.1f})" for r, v in zip(rounds, values))
        lines.append(f"{name}: {series}")
    return "\n".join(lines)


def render_waste_table(results: Mapping[str, object]) -> str:
    """Figure-5a-style rows: algorithm and mean communication-waste rate."""
    rows = []
    for name, result in results.items():
        waste = getattr(result, "communication_waste", None)
        if waste is None:
            history = getattr(result, "history", result)
            waste = history.mean_communication_waste()
        rows.append([name, f"{waste * 100:.2f}"])
    return format_table(["algorithm", "communication waste (%)"], rows)


#: Paper Table 2 (test accuracy %, avg/full) — VGG16 and ResNet18 rows.
PAPER_TABLE2: dict[str, dict[str, dict[str, tuple[float | None, float]]]] = {
    "vgg16": {
        "cifar10-iid": {
            "all_large": (None, 79.76),
            "decoupled": (75.02, 69.80),
            "heterofl": (77.98, 74.96),
            "scalefl": (79.94, 78.12),
            "adaptivefl": (82.97, 83.14),
        },
        "cifar10-a0.6": {
            "all_large": (None, 77.29),
            "decoupled": (72.95, 67.58),
            "heterofl": (75.18, 72.69),
            "scalefl": (76.08, 75.07),
            "adaptivefl": (81.12, 81.31),
        },
        "cifar10-a0.3": {
            "all_large": (None, 74.95),
            "decoupled": (69.11, 62.91),
            "heterofl": (71.18, 67.59),
            "scalefl": (71.71, 70.42),
            "adaptivefl": (78.85, 78.99),
        },
        "cifar100-iid": {
            "all_large": (None, 40.71),
            "decoupled": (33.66, 26.67),
            "heterofl": (32.22, 28.13),
            "scalefl": (31.86, 32.17),
            "adaptivefl": (40.61, 40.93),
        },
        "femnist": {
            "all_large": (None, 85.21),
            "decoupled": (78.45, 70.13),
            "heterofl": (77.69, 71.75),
            "scalefl": (71.58, 67.36),
            "adaptivefl": (87.38, 88.13),
        },
    },
    "resnet18": {
        "cifar10-iid": {
            "all_large": (None, 68.37),
            "decoupled": (63.23, 55.56),
            "heterofl": (70.44, 65.37),
            "scalefl": (76.34, 76.51),
            "adaptivefl": (77.14, 77.20),
        },
        "cifar100-iid": {
            "all_large": (None, 35.08),
            "decoupled": (24.58, 22.35),
            "heterofl": (30.43, 27.74),
            "scalefl": (40.30, 40.46),
            "adaptivefl": (41.09, 41.15),
        },
        "femnist": {
            "all_large": (None, 83.94),
            "decoupled": (74.37, 65.20),
            "heterofl": (77.50, 69.35),
            "scalefl": (83.64, 83.79),
            "adaptivefl": (87.11, 87.30),
        },
    },
}

#: Paper Table 3 (CIFAR-10, VGG16): accuracy (avg/full) per device proportion.
PAPER_TABLE3: dict[str, dict[str, tuple[float | None, float]]] = {
    "4:3:3": {
        "all_large": (None, 79.76),
        "heterofl": (77.98, 74.96),
        "scalefl": (79.94, 78.12),
        "adaptivefl": (82.95, 83.14),
    },
    "8:1:1": {
        "all_large": (None, 79.76),
        "heterofl": (72.43, 64.44),
        "scalefl": (75.89, 72.03),
        "adaptivefl": (81.62, 81.93),
    },
    "1:8:1": {
        "all_large": (None, 79.76),
        "heterofl": (75.94, 65.96),
        "scalefl": (78.40, 72.30),
        "adaptivefl": (82.78, 82.89),
    },
    "1:1:8": {
        "all_large": (None, 79.76),
        "heterofl": (81.26, 81.12),
        "scalefl": (82.55, 82.81),
        "adaptivefl": (82.82, 83.24),
    },
}

#: Paper Table 4 (ablation of fine-grained pruning, "full" accuracy).
PAPER_TABLE4: dict[str, dict[str, dict[str, float]]] = {
    "cifar10": {
        "vgg16": {"coarse-iid": 80.10, "fine-iid": 83.14, "coarse-a0.3": 74.27, "fine-a0.3": 78.99},
        "resnet18": {"coarse-iid": 72.43, "fine-iid": 77.20, "coarse-a0.3": 66.07, "fine-a0.3": 70.97},
    },
    "cifar100": {
        "vgg16": {"coarse-iid": 38.91, "fine-iid": 40.93, "coarse-a0.3": 39.29, "fine-a0.3": 41.17},
        "resnet18": {"coarse-iid": 31.77, "fine-iid": 41.15, "coarse-a0.3": 34.73, "fine-a0.3": 39.65},
    },
}
