"""Table 5 + Figure 6 — the (simulated) real test-bed experiment.

17 devices (4 Raspberry Pi 4B, 10 Jetson Nano, 3 Jetson Xavier AGX) train
a MobileNetV2-lite on a Widar-like gesture dataset; accuracy is reported
against simulated wall-clock time.  The qualitative claim is that
AdaptiveFL reaches higher accuracy than HeteroFL/ScaleFL within the same
time budget.
"""

import numpy as np

from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig, ModelPoolConfig
from repro.core.server import AdaptiveFL
from repro.baselines import HeteroFL, ScaleFL
from repro.data.datasets import make_widar_like
from repro.data.partition import natural_partition
from repro.devices.resources import ResourceModel
from repro.devices.testbed import TESTBED_DEVICE_SPECS, TestbedSimulator
from repro.experiments import format_table
from repro.nn.models import SlimmableMobileNetV2

from common import once

ROUNDS = 5


def _build_testbed_experiment(seed=0):
    arch = SlimmableMobileNetV2(
        num_classes=22, input_shape=(1, 16, 16), width_multiplier=0.25, stem_channels=8, head_channels=32
    )
    train, test = make_widar_like(num_users=17, train_samples=850, test_samples=220, image_size=16, seed=seed)
    testbed = TestbedSimulator()
    profiles = testbed.build_profiles(np.random.default_rng(seed))
    partition = natural_partition(train, 17, np.random.default_rng(seed))
    resource_model = ResourceModel(profiles, arch.parameter_count(), uncertainty=0.1, seed=seed)
    federated = FederatedConfig(num_rounds=ROUNDS, clients_per_round=10, eval_every=2)
    local = LocalTrainingConfig(local_epochs=1, batch_size=25, max_batches_per_epoch=2)
    max_layer = arch.num_prunable_layers()
    pool = ModelPoolConfig(models_per_level=3, start_layers=(max_layer - 1, max_layer - 3, max_layer - 5), min_start_layer=1)
    kwargs = dict(
        architecture=arch,
        train_dataset=train,
        partition=partition,
        test_dataset=test,
        profiles=profiles,
        federated_config=federated,
        local_config=local,
        resource_model=resource_model,
        testbed=testbed,
        seed=seed,
    )
    return kwargs, AdaptiveFLConfig(federated=federated, local=local, pool=pool), pool


def test_table5_device_configuration():
    rows = [
        [spec.name, spec.device_class, f"{spec.memory_gb:.0f}G", spec.count] for spec in TESTBED_DEVICE_SPECS
    ]
    print("\nTable 5 — test-bed platform configuration")
    print(format_table(["device", "class", "memory", "count"], rows))
    assert sum(spec.count for spec in TESTBED_DEVICE_SPECS) == 17


def test_fig6_testbed_accuracy_vs_time(benchmark):
    def run_all():
        results = {}
        kwargs, adaptive_config, pool = _build_testbed_experiment()
        results["adaptivefl"] = AdaptiveFL(algorithm_config=adaptive_config, pool_config=pool, **kwargs).run()
        kwargs, _, pool = _build_testbed_experiment()
        results["heterofl"] = HeteroFL(**kwargs).run()
        kwargs, _, pool = _build_testbed_experiment()
        results["scalefl"] = ScaleFL(pool_config=pool, **kwargs).run()
        return results

    histories = once(benchmark, run_all)
    rows = []
    for name, history in histories.items():
        seconds, accuracies = history.time_curve("full")
        rows.append([name, f"{seconds[-1]:.0f}s", f"{max(accuracies) * 100:.2f}"])
        series = ", ".join(f"({t:.0f}s, {a * 100:.1f})" for t, a in zip(seconds, accuracies))
        print(f"{name}: {series}")
    print("\nFigure 6 — simulated test-bed (Widar-like, MobileNetV2-lite, CI scale)")
    print(format_table(["algorithm", "total time", "best full acc (%)"], rows))
    benchmark.extra_info["rows"] = rows
    for history in histories.values():
        seconds, _ = history.time_curve("full")
        assert seconds and seconds == sorted(seconds)
