"""Compressed-transport benchmark: uplink bytes and accuracy per codec.

Runs the same CI-scale AdaptiveFL experiment once per registered update
codec (``none``/``fp16``/``int8``/``topk``) over delta transport and
writes ``BENCH_compression.json`` with:

* ``codecs`` — per codec, the true per-round uplink/downlink bytes taken
  from the round records (post-codec encoded sizes, not modeled ones),
  the final full accuracy, and the bytes-per-round compression ratio
  against the exact ``none`` baseline,
* ``acceptance`` — the PR's gates: ``int8`` and ``topk`` each cut mean
  uplink bytes per round by ≥ ``RATIO_GATE``× versus exact delta
  transport, while staying within ``ACCURACY_TOLERANCE`` absolute final
  accuracy of the baseline.

Every run shares one prepared experiment snapshot (same dataset,
partition, profiles, seed), so the comparison is paired: the only thing
that changes between runs is ``FederatedConfig.transport_codec``.

Run as a script::

    python benchmarks/bench_compression.py             # 8 rounds
    python benchmarks/bench_compression.py --quick     # CI smoke: 4 rounds
    python benchmarks/bench_compression.py --quick --check   # enforce gates
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

CODECS = ("none", "fp16", "int8", "topk")
#: codecs the acceptance gate requires to beat the byte-reduction ratio
GATED_CODECS = ("int8", "topk")
RATIO_GATE = 4.0
#: max absolute final-accuracy drift a lossy codec may show vs the exact run
ACCURACY_TOLERANCE = 0.10
FULL_ROUNDS = 8
QUICK_ROUNDS = 4


def run_codec(codec: str, rounds: int) -> dict:
    """One paired CI-scale AdaptiveFL run with the given transport codec."""
    from repro.experiments import ExperimentSetting, prepare_experiment
    from repro.experiments.runner import run_algorithm

    setting = ExperimentSetting(
        dataset="cifar10",
        model="simple_cnn",
        scale="ci",
        seed=0,
        transport="delta",
        transport_codec=codec,
        overrides={"num_rounds": rounds, "eval_every": rounds},
    )
    prepared = prepare_experiment(setting)
    result = run_algorithm("adaptivefl", prepared)
    records = result.history.records
    total_up = sum(record.bytes_up for record in records)
    total_down = sum(record.bytes_down for record in records)
    return {
        "codec": codec,
        "rounds": len(records),
        "total_bytes_up": int(total_up),
        "total_bytes_down": int(total_down),
        "mean_bytes_up_per_round": round(total_up / len(records), 1),
        "mean_bytes_down_per_round": round(total_down / len(records), 1),
        "full_accuracy": result.full_accuracy,
    }


def run_benchmark(rounds: int) -> dict:
    results: dict[str, dict] = {}
    for codec in CODECS:
        print(f"running adaptivefl with transport codec {codec!r} ({rounds} rounds) ...")
        results[codec] = run_codec(codec, rounds)

    baseline = results["none"]
    for codec, entry in results.items():
        entry["uplink_ratio_vs_none"] = round(
            baseline["mean_bytes_up_per_round"] / entry["mean_bytes_up_per_round"], 2
        )
        entry["accuracy_delta_vs_none"] = round(
            entry["full_accuracy"] - baseline["full_accuracy"], 6
        )

    acceptance: dict[str, object] = {
        "ratio_gate": RATIO_GATE,
        "accuracy_tolerance": ACCURACY_TOLERANCE,
    }
    for codec in GATED_CODECS:
        entry = results[codec]
        acceptance[f"{codec}_uplink_ratio"] = entry["uplink_ratio_vs_none"]
        acceptance[f"{codec}_ratio_geq_gate"] = bool(entry["uplink_ratio_vs_none"] >= RATIO_GATE)
        acceptance[f"{codec}_accuracy_within_tolerance"] = bool(
            abs(entry["accuracy_delta_vs_none"]) <= ACCURACY_TOLERANCE
        )
    return {
        "benchmark": "compression",
        "generated_by": "benchmarks/bench_compression.py",
        "algorithm": "adaptivefl",
        "transport": "delta",
        "rounds": rounds,
        "codecs": results,
        "acceptance": acceptance,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help=f"CI smoke: {QUICK_ROUNDS} rounds")
    parser.add_argument("--rounds", type=int, default=None, help="override the round count")
    parser.add_argument("--check", action="store_true", help="exit non-zero if a gate fails")
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_compression.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    rounds = args.rounds if args.rounds is not None else (QUICK_ROUNDS if args.quick else FULL_ROUNDS)
    payload = run_benchmark(rounds)
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    acceptance = payload["acceptance"]
    failures = []
    for codec in GATED_CODECS:
        if not acceptance[f"{codec}_ratio_geq_gate"]:
            failures.append(
                f"{codec} uplink ratio {acceptance[f'{codec}_uplink_ratio']}x is below the {RATIO_GATE}x gate"
            )
        if not acceptance[f"{codec}_accuracy_within_tolerance"]:
            failures.append(
                f"{codec} final accuracy drifted more than {ACCURACY_TOLERANCE} from the exact baseline"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.check:
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
