"""Table 4 — ablation of fine-grained (p=3) vs coarse-grained (p=1) pruning.

The coarse variant offers one submodel per level (the paper's p=1); the
fine variant adds the layer-adjusted intermediates (p=3).  The claim under
test is that the fine-grained pool transfers knowledge between sizes
better, improving the "full" accuracy.
"""

from repro.api.registry import get_algorithm
from repro.core.config import ModelPoolConfig
from repro.experiments import PAPER_TABLE4, format_table, prepare_experiment

from common import bench_setting, once


def _run_with_pool(prepared, models_per_level):
    base = prepared.pool_config
    pool = ModelPoolConfig(
        models_per_level=models_per_level,
        level_width_ratios=base.level_width_ratios,
        start_layers=base.start_layers[:models_per_level],
        min_start_layer=min(base.start_layers[:models_per_level]),
    )
    # bind the granularity-ablated pool over the prepared default
    algorithm = get_algorithm("adaptivefl").with_kwargs(pool_config=pool).build(prepared)
    history = algorithm.run()
    return history.final_accuracy("full"), history.final_accuracy("avg")


def test_table4_pruning_granularity(benchmark):
    setting = bench_setting(distribution="iid", overrides={"num_rounds": 8, "eval_every": 4})

    def run_both():
        prepared = prepare_experiment(setting)
        coarse = _run_with_pool(prepared, models_per_level=1)
        fine = _run_with_pool(prepared, models_per_level=3)
        return coarse, fine

    (coarse_full, coarse_avg), (fine_full, fine_avg) = once(benchmark, run_both)
    paper = PAPER_TABLE4["cifar10"]["vgg16"]
    rows = [
        ["coarse (p=1)", f"{coarse_full * 100:.2f}", f"{paper['coarse-iid']:.2f}"],
        ["fine (p=3)", f"{fine_full * 100:.2f}", f"{paper['fine-iid']:.2f}"],
    ]
    print("\nTable 4 — pruning granularity ablation, CIFAR-10-like IID (CI scale, 'full' accuracy)")
    print(format_table(["granularity", "full (%)", "paper full"], rows))
    benchmark.extra_info["rows"] = rows
    assert 0.0 <= coarse_full <= 1.0 and 0.0 <= fine_full <= 1.0
