"""Fleet-scale benchmark: devices/sec and peak RSS from 10³ to 10⁶ devices.

Writes ``BENCH_fleet_scale.json`` with three sections:

* ``sizes`` — per fleet size, the vectorized engine's (batched draws)
  round throughput in devices/sec and subprocess peak RSS, plus the
  legacy per-device path (per-client generators + event-loop rounds) at
  the sizes where it is still tractable, and the resulting speedup,
* ``parity`` — the small-N bit-parity suite: AdaptiveFL and HeteroFL
  histories **and** final weights compared between ``fleet_engine=
  "legacy"`` and ``"vectorized"`` across the serial, thread and process
  executors (every entry must be ``true``),
* ``acceptance`` — the PR's gates: ≥50× devices/sec over the per-device
  path at 10⁴, completed 10⁶-device rounds, and full parity.

Each (size, engine) throughput measurement runs in its own subprocess so
``ru_maxrss`` reports that configuration's peak RSS in isolation.

Run as a script::

    python benchmarks/bench_fleet_scale.py            # full sweep, 10³..10⁶
    python benchmarks/bench_fleet_scale.py --quick    # CI smoke: 10³/10⁴
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

FULL_SIZES = (1_000, 10_000, 100_000, 1_000_000)
QUICK_SIZES = (1_000, 10_000)
#: largest fleet the legacy per-device path is timed at (it is the
#: baseline being replaced; beyond 10⁴ it is pointlessly slow)
LEGACY_SIZE_CAP = 10_000
ROUNDS = 5
DISPATCH_PER_ROUND = 256
SPEEDUP_GATE = 50.0
SPEEDUP_GATE_SIZE = 10_000


def scale_spec():
    """Every dynamic subsystem on at once: markov availability, batteries,
    compute/link jitter, mid-round dropouts and a relative deadline."""
    from repro.sim.scenario import AvailabilitySpec, BatterySpec, DeviceTemplate, ScenarioSpec

    return ScenarioSpec(
        name="fleet-scale-bench",
        devices=(
            DeviceTemplate(
                name="weak", device_class="weak", flops_per_second=5e5, bandwidth_mbps=4.0,
                fraction=0.5, compute_jitter=0.2, link_latency_s=0.05, link_jitter_s=0.02,
            ),
            DeviceTemplate(
                name="strong", device_class="strong", flops_per_second=2e6, bandwidth_mbps=20.0,
                fraction=0.5, compute_jitter=0.1, link_latency_s=0.01, link_jitter_s=0.01,
            ),
        ),
        availability=AvailabilitySpec(kind="markov", p_drop=0.1, p_join=0.8),
        battery=BatterySpec(capacity_joules=5000.0, compute_watts=2.0, recharge_watts=5.0),
        dropout_rate=0.05,
        deadline_factor=3.0,
    )


# -- throughput worker (one subprocess per measurement) ----------------------------------
def measure_throughput(size: int, engine: str, rounds: int) -> dict:
    """One engine's full round pipeline: availability over the whole fleet,
    dispatch simulation for a fixed cohort, population stats."""
    from repro.sim.fleet import ClientDispatch, DispatchBatch, FleetSimulator

    draw_mode = "batched" if engine == "vectorized" else "per-client"
    build_start = time.perf_counter()
    fleet = FleetSimulator(scale_spec(), num_clients=size, seed=7, engine=engine, draw_mode=draw_mode)
    build_seconds = time.perf_counter() - build_start

    def one_round(round_index: int) -> None:
        mask = fleet.available_mask(round_index)
        clients = np.flatnonzero(mask)[:DISPATCH_PER_ROUND]
        if engine == "vectorized":
            batch = DispatchBatch(
                client_ids=clients.astype(np.int64), params_down=40_000, params_up=20_000,
                flops_per_sample=20_000, num_samples=60, local_epochs=2,
            )
            fleet.simulate_round_batch(round_index, batch)
        else:
            dispatches = [ClientDispatch(int(c), 40_000, 20_000, 20_000, 60, 2) for c in clients]
            fleet.simulate_round(round_index, dispatches)
        fleet.population_stats(round_index)

    one_round(0)  # warm caches outside the timed window
    start = time.perf_counter()
    for round_index in range(1, rounds + 1):
        one_round(round_index)
    elapsed = time.perf_counter() - start
    return {
        "engine": engine,
        "draw_mode": draw_mode,
        "num_clients": size,
        "rounds": rounds,
        "dispatch_per_round": DISPATCH_PER_ROUND,
        "build_seconds": round(build_seconds, 6),
        "elapsed_seconds": round(elapsed, 6),
        "seconds_per_round": round(elapsed / rounds, 6),
        "devices_per_sec": round(size * rounds / elapsed, 1),
        "peak_rss_mb": round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1),
    }


def run_worker_subprocess(size: int, engine: str, rounds: int) -> dict:
    """Isolate one measurement so ru_maxrss reflects only that fleet size."""
    command = [sys.executable, str(Path(__file__).resolve()), "--worker", str(size), engine, str(rounds)]
    completed = subprocess.run(command, capture_output=True, text=True, check=True)
    return json.loads(completed.stdout)


# -- small-N bit-parity suite ------------------------------------------------------------
def parity_federation(executor: str):
    """A tiny 17-client federation on ``flaky_edge`` (markov + dropouts +
    jitter + deadline), the stochastic scenario the engines must agree on."""
    from repro.core.config import FederatedConfig, LocalTrainingConfig, ModelPoolConfig
    from repro.data.datasets import SyntheticTaskConfig, synthesize_classification_task
    from repro.data.partition import iid_partition
    from repro.devices.resources import ResourceModel
    from repro.devices.testbed import TestbedSimulator
    from repro.nn.models import SlimmableSimpleCNN

    arch = SlimmableSimpleCNN(num_classes=4, input_shape=(1, 8, 8), width_multiplier=0.5, hidden_features=32)
    task = SyntheticTaskConfig(
        num_classes=4, input_shape=(1, 8, 8), train_samples=510, test_samples=170,
        clusters_per_class=1, noise_std=0.35, label_noise=0.0, seed=11,
    )
    train, test = synthesize_classification_task(task)
    partition = iid_partition(train, 17, np.random.default_rng(2))
    profiles = TestbedSimulator().build_profiles()
    return {
        "pool": ModelPoolConfig(models_per_level=3, start_layers=(2, 2, 1), min_start_layer=1),
        "federated": FederatedConfig(
            num_rounds=3, clients_per_round=5, eval_every=3, executor=executor,
            max_workers=2 if executor != "serial" else None,
        ),
        "local": LocalTrainingConfig(local_epochs=1, batch_size=16, max_batches_per_epoch=2),
        "kwargs": dict(
            architecture=arch, train_dataset=train, partition=partition, test_dataset=test,
            profiles=profiles,
            resource_model=ResourceModel(profiles, arch.parameter_count(), uncertainty=0.1, seed=2),
            seed=2,
        ),
    }


def run_parity_case(algorithm: str, executor: str, engine: str):
    from repro.baselines import HeteroFL
    from repro.core.config import AdaptiveFLConfig
    from repro.core.server import AdaptiveFL

    setup = parity_federation(executor)
    extra = {}
    cls = {"adaptivefl": AdaptiveFL, "heterofl": HeteroFL}[algorithm]
    if cls is AdaptiveFL:
        extra["algorithm_config"] = AdaptiveFLConfig(
            federated=setup["federated"], local=setup["local"], pool=setup["pool"]
        )
    instance = cls(
        **setup["kwargs"], pool_config=setup["pool"], federated_config=setup["federated"],
        local_config=setup["local"], scenario="flaky_edge", fleet_engine=engine, **extra,
    )
    history = instance.run()
    return history.to_dict(), instance.global_state


def run_parity_suite() -> dict:
    suite: dict[str, dict[str, bool]] = {}
    for algorithm in ("adaptivefl", "heterofl"):
        suite[algorithm] = {}
        for executor in ("serial", "thread", "process"):
            legacy_history, legacy_state = run_parity_case(algorithm, executor, "legacy")
            vector_history, vector_state = run_parity_case(algorithm, executor, "vectorized")
            identical = legacy_history == vector_history and all(
                np.array_equal(legacy_state[name], vector_state[name]) for name in legacy_state
            )
            suite[algorithm][executor] = bool(identical)
            print(f"parity {algorithm:<10} {executor:<8} {'OK' if identical else 'MISMATCH'}")
    return suite


# -- orchestration -----------------------------------------------------------------------
def run_benchmark(sizes, rounds: int, skip_parity: bool) -> dict:
    results: dict[str, dict] = {}
    for size in sizes:
        entry: dict[str, object] = {}
        print(f"measuring vectorized engine at {size:,} devices ...")
        entry["vectorized"] = run_worker_subprocess(size, "vectorized", rounds)
        if size <= LEGACY_SIZE_CAP:
            print(f"measuring legacy per-device path at {size:,} devices ...")
            entry["legacy"] = run_worker_subprocess(size, "legacy", rounds)
            entry["speedup"] = round(
                entry["vectorized"]["devices_per_sec"] / entry["legacy"]["devices_per_sec"], 1
            )
        results[str(size)] = entry

    parity = None if skip_parity else run_parity_suite()

    gate_entry = results.get(str(SPEEDUP_GATE_SIZE), {})
    speedup_at_gate = gate_entry.get("speedup")
    million = results.get(str(1_000_000), {}).get("vectorized")
    acceptance = {
        "speedup_at_10k": speedup_at_gate,
        "speedup_at_10k_geq_50x": bool(speedup_at_gate is not None and speedup_at_gate >= SPEEDUP_GATE),
        "million_device_rounds_completed": bool(million is not None and million["rounds"] >= 1),
        "parity_bit_identical": (
            None if parity is None else all(all(row.values()) for row in parity.values())
        ),
    }
    return {
        "benchmark": "fleet_scale",
        "generated_by": "benchmarks/bench_fleet_scale.py",
        "rounds_per_measurement": rounds,
        "dispatch_per_round": DISPATCH_PER_ROUND,
        "scenario": scale_spec().to_dict(),
        "sizes": results,
        "parity": parity,
        "acceptance": acceptance,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke: 10^3/10^4 only")
    parser.add_argument("--rounds", type=int, default=ROUNDS, help="timed rounds per measurement")
    parser.add_argument("--skip-parity", action="store_true", help="skip the small-N parity suite")
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_fleet_scale.json",
        help="where to write the JSON report",
    )
    parser.add_argument("--worker", nargs=3, metavar=("SIZE", "ENGINE", "ROUNDS"), help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker is not None:
        size, engine, rounds = int(args.worker[0]), args.worker[1], int(args.worker[2])
        json.dump(measure_throughput(size, engine, rounds), sys.stdout)
        return 0

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    payload = run_benchmark(sizes, args.rounds, args.skip_parity)
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    acceptance = payload["acceptance"]
    failures = []
    if acceptance["speedup_at_10k"] is not None and not acceptance["speedup_at_10k_geq_50x"]:
        failures.append(
            f"speedup at 10^4 is {acceptance['speedup_at_10k']}x, below the {SPEEDUP_GATE}x gate"
        )
    if acceptance["parity_bit_identical"] is False:
        failures.append("small-N parity suite found a legacy/vectorized mismatch")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
