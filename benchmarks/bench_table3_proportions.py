"""Table 3 — accuracy under different weak:medium:strong device proportions.

The paper sweeps 4:3:3, 8:1:1, 1:8:1 and 1:1:8 on CIFAR-10/VGG16.  The
qualitative claims: AdaptiveFL wins every column, and every method improves
as the share of strong devices grows.
"""

import pytest

from repro.experiments import PAPER_TABLE3, format_table

from common import bench_setting, once, run_algorithms

ALGORITHMS = ("heterofl", "scalefl", "adaptivefl")
PROPORTIONS = ("4:3:3", "8:1:1", "1:1:8")


@pytest.mark.parametrize("proportion", PROPORTIONS)
def test_table3_device_proportions(benchmark, proportion):
    setting = bench_setting(distribution="iid", proportion=proportion)
    results = once(benchmark, lambda: run_algorithms(setting, ALGORITHMS))
    rows = []
    for name, result in results.items():
        paper_avg, paper_full = PAPER_TABLE3[proportion][name]
        rows.append(
            [
                name,
                f"{result.avg_accuracy * 100:.2f}",
                f"{paper_avg:.2f}" if paper_avg is not None else "-",
                f"{result.full_accuracy * 100:.2f}",
                f"{paper_full:.2f}",
            ]
        )
    print(f"\nTable 3 — proportion {proportion} (CI scale)")
    print(format_table(["algorithm", "avg (%)", "paper avg", "full (%)", "paper full"], rows))
    benchmark.extra_info["rows"] = rows
    for result in results.values():
        assert 0.0 <= result.full_accuracy <= 1.0
