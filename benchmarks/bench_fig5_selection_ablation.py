"""Figure 5 — ablation of the RL-based client selection strategy.

Compares AdaptiveFL under Greedy / Random / RL-C / RL-S / RL-CS dispatch
and reports (a) the communication-waste rate and (b) the final accuracy,
mirroring both panels of the figure.  The headline claims: the RL variants
waste far less communication than Greedy, and RL-CS reaches the best
accuracy.
"""

from repro.experiments import format_table, prepare_experiment, run_algorithm

from common import bench_setting, once

STRATEGIES = ("greedy", "random", "rl-c", "rl-s", "rl-cs")


def test_fig5_selection_strategy_ablation(benchmark):
    setting = bench_setting(distribution="iid", overrides={"num_rounds": 10, "eval_every": 5})

    def run_all():
        # one prepared experiment shared by every strategy: the ablation is paired
        prepared = prepare_experiment(setting)
        return {
            strategy: run_algorithm("adaptivefl", prepared, selection_strategy=strategy)
            for strategy in STRATEGIES
        }

    results = once(benchmark, run_all)
    rows = [
        [strategy, f"{result.communication_waste * 100:.2f}", f"{result.full_accuracy * 100:.2f}"]
        for strategy, result in results.items()
    ]
    print("\nFigure 5 — RL client-selection ablation (CI scale)")
    print(format_table(["strategy", "comm. waste (%)", "full acc (%)"], rows))
    benchmark.extra_info["rows"] = rows

    # Figure 5a's shape: every RL-informed strategy wastes less than Greedy.
    assert results["rl-s"].communication_waste <= results["greedy"].communication_waste
    assert results["rl-cs"].communication_waste <= results["greedy"].communication_waste
