"""Telemetry overhead benchmark: proves observation is (nearly) free.

Measures serial end-to-end rounds/sec of the CI setting three ways —
telemetry dormant (no sinks; the default for every run that does not
opt in), telemetry fully enabled (JSONL sink + ring buffer on the
process bus), and again dormant to bound run-to-run noise — plus the
micro cost of a single ``EventBus.emit`` in both states.  Writes
``BENCH_obs_overhead.json``.

The acceptance gate (``--check``) fails when the enabled run costs more
than ``--threshold`` (default 5%) serial throughput relative to the
dormant baseline.  The dormant re-run's delta is recorded as the noise
floor so a regression report can tell signal from jitter.

Run::

    python benchmarks/bench_obs_overhead.py            # measure + write JSON
    python benchmarks/bench_obs_overhead.py --check    # + enforce the gate
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Sequence

from repro.api.registry import get_algorithm
from repro.experiments import ExperimentSetting, prepare_experiment
from repro.obs.events import EventBus, configure_telemetry, shutdown_telemetry
from repro.obs.sinks import RingBufferSink

BENCH_SETTING_KWARGS = dict(
    dataset="cifar10",
    model="simple_cnn",
    scale="ci",
    overrides={"num_rounds": 4, "eval_every": 2},
)


def _best_of(func, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def measure_emit_micro() -> dict:
    """Nanoseconds per ``emit`` call, dormant vs ring-buffer-attached."""
    iterations = 200_000
    dormant = EventBus(source="bench")
    start = time.perf_counter()
    for index in range(iterations):
        dormant.emit("round_start", round=index)
    dormant_ns = (time.perf_counter() - start) / iterations * 1e9

    active = EventBus(source="bench")
    active.attach(RingBufferSink(capacity=1024))
    iterations = 50_000
    start = time.perf_counter()
    for index in range(iterations):
        active.emit("round_start", round=index)
    active_ns = (time.perf_counter() - start) / iterations * 1e9
    active.close()
    return {
        "dormant_ns_per_emit": round(dormant_ns, 1),
        "ring_ns_per_emit": round(active_ns, 1),
    }


def measure_rounds_per_second(prepared, num_rounds: int, repeats: int) -> tuple[float, float]:
    """Best-of-``repeats`` serial (rounds/sec, final accuracy)."""
    accuracy_box: list[float] = []

    def one_run():
        algorithm = get_algorithm("adaptivefl").build(prepared)
        history = algorithm.run(num_rounds=num_rounds)
        accuracy_box.append(history.final_accuracy("full"))

    one_run()  # untimed warm-up: workspaces, scatter indices, BLAS
    seconds = _best_of(one_run, repeats)
    return num_rounds / seconds, accuracy_box[-1]


def run_benchmark(num_rounds: int, repeats: int) -> dict:
    setting = ExperimentSetting(**BENCH_SETTING_KWARGS)
    prepared = prepare_experiment(setting)
    payload: dict = {
        "benchmark": "obs_overhead",
        "cpu_count": os.cpu_count(),
        "rounds": num_rounds,
        "repeats": repeats,
        "setting": setting.to_dict(),
        "emit_micro": measure_emit_micro(),
        "modes": [],
    }

    shutdown_telemetry()  # ensure the dormant baseline really is dormant
    accuracies: dict[str, float] = {}
    baseline, accuracies["disabled"] = measure_rounds_per_second(prepared, num_rounds, repeats)
    payload["modes"].append({"mode": "disabled", "rounds_per_second": round(baseline, 4)})

    with tempfile.TemporaryDirectory(prefix="bench_obs_") as tmp:
        configure_telemetry(jsonl_path=str(Path(tmp) / "events.jsonl"), ring_size=256, source="bench")
        try:
            enabled, accuracies["enabled"] = measure_rounds_per_second(prepared, num_rounds, repeats)
        finally:
            shutdown_telemetry()
    payload["modes"].append({"mode": "enabled", "rounds_per_second": round(enabled, 4)})

    rerun, accuracies["disabled_rerun"] = measure_rounds_per_second(prepared, num_rounds, repeats)
    payload["modes"].append({"mode": "disabled_rerun", "rounds_per_second": round(rerun, 4)})

    payload["overhead_pct"] = round((baseline - enabled) / baseline * 100.0, 2)
    payload["noise_pct"] = round(abs(baseline - rerun) / baseline * 100.0, 2)
    # telemetry is an observer: identical results with and without it
    payload["parity"] = len(set(accuracies.values())) == 1
    return payload


def render(payload: dict) -> str:
    micro = payload["emit_micro"]
    lines = [
        f"obs overhead — {payload['cpu_count']} CPU(s), {payload['rounds']} rounds, "
        f"best of {payload['repeats']}",
        f"emit: {micro['dormant_ns_per_emit']:.0f} ns dormant, {micro['ring_ns_per_emit']:.0f} ns to ring",
        "",
        f"{'mode':<16} {'rounds/s':>9}",
    ]
    for row in payload["modes"]:
        lines.append(f"{row['mode']:<16} {row['rounds_per_second']:>9.3f}")
    lines.append("")
    lines.append(
        f"overhead enabled vs disabled: {payload['overhead_pct']:+.2f}% "
        f"(noise floor {payload['noise_pct']:.2f}%), parity={payload['parity']}"
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # 6 rounds / best-of-5 keeps the measurement above this container
    # class's ~4% run-to-run jitter; smaller sizes false-positive the gate
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json",
    )
    parser.add_argument("--check", action="store_true", help="fail when overhead exceeds the threshold")
    parser.add_argument("--threshold", type=float, default=5.0, help="max %% serial throughput cost when enabled")
    args = parser.parse_args(argv)

    payload = run_benchmark(args.rounds, args.repeats)
    print(render(payload))
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    if args.check:
        if not payload["parity"]:
            print("OBS GATE: FAIL: telemetry perturbed the run's results")
            return 1
        if payload["overhead_pct"] > args.threshold:
            print(
                f"OBS GATE: FAIL: telemetry costs {payload['overhead_pct']:.2f}% serial "
                f"throughput (threshold {args.threshold:.1f}%)"
            )
            return 1
        print(f"obs gate passed ({payload['overhead_pct']:+.2f}% <= {args.threshold:.1f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
