"""Round-throughput speedup of the parallel client-execution engine.

Sweeps executor × worker count on a fixed CI-scale AdaptiveFL experiment
and records wall-clock per round, round throughput and speedup versus the
serial reference into ``BENCH_parallel_speedup.json``.

Two workload modes are measured:

* ``raw`` — the pure-numpy local training exactly as the test-suite runs
  it.  Thread workers only overlap the GIL-releasing numpy kernels and
  process workers pay pickling, so the raw speedup is bounded by the
  machine's core count.
* ``device`` — every client task additionally carries an emulated
  per-device latency (default 100 ms), standing in for the local-compute
  and up/down-link time of a real AIoT device (the paper's test-bed
  rounds take *seconds* per device).  This is the regime federated
  simulations actually live in, and where the executor fan-out shines:
  workers overlap the latency of the whole cohort.

Every configuration is also checked for parity: the final full-model
accuracy must equal the serial reference bit for bit.

Run as a script (writes the JSON)::

    python benchmarks/bench_parallel_speedup.py
    python benchmarks/bench_parallel_speedup.py --workers 1 2 4 8 --latency-ms 50

or through pytest-benchmark (attaches the table to ``extra_info``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_speedup.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.api.registry import get_algorithm
from repro.engine.base import Executor
from repro.engine.factory import create_executor
from repro.engine.rng import spawn_streams
from repro.experiments import ExperimentSetting, prepare_experiment

#: the benchmark configuration (one shared prepared experiment, paired runs)
BENCH_SETTING_KWARGS = dict(
    dataset="cifar10",
    model="simple_cnn",
    scale="ci",
    overrides={
        "num_clients": 12,
        "clients_per_round": 8,
        "train_samples": 960,
        "num_rounds": 3,
        "eval_every": 3,
    },
)
DEFAULT_LATENCY_MS = 100.0
#: per-device latency spread (devices are heterogeneous, not metronomes)
DEFAULT_LATENCY_JITTER = 0.25
DEFAULT_WORKERS = (1, 2, 4)


@dataclass
class EmulatedDeviceTask:
    """Wraps a client task with the device/communication latency it would
    have on real hardware (the executor can overlap it, serial cannot).

    The latency is jittered per device and round through a child of the
    task's own RNG stream (``spawn_streams``), so it is deterministic and
    identical for every executor/worker count while never perturbing the
    training randomness of the parent stream.
    """

    inner: object
    seconds: float
    jitter: float = 0.0

    def run(self):
        seconds = self.seconds
        stream = getattr(self.inner, "rng_stream", None)
        if self.jitter > 0 and stream is not None:
            latency_rng = np.random.default_rng(spawn_streams(stream, 1)[0])
            seconds *= float(latency_rng.uniform(1 - self.jitter, 1 + self.jitter))
        time.sleep(seconds)
        return self.inner.run()


class DeviceLatencyExecutor(Executor):
    """Decorator executor: adds emulated per-client device latency."""

    name = "device-latency"

    def __init__(self, inner: Executor, seconds: float, jitter: float = DEFAULT_LATENCY_JITTER):
        super().__init__(inner.max_workers)
        self.inner = inner
        self.seconds = seconds
        self.jitter = jitter

    def map(self, tasks):
        return self.inner.map([EmulatedDeviceTask(task, self.seconds, self.jitter) for task in tasks])

    def shutdown(self) -> None:
        self.inner.shutdown()


def timed_run(prepared, executor_name: str, workers: int | None, latency_s: float) -> tuple[float, float]:
    """(wall seconds, final full accuracy) of one AdaptiveFL run."""
    algorithm = get_algorithm("adaptivefl").build(prepared)
    executor = create_executor(executor_name, workers)
    if latency_s > 0:
        executor = DeviceLatencyExecutor(executor, latency_s)
    algorithm.set_executor(executor)
    try:
        start = time.perf_counter()
        history = algorithm.run()
        elapsed = time.perf_counter() - start
    finally:
        # injected executors stay caller-owned: run() does not shut them down
        executor.shutdown()
    return elapsed, history.final_accuracy("full")


def sweep(prepared, workers: Sequence[int], latency_s: float, mode: str) -> list[dict]:
    num_rounds = prepared.federated_config.num_rounds
    serial_seconds, serial_accuracy = timed_run(prepared, "serial", None, latency_s)
    rows = [
        {
            "mode": mode,
            "executor": "serial",
            "workers": 1,
            "seconds": round(serial_seconds, 4),
            "rounds_per_second": round(num_rounds / serial_seconds, 4),
            "speedup_vs_serial": 1.0,
            "parity": True,
        }
    ]
    for executor_name in ("thread", "process"):
        for count in workers:
            seconds, accuracy = timed_run(prepared, executor_name, count, latency_s)
            rows.append(
                {
                    "mode": mode,
                    "executor": executor_name,
                    "workers": count,
                    "seconds": round(seconds, 4),
                    "rounds_per_second": round(num_rounds / seconds, 4),
                    "speedup_vs_serial": round(serial_seconds / seconds, 3),
                    # the engine's core guarantee, re-checked under timing
                    "parity": accuracy == serial_accuracy,
                }
            )
    return rows


def run_benchmark(workers: Sequence[int], latency_ms: float) -> dict:
    setting = ExperimentSetting(**BENCH_SETTING_KWARGS)
    prepared = prepare_experiment(setting)
    results = sweep(prepared, workers, 0.0, "raw")
    results += sweep(prepared, workers, latency_ms / 1000.0, "device")
    return {
        "benchmark": "parallel_speedup",
        "setting": setting.to_dict(),
        "emulated_device_latency_ms": latency_ms,
        "cpu_count": os.cpu_count(),
        "results": results,
    }


def render(payload: dict) -> str:
    lines = [
        f"parallel speedup — {payload['cpu_count']} CPU(s), "
        f"device latency {payload['emulated_device_latency_ms']:.0f} ms",
        f"{'mode':<8} {'executor':<9} {'workers':>7} {'seconds':>9} {'rounds/s':>9} {'speedup':>8}  parity",
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['mode']:<8} {row['executor']:<9} {row['workers']:>7} {row['seconds']:>9.3f} "
            f"{row['rounds_per_second']:>9.3f} {row['speedup_vs_serial']:>7.2f}x  {row['parity']}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, nargs="+", default=list(DEFAULT_WORKERS))
    parser.add_argument("--latency-ms", type=float, default=DEFAULT_LATENCY_MS)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_parallel_speedup.json",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(args.workers, args.latency_ms)
    print(render(payload))
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


def test_parallel_speedup(benchmark):
    """pytest-benchmark entry: one sweep, table attached to extra_info."""
    payload = benchmark.pedantic(lambda: run_benchmark((4,), DEFAULT_LATENCY_MS), rounds=1, iterations=1)
    print("\n" + render(payload))
    benchmark.extra_info["results"] = payload["results"]
    assert all(row["parity"] for row in payload["results"])
    device_thread = [
        row
        for row in payload["results"]
        if row["mode"] == "device" and row["executor"] == "thread" and row["workers"] == 4
    ]
    # the acceptance bar: >1.5x round throughput at 4 workers in device mode
    assert device_thread and device_thread[0]["speedup_vs_serial"] > 1.5


if __name__ == "__main__":
    raise SystemExit(main())
