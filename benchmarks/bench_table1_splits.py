"""Table 1 — VGG16 split settings (#params, #FLOPs, size ratio).

This is a static reproduction at **full paper scale**: the numbers are
computed on the real 33.65M-parameter VGG16 and should match the paper to
within rounding.
"""

from repro.experiments import format_table, vgg16_table1_settings
from repro.nn.models import SlimmableVGG
from repro.perf.flops import count_flops

from common import once


def _compute_rows():
    arch = SlimmableVGG(config="vgg16", num_classes=10, input_shape=(3, 32, 32))
    full_params = arch.parameter_count()
    rows = []
    for entry in vgg16_table1_settings():
        sizes = arch.group_sizes_for(entry["r_w"], entry["start_layer"])
        params = arch.parameter_count(sizes)
        flops = count_flops(arch.build(sizes), (3, 32, 32)).flops
        rows.append(
            [
                entry["level"],
                entry["r_w"],
                entry["start_layer"] if entry["start_layer"] is not None else "N/A",
                f"{params / 1e6:.2f}M",
                f"{entry['paper_params_m']:.2f}M",
                f"{flops / 1e6:.2f}M",
                f"{entry['paper_flops_m']:.2f}M",
                f"{params / full_params:.2f}",
                f"{entry['paper_ratio']:.2f}",
            ]
        )
    return rows


def test_table1_vgg16_split_settings(benchmark):
    rows = once(benchmark, _compute_rows)
    headers = ["level", "r_w", "I", "#PARAMS", "paper", "#FLOPS", "paper", "ratio", "paper"]
    print("\nTable 1 — VGG16 split settings (measured vs paper)")
    print(format_table(headers, rows))
    benchmark.extra_info["rows"] = rows
    # the reproduction must match the paper's parameter counts closely
    for row, entry in zip(rows, vgg16_table1_settings()):
        measured = float(row[3].rstrip("M"))
        assert abs(measured - entry["paper_params_m"]) < 0.06
